"""Per-object version chains.

Each database object owns a list of :class:`~repro.storage.version.Version`
records kept sorted by version number.  Appends dominate (transaction numbers
are assigned in serialization order), but Reed's MVTO may legally insert a
version *between* existing ones, so insertion uses bisect rather than assuming
append-only.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Hashable, Iterator

from repro.errors import ProtocolError, VersionNotFound
from repro.storage.version import Version


class VersionedObject:
    """The version chain of a single object.

    Attributes:
        key: the object's identity.
        max_r_ts: object-level read timestamp — the largest transaction
            number that read the *most recent* version; maintained for the
            paper's Figure 3 conflict check ``r-ts(x) > tn(T)``.
    """

    __slots__ = ("key", "_versions", "max_r_ts")

    def __init__(self, key: Hashable, initial_value: Any = None, initial_tn: int = 0):
        self.key = key
        self._versions: list[Version] = [Version(initial_tn, initial_value)]
        self.max_r_ts = 0

    # -- ordering helpers -----------------------------------------------------

    def _tns(self) -> list[int]:
        return [v.tn for v in self._versions]

    def __len__(self) -> int:
        return len(self._versions)

    def versions(self) -> Iterator[Version]:
        """All versions, oldest first."""
        return iter(self._versions)

    # -- reads ------------------------------------------------------------------

    def latest(self) -> Version:
        """The most recent version, pending or not."""
        return self._versions[-1]

    def latest_committed(self) -> Version:
        """The most recent non-pending version.

        Raises VersionNotFound when every retained version is pending (can
        only happen if garbage collection misbehaved — the initial version is
        never pending).
        """
        for version in reversed(self._versions):
            if not version.pending:
                return version
        raise VersionNotFound(self.key, bound=self._versions[-1].tn)

    def version_leq(self, bound: float) -> Version:
        """Largest version with ``tn <= bound`` (pending versions included).

        This is the raw chain lookup; protocol code decides what to do when
        the result is pending (block under timestamp ordering).

        Raises:
            VersionNotFound: every retained version is younger than ``bound``
                (the garbage-collection failure mode the paper notes).
        """
        idx = bisect_right(self._tns(), bound) - 1
        if idx < 0:
            raise VersionNotFound(self.key, bound)
        return self._versions[idx]

    def committed_version_leq(self, bound: float) -> Version:
        """Largest *committed* version with ``tn <= bound``.

        Under the version-control mechanism every version with
        ``tn <= vtnc`` is committed, so a read-only transaction's snapshot
        read never needs to skip pending versions; baselines without that
        guarantee do.
        """
        idx = bisect_right(self._tns(), bound) - 1
        while idx >= 0 and self._versions[idx].pending:
            idx -= 1
        if idx < 0:
            raise VersionNotFound(self.key, bound)
        return self._versions[idx]

    def exists_version_leq(self, bound: float) -> bool:
        return self._versions and self._versions[0].tn <= bound

    # -- writes -----------------------------------------------------------------

    def install(
        self,
        tn: int,
        value: Any,
        pending: bool = False,
        creator_txn_id: int | None = None,
    ) -> Version:
        """Insert a new version numbered ``tn``.

        Raises ProtocolError if a version with this number already exists —
        transaction numbers are unique, so this always indicates a protocol
        bug (e.g. double install at commit).
        """
        tns = self._tns()
        pos = bisect_right(tns, tn)
        if pos > 0 and tns[pos - 1] == tn:
            raise ProtocolError(f"object {self.key!r} already has version {tn}")
        version = Version(tn, value, pending=pending, creator_txn_id=creator_txn_id)
        insort(self._versions, version, key=lambda v: v.tn)
        return version

    def find(self, tn: int) -> Version | None:
        """The version numbered exactly ``tn``, or None."""
        tns = self._tns()
        pos = bisect_right(tns, tn) - 1
        if pos >= 0 and tns[pos] == tn:
            return self._versions[pos]
        return None

    def commit_pending(self, tn: int) -> Version:
        """Clear the pending flag of version ``tn`` (writer committed)."""
        version = self.find(tn)
        if version is None or not version.pending:
            raise ProtocolError(
                f"object {self.key!r} has no pending version {tn} to commit"
            )
        version.pending = False
        return version

    def remove(self, tn: int) -> None:
        """Remove version ``tn`` (writer aborted; its versions are destroyed)."""
        version = self.find(tn)
        if version is None:
            raise ProtocolError(f"object {self.key!r} has no version {tn} to remove")
        self._versions.remove(version)

    # -- read timestamps -----------------------------------------------------------

    def note_read(self, version: Version, reader_tn: int) -> None:
        """Record that ``reader_tn`` read ``version``.

        Updates the per-version ``r_ts`` and, when the version is the most
        recent one, the object-level ``max_r_ts`` used by Figure 3's check.
        """
        if reader_tn > version.r_ts:
            version.r_ts = reader_tn
        if version is self._versions[-1] and reader_tn > self.max_r_ts:
            self.max_r_ts = reader_tn

    # -- garbage collection ------------------------------------------------------

    def prune_older_than(self, horizon: float) -> int:
        """Discard versions strictly older than the newest version <= horizon.

        Keeps the newest version with ``tn <= horizon`` (still needed by any
        snapshot at or above it) and everything younger.  Pending versions
        are never collected: under the version-control protocols a pending
        version's number always exceeds ``vtnc`` and hence the horizon, but
        the guard holds even for callers with looser horizons.  Returns the
        number of versions discarded.
        """
        idx = bisect_right(self._tns(), horizon) - 1
        # Never collect the version that still serves reads at the horizon,
        # nor any pending version (its writer's fate is undecided).
        for pos, version in enumerate(self._versions):
            if pos >= idx:
                break
            if version.pending:
                idx = pos
                break
        if idx <= 0:
            return 0
        discarded = idx
        del self._versions[:idx]
        return discarded

    def prune_unreachable(self, visible: float, pins: list[float]) -> tuple[int, int]:
        """Range-tracked compaction: retain only versions some live reader
        can actually see (Ben-David et al., arXiv 2108.02775).

        A version ``v`` with successor ``v'`` on this chain is *needed* iff
        some snapshot number in ``[v.tn, v'.tn)`` is live — then ``v`` is
        exactly the version that snapshot reads.  The live snapshot numbers
        are ``pins`` (ascending, the registered read-only start numbers)
        plus ``visible`` (``vtnc`` — the snapshot every *future* read-only
        transaction starts at).  Everything else at or below ``visible`` is
        unreachable and reclaimed, including versions strictly *between*
        two pinned snapshots — the interior reclamation a prefix-only
        pruner cannot perform.  Versions above ``visible`` and pending
        versions are always retained (their fate is not yet decided).

        One merge walk over ``len(chain) + len(pins)`` entries; with the
        collector charging the walk to the versions it reclaims, the
        amortized cost per reclaimed version is O(1).

        Returns ``(discarded, interior)`` where ``interior`` counts
        reclaimed versions a horizon-only collector (``prune_older_than``
        at ``min(pins + [visible])``) would have retained.
        """
        versions = self._versions
        if len(versions) <= 1:
            return 0, 0
        horizon = visible
        for pin in pins:
            if pin < horizon:
                horizon = pin
                break  # pins are ascending: the first is the smallest
        retained: list[Version] = []
        discarded = 0
        interior = 0
        p = 0
        n_pins = len(pins)
        for idx, version in enumerate(versions):
            if version.pending or version.tn > visible:
                retained.append(version)
                continue
            next_tn = versions[idx + 1].tn if idx + 1 < len(versions) else None
            # Advance past pins below this version's number; they pinned an
            # older version (or nothing) and cannot need this one.
            while p < n_pins and pins[p] < version.tn:
                p += 1
            needed = p < n_pins and (next_tn is None or pins[p] < next_tn)
            # The visible snapshot itself pins the newest version <= visible.
            if not needed and (next_tn is None or next_tn > visible):
                needed = True
            if needed:
                retained.append(version)
            else:
                discarded += 1
                if version.tn > horizon:
                    interior += 1
        if discarded:
            self._versions = retained
        return discarded, interior

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.key!r}: {self._versions!r}>"
