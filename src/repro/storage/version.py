"""Version records.

A version is one immutable value of an object, tagged with the transaction
number of its creator.  Version numbers are monotone per object and equal the
creator's ``tn`` (paper Section 3.2), so the per-object version order the
correctness proofs rely on is simply numeric order.

Timestamp-ordering protocols additionally keep per-version timestamps:
``w_ts`` (always the creator's number) and ``r_ts`` (largest number of any
transaction that read this version — used by Reed's MVTO, where a too-late
write between a version and its read timestamp must be rejected).
"""

from __future__ import annotations

from typing import Any


class Version:
    """One version of one object."""

    __slots__ = ("tn", "value", "pending", "r_ts", "r_ts_ro", "r_ts_rw", "creator_txn_id")

    def __init__(
        self,
        tn: int,
        value: Any,
        pending: bool = False,
        creator_txn_id: int | None = None,
    ):
        #: Version number == creator's transaction number (w_ts).
        self.tn = tn
        self.value = value
        #: A pending version exists in the chain but its writer has not
        #: committed; timestamp-ordering readers must wait for it to clear.
        self.pending = pending
        #: Largest transaction number that has read this version.
        self.r_ts = 0
        #: Largest *read-only* and *read-write* reader timestamps — kept
        #: separately by Reed's MVTO baseline, which lets read-only
        #: transactions raise read timestamps; a rejection is attributed to
        #: read-only readers when only r_ts_ro exceeds the writer's number.
        self.r_ts_ro = 0
        self.r_ts_rw = 0
        self.creator_txn_id = creator_txn_id if creator_txn_id is not None else tn

    @property
    def w_ts(self) -> int:
        """Write timestamp — an alias for the version number."""
        return self.tn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " pending" if self.pending else ""
        return f"<v{self.tn}={self.value!r} r_ts={self.r_ts}{flag}>"
