"""Garbage collection of old versions — paper Section 6.

The paper's single stated constraint: the collector "must not discard any
version of objects as young as or younger than vtnc", and it may keep
"information about read-only transactions" to go further.  We implement the
natural collector those two sentences describe:

* active read-only transactions register their start numbers;
* the *horizon* is ``min(vtnc, min(active start numbers))``;
* per object, the newest version at or below the horizon survives (it is the
  one a snapshot at the horizon reads) together with every younger version;
  strictly older versions are discarded.

Because future read-only transactions receive ``sn = vtnc``, and active ones
hold ``sn <= vtnc``, no read a correct client can issue ever needs a
discarded version — property EXP-H verifies empirically and tests verify on
adversarial schedules.

The collector is deliberately independent of the concurrency-control
component, illustrating the paper's modularity argument: it consumes only the
version-control counters and the read-only registry.
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.errors import ProtocolError
from repro.obs.tracer import NULL_TRACER
from repro.storage.mvstore import MVStore


class ReadOnlyRegistry:
    """Tracks start numbers of in-flight read-only transactions.

    Several read-only transactions may share a start number, so the registry
    is a multiset keyed by ``sn``.
    """

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def register(self, txn: Transaction) -> None:
        if txn.sn is None:
            raise ProtocolError(f"transaction {txn.txn_id} has no start number")
        sn = int(txn.sn)
        self._counts[sn] = self._counts.get(sn, 0) + 1

    def deregister(self, txn: Transaction) -> None:
        sn = int(txn.sn) if txn.sn is not None else None
        if sn is None or sn not in self._counts:
            raise ProtocolError(
                f"transaction {txn.txn_id} (sn={txn.sn}) is not registered"
            )
        self._counts[sn] -= 1
        if self._counts[sn] == 0:
            del self._counts[sn]

    def min_active_sn(self) -> int | None:
        """Smallest start number still held by an active read-only txn."""
        return min(self._counts) if self._counts else None

    def active_count(self) -> int:
        return sum(self._counts.values())


class GarbageCollector:
    """Periodic version collector bound to one store and one VC module."""

    def __init__(
        self,
        store: MVStore,
        version_control: VersionControl,
        registry: ReadOnlyRegistry | None = None,
    ):
        self._store = store
        self._vc = version_control
        self.registry = registry if registry is not None else ReadOnlyRegistry()
        #: Cumulative versions discarded by this collector.
        self.total_discarded = 0
        #: Number of collection passes run.
        self.passes = 0
        #: Structured-event tracer (gc.sweep per pass); NULL_TRACER unless
        #: attach_tracer() wired one.
        self.tracer = NULL_TRACER
        #: Optional MetricsRegistry publishing the version-footprint gauges
        #: (``gc.live_versions``, ``gc.max_chain``) after every pass — the
        #: first concrete step of the bounded-GC roadmap item.  Wired by the
        #: owning scheduler; None keeps collect() allocation-free.
        self.metrics = None

    def horizon(self) -> int:
        """The largest version number guaranteed no longer needed *below*.

        ``min(vtnc, min active read-only sn)`` — versions strictly older than
        the newest version at or below this bound are unreachable.
        """
        bound = self._vc.vtnc
        min_sn = self.registry.min_active_sn()
        if min_sn is not None and min_sn < bound:
            bound = min_sn
        return bound

    def collect(self) -> int:
        """Run one collection pass; returns the number of versions discarded."""
        horizon = self.horizon()
        discarded = self._store.prune(horizon)
        self.total_discarded += discarded
        self.passes += 1
        if self.metrics is not None or self.tracer.enabled:
            live, longest = self._store.chain_stats()
            if self.metrics is not None:
                self.metrics.gauge("gc.live_versions").set(live)
                self.metrics.gauge("gc.max_chain").set(longest)
            if self.tracer.enabled:
                self.tracer.emit(
                    "gc.sweep",
                    horizon=horizon,
                    discarded=discarded,
                    active_readers=self.registry.active_count(),
                    live_versions=live,
                    max_chain=longest,
                )
        return discarded
