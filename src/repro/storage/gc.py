"""Garbage collection of old versions — paper Section 6, bounded.

The paper's single stated constraint: the collector "must not discard any
version of objects as young as or younger than vtnc", and it may keep
"information about read-only transactions" to go further.  The original
collector here kept a single *horizon* — ``min(vtnc, min active RO sn)`` —
and pruned strictly below it.  Correct, but unbounded: one long-running
analytics snapshot pins the horizon and every chain's suffix above it grows
with the write rate (the production HTAP failure mode).

This module now implements **range-tracked bounded collection** after
Ben-David et al., "Space and Time Bounded Multiversion Garbage Collection"
(arXiv 2108.02775):

* active read-only transactions hold **snapshot leases** — the
  :class:`ReadOnlyRegistry` is a lease table keyed by transaction, with a
  virtual-time TTL, renewal on every read, and oldest-first revocation;
* the retained set is computed from the *actual* set of live snapshot
  numbers: each live ``sn`` pins exactly one version per chain (the newest
  version ``<= sn`` — the one that snapshot reads), and ``vtnc`` pins the
  version every future snapshot starts from;
* everything else at or below ``vtnc`` is reclaimed, **including versions
  between two pinned snapshots** — per-chain compaction a prefix-only
  pruner cannot do.  Retained versions per chain are bounded by
  ``live leases + visibility lag + pending writers + 1``, independent of
  run length;
* the sweep is one merge walk per chain (``O(chain + pins)``); charging
  the walk to the versions it reclaims gives O(1) amortized reclamation,
  tracked by the collector's ``versions_scanned`` / ``total_discarded``
  counters.

When memory pressure still exceeds the high watermark (see
:class:`repro.qos.memory.MemoryPressureController`), the oldest leases are
*revoked*: their pins disappear, GC advances, and the revoked session's
next read fails with a typed, retryable
:class:`~repro.errors.SnapshotTooOld` — degrade, don't die, and never a
wrong read.

The collector remains deliberately independent of the concurrency-control
component, illustrating the paper's modularity argument: it consumes only
the version-control counters and the lease table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.errors import ProtocolError, SnapshotTooOld
from repro.obs.tracer import NULL_TRACER
from repro.storage.mvstore import MVStore


@dataclass
class SnapshotLease:
    """One read-only transaction's claim on its snapshot.

    While the lease is live, garbage collection retains (per chain) the one
    version the snapshot at ``sn`` reads.  The lease expires when its
    virtual-time TTL passes without a renewal, and may be revoked earlier
    by the memory-pressure controller; either way the pin is released and
    the session's next read raises :class:`~repro.errors.SnapshotTooOld`.
    """

    txn_id: int
    sn: int
    granted_at: float
    expires_at: float  # +inf when the registry has no TTL
    seq: int  # registration order; tie-break for oldest-first revocation
    renewals: int = 0
    revoked: bool = False
    revoke_cause: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def live(self) -> bool:
        return not self.revoked


class ReadOnlyRegistry:
    """Lease table for in-flight read-only transactions.

    Backwards-compatible with its multiset ancestor: several read-only
    transactions may share a start number, and ``min_active_sn`` /
    ``active_count`` aggregate over live leases only.  New surface:

    * ``ttl`` — virtual-time lease duration; ``None`` (default) means
      leases never expire by time, preserving the original behavior for
      schedulers that never wire a clock;
    * :meth:`renew` — called on every read; pushes ``expires_at`` out;
    * :meth:`check` — raises :class:`~repro.errors.SnapshotTooOld` for a
      revoked lease (the *only* way a revocation surfaces: never mid-read);
    * :meth:`expire_due` / :meth:`revoke_oldest` — the two revocation
      paths (TTL expiry, memory pressure), both oldest-first and
      deterministic;
    * :meth:`active_sns` — the ascending distinct live snapshot numbers:
      the GC pin set.
    """

    def __init__(self, ttl: float | None = None, clock: Callable[[], float] | None = None):
        if ttl is not None and ttl <= 0:
            raise ValueError("lease ttl must be > 0 (or None for no expiry)")
        self.ttl = ttl
        #: Virtual-time source for lease grant/renewal stamps.  Campaigns
        #: wire ``sim.now``; the default clock pins every stamp to 0.0 so a
        #: TTL-less registry behaves exactly like the original multiset.
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._counts: dict[int, int] = {}
        self._leases: dict[int, SnapshotLease] = {}
        self._seq = 0
        #: Cumulative revocations, by cause.
        self.revoked_counts: dict[str, int] = {}

    # -- registration -------------------------------------------------------------

    def register(self, txn: Transaction) -> SnapshotLease:
        if txn.sn is None:
            raise ProtocolError(f"transaction {txn.txn_id} has no start number")
        if txn.txn_id in self._leases:
            raise ProtocolError(
                f"transaction {txn.txn_id} already holds a snapshot lease "
                f"(sn={self._leases[txn.txn_id].sn}); register() must be "
                "called exactly once per read-only transaction"
            )
        sn = int(txn.sn)
        now = self.clock()
        self._seq += 1
        lease = SnapshotLease(
            txn_id=txn.txn_id,
            sn=sn,
            granted_at=now,
            expires_at=(now + self.ttl) if self.ttl is not None else float("inf"),
            seq=self._seq,
        )
        self._leases[txn.txn_id] = lease
        self._counts[sn] = self._counts.get(sn, 0) + 1
        return lease

    def deregister(self, txn: Transaction) -> None:
        lease = self._leases.pop(txn.txn_id, None)
        if lease is None:
            raise ProtocolError(
                f"transaction {txn.txn_id} (sn={txn.sn}) holds no snapshot "
                f"lease; live sn multiset: {self.snapshot_counts()!r}"
            )
        if lease.revoked:
            # The pin was already released at revocation time; the session
            # is just cleaning up after its SnapshotTooOld.
            return
        self._release_pin(lease.sn)

    def _release_pin(self, sn: int) -> None:
        count = self._counts.get(sn)
        if count is None:  # pragma: no cover - internal invariant
            raise ProtocolError(
                f"lease table out of sync: sn={sn} missing from multiset "
                f"{self.snapshot_counts()!r}"
            )
        if count == 1:
            del self._counts[sn]
        else:
            self._counts[sn] = count - 1

    # -- lease lifecycle -----------------------------------------------------------

    def lease_of(self, txn: Transaction) -> SnapshotLease | None:
        return self._leases.get(txn.txn_id)

    def check(self, txn: Transaction) -> SnapshotLease:
        """The read-path guard: return the live lease or raise.

        Raises :class:`~repro.errors.SnapshotTooOld` when the lease was
        revoked (memory pressure or TTL expiry) — *before* the read touches
        the store, so a session can never observe a reclaimed version.
        """
        lease = self._leases.get(txn.txn_id)
        if lease is None:
            raise ProtocolError(
                f"transaction {txn.txn_id} holds no snapshot lease; "
                f"live sn multiset: {self.snapshot_counts()!r}"
            )
        if lease.revoked:
            raise SnapshotTooOld(
                txn.txn_id, sn=lease.sn, cause=lease.revoke_cause or "revoked"
            )
        return lease

    def renew(self, txn: Transaction) -> SnapshotLease:
        """Renew on read: push the lease's expiry out by one TTL."""
        lease = self.check(txn)
        lease.renewals += 1
        if self.ttl is not None:
            lease.expires_at = self.clock() + self.ttl
        return lease

    # -- revocation ----------------------------------------------------------------

    def _revoke(self, lease: SnapshotLease, cause: str) -> None:
        lease.revoked = True
        lease.revoke_cause = cause
        self._release_pin(lease.sn)
        self.revoked_counts[cause] = self.revoked_counts.get(cause, 0) + 1

    def expire_due(self, now: float) -> list[SnapshotLease]:
        """Revoke every lease whose TTL passed, oldest-first; return them.

        Clock-free by design (like the lock manager's deadline sweep): the
        registry never watches time on its own, someone must sweep it.
        """
        due = [
            lease
            for lease in self._leases.values()
            if lease.live and lease.expires_at <= now
        ]
        due.sort(key=lambda lease: (lease.sn, lease.seq))
        for lease in due:
            self._revoke(lease, "lease_expired")
        return due

    def revoke_oldest(self, count: int = 1, cause: str = "memory_pressure") -> list[SnapshotLease]:
        """Revoke the ``count`` oldest live leases; return them.

        Oldest-first means smallest snapshot number first (those pin the
        oldest versions and block the most reclamation), registration
        order breaking ties — fully deterministic, so seeded campaigns
        replay revocations bit-for-bit.
        """
        victims = sorted(
            (lease for lease in self._leases.values() if lease.live),
            key=lambda lease: (lease.sn, lease.seq),
        )[: max(0, count)]
        for lease in victims:
            self._revoke(lease, cause)
        return victims

    # -- aggregate views (the GC-facing surface) -------------------------------------

    def min_active_sn(self) -> int | None:
        """Smallest start number still pinned by a live lease."""
        return min(self._counts) if self._counts else None

    def active_sns(self) -> list[int]:
        """Ascending distinct live snapshot numbers — the GC pin set."""
        return sorted(self._counts)

    def active_count(self) -> int:
        """Live (unrevoked) leases."""
        return sum(self._counts.values())

    def lease_count(self) -> int:
        """All leases still registered, revoked ones included."""
        return len(self._leases)

    def snapshot_counts(self) -> dict[int, int]:
        """The live sn multiset ``{sn: holders}`` (diagnostics / errors)."""
        return dict(sorted(self._counts.items()))


class GarbageCollector:
    """Periodic bounded version collector for one store and one VC module.

    Each pass retains, per chain, exactly the versions pinned by the live
    snapshot leases plus the ``vtnc`` version and everything younger; see
    the module docstring for the range-tracking rule.  With
    ``bounded=False`` the collector falls back to the paper's literal
    horizon rule (``MVStore.prune``) — kept for the ablation benchmarks
    that measure what bounding buys.
    """

    def __init__(
        self,
        store: MVStore,
        version_control: VersionControl,
        registry: ReadOnlyRegistry | None = None,
        bounded: bool = True,
    ):
        self._store = store
        self._vc = version_control
        self.registry = registry if registry is not None else ReadOnlyRegistry()
        self.bounded = bounded
        #: Cumulative versions discarded by this collector.
        self.total_discarded = 0
        #: Discarded versions a horizon-only collector would have retained
        #: (reclaimed from *between* pinned snapshots) — the range-tracking
        #: dividend.
        self.interior_discarded = 0
        #: Total versions examined across all sweeps — the cost side of the
        #: amortized-reclamation accounting.
        self.versions_scanned = 0
        #: Number of collection passes run.
        self.passes = 0
        #: Structured-event tracer (gc.sweep per pass); NULL_TRACER unless
        #: attach_tracer() wired one.
        self.tracer = NULL_TRACER
        #: Optional MetricsRegistry publishing the version-footprint gauges
        #: (``gc.live_versions``, ``gc.max_chain``) after every pass.
        #: Wired by the owning scheduler; None keeps collect() cheap.
        self.metrics = None

    def horizon(self) -> int:
        """The single-horizon bound: ``min(vtnc, min active RO sn)``.

        The unbounded collector prunes strictly below this; the bounded
        collector only uses it to classify interior reclamation.  Exposed
        for tests and the legacy path.
        """
        bound = self._vc.vtnc
        min_sn = self.registry.min_active_sn()
        if min_sn is not None and min_sn < bound:
            bound = min_sn
        return bound

    def scan_cost_per_reclaimed(self) -> float:
        """Amortized sweep cost: versions examined per version reclaimed."""
        if self.total_discarded == 0:
            return float(self.versions_scanned)
        return self.versions_scanned / self.total_discarded

    def collect(self) -> int:
        """Run one collection pass; returns the number of versions discarded."""
        visible = self._vc.vtnc
        pins = self.registry.active_sns()
        if self.bounded:
            discarded, interior, scanned = self._store.prune_versions(
                visible, pins
            )
        else:
            discarded = self._store.prune(self.horizon())
            interior, scanned = 0, 0
        self.total_discarded += discarded
        self.interior_discarded += interior
        self.versions_scanned += scanned
        self.passes += 1
        if self.metrics is not None or self.tracer.enabled:
            live, longest = self._store.chain_stats()
            if self.metrics is not None:
                self.metrics.gauge("gc.live_versions").set(live)
                self.metrics.gauge("gc.max_chain").set(longest)
            if self.tracer.enabled:
                self.tracer.emit(
                    "gc.sweep",
                    horizon=self.horizon(),
                    visible=visible,
                    pins=len(pins),
                    discarded=discarded,
                    interior=interior,
                    scanned=scanned,
                    active_readers=self.registry.active_count(),
                    live_versions=live,
                    max_chain=longest,
                )
        return discarded
