"""Storage substrates: multiversion chains, single-version store, GC."""

from repro.storage.gc import GarbageCollector, ReadOnlyRegistry
from repro.storage.wal import LogRecord, RecordKind, WriteAheadLog, recover
from repro.storage.mvstore import MVStore
from repro.storage.svstore import SVStore
from repro.storage.version import Version
from repro.storage.versioned_object import VersionedObject

__all__ = [
    "GarbageCollector",
    "MVStore",
    "ReadOnlyRegistry",
    "LogRecord",
    "RecordKind",
    "SVStore",
    "Version",
    "VersionedObject",
    "WriteAheadLog",
    "recover",
]
