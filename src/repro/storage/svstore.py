"""Single-version store for the single-version baseline protocols.

Keeps one committed value per key plus the transaction number of its writer,
so histories recorded against it still carry the reads-from information the
serializability oracle needs (a read is recorded as reading the last
committed writer's "version").

Baselines stage writes privately and apply them atomically at commit (strict
protocols with deferred update), so abort needs no undo log.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator


class SVStore:
    """Key-addressed single-version storage with writer attribution."""

    def __init__(self, initial_value: Any = None):
        self._values: dict[Hashable, Any] = {}
        self._writer_tn: dict[Hashable, int] = {}
        self._initial_value = initial_value

    def preload(self, contents: dict[Hashable, Any]) -> None:
        """Populate initial values, attributed to transaction 0."""
        for key, value in contents.items():
            self._values[key] = value
            self._writer_tn[key] = 0

    def read(self, key: Hashable) -> tuple[Any, int]:
        """Return ``(value, writer_tn)`` for ``key``.

        Unknown keys read the initial value, attributed to transaction 0.
        """
        if key in self._values:
            return self._values[key], self._writer_tn[key]
        return self._initial_value, 0

    def apply(self, key: Hashable, value: Any, writer_tn: int) -> None:
        """Overwrite ``key`` with a committed value."""
        self._values[key] = value
        self._writer_tn[key] = writer_tn

    def keys(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)
