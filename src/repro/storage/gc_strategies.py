"""Garbage-collection strategies over the version-control horizon.

Paper Section 6 presents garbage collection as an area the decoupling opens
for experimentation: any collector is correct as long as it respects the
horizon (``min(vtnc, oldest active read-only start number)``).  Three
strategies are provided, all consuming only version-control state:

* **periodic** — sweep the whole store every N time units (the default the
  bench runner drives);
* **eager** — sweep whenever visibility has advanced by at least a stride
  since the last sweep, reclaiming promptly at the cost of more sweeps;
* **budgeted** — amortized incremental sweeps touching at most K objects per
  pass, round-robin, bounding per-pass latency.

The ablation experiment (``benchmarks/bench_ablation_gc.py``) compares
retained-version footprints and per-pass work across strategies.
"""

from __future__ import annotations

from repro.core.version_control import VersionControl
from repro.storage.gc import GarbageCollector, ReadOnlyRegistry
from repro.storage.mvstore import MVStore


class EagerCollector(GarbageCollector):
    """Collects whenever visibility advanced by at least ``stride``.

    Subscribes to the version-control module's advance events; the paper's
    modularity shows here — no scheduler or CC code is touched.
    """

    def __init__(
        self,
        store: MVStore,
        version_control: VersionControl,
        registry: ReadOnlyRegistry | None = None,
        stride: int = 1,
    ):
        super().__init__(store, version_control, registry)
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self._last_collected_at = version_control.vtnc
        version_control.subscribe(self._on_event)

    def _on_event(self, event: str, _number: int) -> None:
        if event != "advance":
            return
        if self._vc.vtnc - self._last_collected_at >= self.stride:
            self._last_collected_at = self._vc.vtnc
            self.collect()


class BudgetedCollector(GarbageCollector):
    """Incremental round-robin collection with a per-pass object budget."""

    def __init__(
        self,
        store: MVStore,
        version_control: VersionControl,
        registry: ReadOnlyRegistry | None = None,
        budget: int = 16,
    ):
        super().__init__(store, version_control, registry)
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self._cursor = 0

    def collect(self) -> int:
        if self.bounded:
            discarded, self._cursor = self._store.prune_some(
                self.horizon(),
                self.budget,
                self._cursor,
                pins=self.registry.active_sns(),
                visible=self._vc.vtnc,
            )
        else:
            discarded, self._cursor = self._store.prune_some(
                self.horizon(), self.budget, self._cursor
            )
        self.total_discarded += discarded
        self.passes += 1
        return discarded


STRATEGIES = {
    "periodic": GarbageCollector,
    "eager": EagerCollector,
    "budgeted": BudgetedCollector,
}
