"""Write-ahead logging and crash recovery for the multiversion store.

The paper's opening sentence — "Multiple versions of data are used in
database systems to support transaction and system recovery" — presumes a
recovery substrate.  This module supplies it for the version-controlled
schedulers:

* a :class:`WriteAheadLog` of typed records with an explicit *durable
  boundary*: records past the last ``force()`` are lost on crash;
* the logging discipline for the commit path: a transaction's writes and its
  ``COMMIT(tn)`` record are forced **before** versions are installed, so a
  committed transaction is always reconstructible and an uncommitted one
  never resurfaces;
* :func:`recover` — rebuild the store, the version-control counters, and
  the visibility frontier from the durable log alone.

Multiversioning makes recovery pleasantly simple: there is nothing to undo
(uncommitted writes are private; pending versions are recreated only by a
logged commit) and redo is just re-installing each committed transaction's
versions under its transaction number, in number order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.core.version_control import VersionControl
from repro.errors import CorruptLogError, ReproError
from repro.obs.tracer import NULL_TRACER
from repro.storage.mvstore import MVStore


class RecordKind(enum.Enum):
    WRITE = "write"          # (txn_id, key, value)
    COMMIT = "commit"        # (txn_id, tn)
    ABORT = "abort"          # (txn_id,)
    CHECKPOINT = "ckpt"      # value = {"versions": [(key, tn, value)...], "next_tn": int}


@dataclass(frozen=True)
class LogRecord:
    kind: RecordKind
    txn_id: int
    key: Hashable | None = None
    value: Any = None
    tn: int | None = None


class CrashLost(ReproError):
    """Raised when reading past the durable boundary after a crash."""


class WriteAheadLog:
    """Append-only log with an explicit durable boundary.

    ``append`` adds a volatile record; ``force`` makes everything so far
    durable; ``crash`` discards the volatile suffix.  Real systems flush to
    stable storage — the boundary models exactly that, letting tests inject
    crashes at any point of the commit protocol.
    """

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._durable = 0
        #: Indices of records that reached stable storage only partially
        #: (an interrupted ``force()``).  A torn *tail* record is treated by
        #: :func:`recover` as the durable boundary; a torn record with valid
        #: records after it is stable-media damage (:class:`CorruptLogError`).
        self._torn: set[int] = set()
        #: Number of force (flush) operations — a cost proxy.
        self.forces = 0
        #: Structured-event tracer (wal.append / wal.force / wal.crash);
        #: NULL_TRACER unless attach_tracer() wired one.
        self.tracer = NULL_TRACER

    def append(self, record: LogRecord) -> None:
        self._records.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                "wal.append", kind=record.kind.value, txn=record.txn_id, tn=record.tn
            )

    def force(self) -> None:
        volatile = len(self._records) - self._durable
        self._durable = len(self._records)
        self.forces += 1
        if self.tracer.enabled:
            self.tracer.emit("wal.force", made_durable=volatile, durable=self._durable)

    def partial_force(self, records: int, tear_last: bool = True) -> int:
        """A ``force()`` interrupted by a crash mid-flush.

        Only the first ``records`` volatile records reach stable storage,
        and (when ``tear_last``) the last of them lands torn — partially
        written, unreadable past its header.  Returns how many records
        became durable.  Fault drills call this, then :meth:`crash`, to
        model power loss during the flush; :func:`recover` must treat the
        torn tail as the durable boundary.
        """
        made = min(max(records, 0), len(self._records) - self._durable)
        self._durable += made
        self.forces += 1
        if tear_last and made > 0:
            self._torn.add(self._durable - 1)
        if self.tracer.enabled:
            self.tracer.emit(
                "wal.force", made_durable=made, durable=self._durable, torn=tear_last
            )
        return made

    def torn_indices(self) -> set[int]:
        """Indices (into the record list) of partially-written records."""
        return set(self._torn)

    def crash(self) -> int:
        """Drop volatile records; returns how many were lost."""
        lost = len(self._records) - self._durable
        del self._records[self._durable :]
        if self.tracer.enabled:
            self.tracer.emit("wal.crash", lost=lost, durable=self._durable)
        return lost

    def truncate_before_checkpoint(self) -> int:
        """Drop durable records preceding the last durable CHECKPOINT.

        Returns the number of records dropped.  Safe because the checkpoint
        record carries everything recovery needs up to its position.
        """
        last_ckpt = None
        for index in range(self._durable - 1, -1, -1):
            if self._records[index].kind is RecordKind.CHECKPOINT:
                last_ckpt = index
                break
        if last_ckpt is None or last_ckpt == 0:
            return 0
        del self._records[:last_ckpt]
        self._durable -= last_ckpt
        self._torn = {i - last_ckpt for i in self._torn if i >= last_ckpt}
        return last_ckpt

    def durable_records(self) -> list[LogRecord]:
        return list(self._records[: self._durable])

    def durable_length(self) -> int:
        """Offset of the durable boundary (number of durable records)."""
        return self._durable

    def durable_suffix(self, offset: int) -> list[LogRecord]:
        """Durable records from ``offset`` on — the log-shipping unit.

        A replica that has applied (or acknowledged) a prefix of length
        ``offset`` catches up by applying exactly this suffix; shipping it
        again is harmless because application is idempotent
        (:func:`install_committed`).
        """
        if offset < 0:
            raise ValueError(f"negative log offset {offset}")
        return list(self._records[offset : self._durable])

    def all_records(self) -> list[LogRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


def _record_fault(index: int, record: object) -> str | None:
    """Why ``record`` is malformed, or None when it is well-formed."""
    if not isinstance(record, LogRecord):
        return f"not a LogRecord: {record!r}"
    if not isinstance(record.kind, RecordKind):
        return f"unknown record kind {record.kind!r}"
    if record.kind is RecordKind.WRITE and record.key is None:
        return "WRITE record without a key"
    if record.kind is RecordKind.COMMIT and not isinstance(record.tn, int):
        return f"COMMIT record without a transaction number (tn={record.tn!r})"
    if record.kind is RecordKind.CHECKPOINT:
        value = record.value
        if (
            not isinstance(value, dict)
            or "versions" not in value
            or "next_tn" not in value
        ):
            return "CHECKPOINT record missing versions/next_tn"
    return None


def validate_durable(log: WriteAheadLog) -> list[LogRecord]:
    """The readable durable prefix of ``log``, corruption-checked.

    A torn or malformed *tail* record is the expected trace of a crash
    during ``force()``: everything before it flushed, it did not.  Recovery
    treats it as the durable boundary and drops it.  A torn or malformed
    record with valid records *after* it cannot be explained by any crash —
    the medium is damaged — so it raises :class:`CorruptLogError` rather
    than silently skipping records (which could drop committed writes).
    """
    records = log.durable_records()
    torn = log.torn_indices()
    boundary = len(records)
    for index in range(len(records) - 1, -1, -1):
        fault = "torn record" if index in torn else _record_fault(index, records[index])
        if fault is None:
            continue
        if index == boundary - 1:
            boundary = index  # torn/garbage tail: durable boundary moves back
            continue
        raise CorruptLogError(index, fault)
    return records[:boundary]


def install_committed(
    store: MVStore, tn: int, items: Iterable[tuple[Hashable, Any]]
) -> None:
    """Idempotently install one committed transaction's writes under ``tn``.

    The single apply primitive shared by crash recovery and replica
    catch-up: re-applying the same durable prefix any number of times
    (a duplicated shipment, a restarted replay) converges to the same
    version chains, because an already-present version is overwritten in
    place instead of raising on the duplicate ``tn``.  Callers pass items
    in log order, so the last write per key wins — same as first apply.
    """
    for key, value in items:
        obj = store.object(key)
        existing = obj.find(tn)
        if existing is None:
            store.install(key, tn, value)
        else:
            existing.value = value


def recover(log: WriteAheadLog) -> tuple[MVStore, VersionControl]:
    """Rebuild store and version control from the durable log.

    Recovery starts from the last durable CHECKPOINT (if any) — which
    carries the retained version set and the numbering frontier — and
    replays committed transactions' writes after it, in transaction-number
    order.  Uncommitted writes (no durable COMMIT) and aborted transactions
    are skipped — their versions never existed durably.  The rebuilt
    ``VersionControl`` resumes numbering above the highest committed number,
    with full visibility (every surviving transaction is complete).

    A torn tail record (interrupted ``force()``) marks the durable
    boundary; a malformed record before the tail raises
    :class:`~repro.errors.CorruptLogError`.
    """
    records = validate_durable(log)
    start = 0
    base_versions: list[tuple[Hashable, int, Any]] = []
    base_next_tn = 1
    for index in range(len(records) - 1, -1, -1):
        if records[index].kind is RecordKind.CHECKPOINT:
            base_versions = records[index].value["versions"]
            base_next_tn = records[index].value["next_tn"]
            start = index + 1
            break

    writes: dict[int, list[tuple[Hashable, Any]]] = {}
    committed: dict[int, int] = {}  # txn_id -> tn
    aborted: set[int] = set()
    for record in records[start:]:
        if record.kind is RecordKind.WRITE:
            writes.setdefault(record.txn_id, []).append((record.key, record.value))
        elif record.kind is RecordKind.COMMIT:
            assert record.tn is not None
            committed[record.txn_id] = record.tn
        elif record.kind is RecordKind.ABORT:
            aborted.add(record.txn_id)

    store = MVStore()
    max_tn = base_next_tn - 1
    for key, tn, value in base_versions:
        if tn == 0:
            store.object(key)  # initial version exists implicitly
        else:
            store.install(key, tn, value)
    for txn_id, tn in sorted(committed.items(), key=lambda item: item[1]):
        if txn_id in aborted:  # pragma: no cover - protocol never does both
            continue
        install_committed(store, tn, writes.get(txn_id, ()))
        max_tn = max(max_tn, tn)

    vc = VersionControl(first_tn=max_tn + 1)
    return store, vc


def redo_summary(records: Iterable[LogRecord]) -> dict[str, int]:
    """Counts by record kind — used by tests and the recovery example."""
    summary: dict[str, int] = {}
    for record in records:
        summary[record.kind.value] = summary.get(record.kind.value, 0) + 1
    return summary
