"""Seeded fault-injection drills over the distributed protocols.

A *drill* runs a randomized multi-client workload against one distributed
database (``dvc`` — the paper's distributed VC + 2PL — or ``dmv2pl``, the
ref [8] baseline) on the virtual clock, with a
:class:`~repro.faults.courier.FaultyCourier` corrupting the network per a
seeded :class:`~repro.faults.schedule.FaultSchedule` and a crasher process
fail-stopping random sites (WAL-replay restart).  A
:class:`~repro.faults.invariants.FaultInvariantChecker` asserts the paper's
invariants throughout; the :class:`DrillReport` carries the verdict plus
fault/commit tallies.  Everything — client think times, key choices, fault
draws, crash times — derives from the master seed, so any failing drill
replays bit-for-bit from ``(protocol, seed, knobs)``.

``python -m repro drill`` runs campaigns of these (see :func:`main`);
``run_campaign`` is the library entry point.

DMV2PL drills run read-write clients only: its read-only anomaly (torn
global reads) is the paper result the protocol exists to demonstrate, not
a fault-handling bug, so drills assert serializability of the read-write
subhistory plus durability — the properties crashes and message faults
could actually break.
"""

from __future__ import annotations

import argparse
import sys

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.distributed.database import DistributedVCDatabase
from repro.distributed.dmv2pl import DistributedMV2PL
from repro.errors import ProtocolError, TransactionAborted
from repro.faults.courier import FaultyCourier, RetryPolicy
from repro.faults.invariants import FaultInvariantChecker
from repro.faults.schedule import DEFAULT_SPEC, FaultSchedule, FaultSpec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams

PROTOCOLS = ("dvc", "dmv2pl")


@dataclass
class DrillReport:
    """Outcome of one seeded drill."""

    protocol: str
    seed: int
    duration: float
    commits: int = 0
    aborts: int = 0
    ro_commits: int = 0
    crashes: int = 0
    messages: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    wedged: list[str] = field(default_factory=list)
    #: Online watchdog verdict block (``SLOEngine.report()``); None unless
    #: the drill ran with ``slo=True``.
    slo: dict[str, Any] | None = None
    #: Streaming serializability verdict (``WitnessEngine.report()``); None
    #: unless the drill ran with ``witness=True``.
    witness: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.wedged

    def as_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "duration": self.duration,
            "commits": self.commits,
            "aborts": self.aborts,
            "ro_commits": self.ro_commits,
            "crashes": self.crashes,
            "messages": self.messages,
            "faults": dict(self.faults),
            "violations": list(self.violations),
            "wedged": list(self.wedged),
            "slo": self.slo,
            "witness": self.witness,
            "ok": self.ok,
        }


def run_drill(
    protocol: str = "dvc",
    seed: int = 0,
    *,
    duration: float = 300.0,
    n_sites: int = 3,
    writers: int = 4,
    readers: int = 2,
    spec: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
    crash_mean: float | None = 90.0,
    tracer: Tracer = NULL_TRACER,
    slo: bool = False,
    witness: bool = False,
) -> DrillReport:
    """Run one seeded fault drill; returns its :class:`DrillReport`.

    ``crash_mean`` is the mean virtual time between site crash-restarts
    (``None`` disables crashes).  Crashes stop at ``0.8 * duration`` so the
    run always has a quiet tail in which in-flight work settles before the
    final invariant sweep.

    With ``slo`` an :class:`~repro.obs.slo.SLOEngine` with the ``faults``
    profile rides the drill (sharing ``tracer`` when one is given,
    otherwise on its own private tracer); its verdict lands in
    ``report.slo`` and an unexpected breach becomes a violation.

    With ``witness`` a sealing :class:`~repro.obs.witness.WitnessEngine`
    certifies the drill's ``history.*`` stream online; its verdict lands in
    ``report.witness`` and any MVSG cycle (or a tainted seal) becomes a
    violation — the live counterpart of the oracle's post-mortem check.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; pick from {PROTOCOLS}")
    spec = spec if spec is not None else DEFAULT_SPEC
    sim = Simulator()
    streams = RandomStreams(seed)
    latency_rng = streams.stream("latency")
    schedule = FaultSchedule(spec=spec, seed=seed)
    courier = FaultyCourier(
        schedule=schedule,
        retry=retry,
        sim=sim,
        latency=lambda: latency_rng.expovariate(1.0),
    )
    if protocol == "dvc":
        db: Any = DistributedVCDatabase(
            n_sites=n_sites, courier=courier, prepare_timeout=80.0
        )
    else:
        db = DistributedMV2PL(n_sites=n_sites, courier=courier)
        readers = 0  # RO anomaly is the paper result, not a fault bug
    from repro.obs.instrument import attach_tracer

    engine = None
    if slo:
        from repro.obs.slo import FlightRecorder, SLOEngine, faults_objectives

        engine = SLOEngine(
            faults_objectives(),
            window=duration / 16.0,
            recorder=FlightRecorder(capacity=8192),
        )
        if tracer.enabled:
            tracer.add_exporter(engine)
        else:
            # NULL_TRACER is shared and immutable: give the watchdogs
            # their own private tracer instead.
            tracer = Tracer(exporters=[engine])
    certifier = None
    if witness:
        from repro.obs.witness import WitnessEngine

        certifier = WitnessEngine(seal=True)
        if tracer.enabled:
            tracer.add_exporter(certifier)
        else:
            tracer = Tracer(exporters=[certifier])
    if tracer.enabled:
        tracer.clock = lambda: sim.now  # fault timelines in virtual time
    instrumentation = attach_tracer(db, tracer)
    checker = FaultInvariantChecker(db)
    rng = streams.stream("clients")
    keys = [f"s{s}:k{i}" for s in range(1, n_sites + 1) for i in range(4)]
    report = DrillReport(protocol=protocol, seed=seed, duration=duration)

    def writer_client(_i: int):
        while sim.now < duration:
            yield rng.expovariate(0.3)
            if sim.now >= duration:
                return
            txn = db.begin()
            try:
                for key in rng.sample(keys, 2):
                    value = yield db.read(txn, key)
                    yield db.write(txn, key, (value or 0) + 1)
                yield db.commit(txn)
                checker.note_commit(txn)
                report.commits += 1
            except (TransactionAborted, ProtocolError):
                # TransactionAborted: deadlock victim, site failure, or 2PC
                # timeout surfaced through a pending future.  ProtocolError:
                # the transaction was fault-aborted while the client slept
                # between operations, so the next operation's entry guard
                # fired.  Either way: clean up and move on.
                if txn.is_active:
                    db.abort(txn)
                report.aborts += 1

    def reader_client(_i: int):
        while sim.now < duration:
            yield rng.expovariate(0.4)
            if sim.now >= duration:
                return
            txn = db.begin(read_only=True, origin_site=rng.randint(1, n_sites))
            for key in rng.sample(keys, 3):
                yield db.read(txn, key)
            yield db.commit(txn)
            report.ro_commits += 1

    def crasher():
        assert crash_mean is not None
        while True:
            yield rng.expovariate(1.0 / crash_mean)
            # Leave a quiet tail: no crashes in the last fifth of the run,
            # so decided commits settle before the final sweep.
            if sim.now >= 0.8 * duration:
                return
            sid = rng.randint(1, n_sites)
            db.crash_restart_site(sid)
            schedule.counts.crashes += 1
            report.crashes += 1
            checker.snapshot()

    def watcher():
        while sim.now < duration:
            yield duration / 20.0
            checker.snapshot()

    for i in range(writers):
        sim.spawn(writer_client(i), name=f"writer-{i}")
    for i in range(readers):
        sim.spawn(reader_client(i), name=f"reader-{i}")
    if crash_mean is not None:
        sim.spawn(crasher(), name="crasher")
    sim.spawn(watcher(), name="watcher")
    sim.run()

    report.wedged = [p.name for p in sim.blocked_processes()]
    checker.check_final()
    report.violations = list(checker.violations)
    report.messages = courier.delivered
    report.faults = schedule.counts.as_dict()
    if engine is not None:
        engine.finish()
        report.slo = engine.report()
        for breach in engine.unexpected_breaches:
            report.violations.append(
                f"slo breach: {breach.objective} value={breach.value:g} "
                f"vs {breach.threshold} at window "
                f"[{breach.window_start:g}, {breach.window_end:g})"
            )
        tracer.remove_exporter(engine)
    if certifier is not None:
        certifier.finish()
        report.witness = certifier.report()
        report.violations.extend(certifier.gate_violations())
        tracer.remove_exporter(certifier)
    if tracer.enabled:
        tracer.emit(
            "fault.drill.done",
            protocol=protocol,
            seed=seed,
            ok=report.ok,
            commits=report.commits,
            aborts=report.aborts,
            crashes=report.crashes,
        )
    instrumentation.detach()
    return report


def run_campaign(
    protocols: tuple[str, ...] | list[str] = PROTOCOLS,
    seeds: int = 20,
    seed_base: int = 0,
    *,
    progress: Callable[[DrillReport], None] | None = None,
    **drill_kwargs: Any,
) -> list[DrillReport]:
    """Run ``seeds`` drills per protocol; returns every report."""
    reports: list[DrillReport] = []
    for protocol in protocols:
        for offset in range(seeds):
            report = run_drill(protocol, seed_base + offset, **drill_kwargs)
            reports.append(report)
            if progress is not None:
                progress(report)
    return reports


def main(argv: list[str] | None = None) -> int:
    """``python -m repro drill`` — seeded fault campaigns with a verdict."""
    parser = argparse.ArgumentParser(
        prog="repro drill",
        description="Run seeded fault-injection drills over the distributed "
        "protocols and check the paper's invariants.",
    )
    parser.add_argument(
        "--campaign",
        choices=(
            "faults", "overload", "replication", "memory", "availability",
            "shard",
        ),
        default="faults",
        help="faults: network faults + crashes over the distributed "
        "protocols; overload: QoS overload campaign (admission shedding, "
        "deadlines, read-only fast-path guarantee) — see repro.qos.overload; "
        "replication: WAL-shipped replica tier under lossy/partitioned "
        "shipping with a primary fail-over — see repro.replica.campaign; "
        "memory: bounded-GC memory-pressure campaign (snapshot leases, "
        "oldest-first revocation, SnapshotTooOld retries) — see "
        "repro.qos.memory; availability: quorum-mode self-healing drill "
        "(partition the primary, automatic fail-over, RPO=0, split-brain "
        "fencing, crash-point sweep) — see repro.replica.availability; "
        "shard: hash-sharded multi-primary drill (partition one shard, "
        "fail it over mid-batch, certify 1SR + snapshot-vector consistency "
        "+ determinism + fail-over isolation) — see repro.shard.campaign",
    )
    parser.add_argument(
        "--policy",
        choices=("fifo", "lifo-shed", "priority"),
        default="fifo",
        help="admission shedding policy (overload campaign only)",
    )
    parser.add_argument(
        "--protocol",
        choices=(*PROTOCOLS, "both"),
        default="both",
        help="which distributed protocol to drill (default: both)",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="number of seeds per protocol"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first master seed"
    )
    parser.add_argument(
        "--duration", type=float, default=300.0, help="virtual time per drill"
    )
    parser.add_argument("--sites", type=int, default=3, help="sites per database")
    parser.add_argument(
        "--replicas",
        type=int,
        default=3,
        help="replica count (replication campaign only)",
    )
    parser.add_argument(
        "--no-promote",
        action="store_true",
        help="skip the mid-run primary fail-over (replication campaign only)",
    )
    parser.add_argument(
        "--mode",
        choices=("async", "quorum"),
        default="async",
        help="replication durability mode (replication campaign only): "
        "async acknowledges at the local force (RPO = lag), quorum at "
        "majority durability (RPO = 0)",
    )
    parser.add_argument(
        "--drop", type=float, default=DEFAULT_SPEC.drop, help="drop probability"
    )
    parser.add_argument(
        "--duplicate",
        type=float,
        default=DEFAULT_SPEC.duplicate,
        help="duplicate probability",
    )
    parser.add_argument(
        "--delay-spike",
        type=float,
        default=DEFAULT_SPEC.delay_spike,
        help="delay-spike probability",
    )
    parser.add_argument(
        "--crash-mean",
        type=float,
        default=90.0,
        help="mean virtual time between site crash-restarts (0 disables)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write every fault event as JSONL to PATH",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="run the online SLO watchdogs (faults profile) alongside each "
        "drill; an unexpected breach fails the drill",
    )
    parser.add_argument(
        "--witness",
        action="store_true",
        help="certify each drill's history stream online with the sealing "
        "serializability witness; an MVSG cycle fails the drill "
        "(see docs/witness.md)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print the final verdict"
    )
    args = parser.parse_args(argv)

    if args.campaign == "overload":
        return _overload_main(args)
    if args.campaign == "replication":
        return _replication_main(args)
    if args.campaign == "memory":
        return _memory_main(args)
    if args.campaign == "availability":
        return _availability_main(args)
    if args.campaign == "shard":
        return _shard_main(args)

    protocols = PROTOCOLS if args.protocol == "both" else (args.protocol,)
    spec = FaultSpec(
        drop=args.drop, duplicate=args.duplicate, delay_spike=args.delay_spike
    )
    tracer: Tracer = NULL_TRACER
    if args.trace:
        from repro.obs.exporters import JsonlExporter

        tracer = Tracer(exporters=[JsonlExporter(args.trace)])

    def progress(report: DrillReport) -> None:
        if args.quiet:
            return
        verdict = "ok" if report.ok else "FAIL"
        faults = report.faults
        print(
            f"  {report.protocol:7s} seed={report.seed:<4d} {verdict:4s} "
            f"commits={report.commits:<4d} aborts={report.aborts:<3d} "
            f"crashes={report.crashes:<2d} drops={faults.get('drops', 0):<3d} "
            f"dups={faults.get('duplicates', 0):<3d} "
            f"parked={faults.get('partition_deferrals', 0)}"
            + (
                f" slo={'ok' if report.slo['ok'] else 'BREACH'}"
                if report.slo is not None
                else ""
            )
            + (
                f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                if report.witness is not None
                else ""
            )
        )

    print(
        f"fault drill: protocols={','.join(protocols)} seeds={args.seeds} "
        f"spec=(drop={spec.drop}, dup={spec.duplicate}, spike={spec.delay_spike}) "
        f"crash_mean={args.crash_mean or 'off'}"
    )
    reports = run_campaign(
        protocols,
        seeds=args.seeds,
        seed_base=args.seed_base,
        duration=args.duration,
        n_sites=args.sites,
        spec=spec,
        crash_mean=args.crash_mean or None,
        tracer=tracer,
        slo=args.slo,
        witness=args.witness,
        progress=progress,
    )
    tracer.close()

    failed = [r for r in reports if not r.ok]
    total_commits = sum(r.commits for r in reports)
    total_faults = sum(sum(r.faults.values()) for r in reports)
    print(
        f"{len(reports)} drills, {total_commits} commits, "
        f"{total_faults} injected faults, {len(failed)} failed"
    )
    for report in failed:
        print(f"FAILED {report.protocol} seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        for name in report.wedged:
            print(f"  wedged process: {name}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --protocol {report.protocol} "
            f"--seeds 1 --seed-base {report.seed}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _overload_main(args: argparse.Namespace) -> int:
    """``python -m repro drill --campaign overload`` — the QoS drill."""
    from repro.qos.overload import run_overload_campaign

    print(
        f"overload campaign: seeds={args.seeds} policy={args.policy} "
        f"duration={args.duration}"
    )
    failed = []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        report = run_overload_campaign(
            seed, duration=args.duration, policy=args.policy
        )
        if not report.ok:
            failed.append(report)
        if not args.quiet:
            verdict = "ok" if report.ok else "FAIL"
            print(
                f"  seed={seed:<4d} {verdict:4s} "
                f"shed={report.shed_rate:<7.2%} "
                f"miss={report.deadline_miss_rate:<7.2%} "
                f"ro_p99x={report.ro_p99_ratio:<5.2f} "
                f"rw_commits={report.overload.rw_commits:<5d} "
                f"ro_commits={report.overload.ro_commits}"
                + (
                    f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                    if report.witness is not None
                    else ""
                )
            )
    print(f"{args.seeds} campaigns, {len(failed)} failed")
    for report in failed:
        print(f"FAILED seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --campaign overload "
            f"--seeds 1 --seed-base {report.seed} --policy {args.policy}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _memory_main(args: argparse.Namespace) -> int:
    """``python -m repro drill --campaign memory`` — the bounded-GC drill."""
    from repro.qos.memory import run_memory_campaign

    print(
        f"memory campaign: seeds={args.seeds} duration={args.duration}"
    )
    failed = []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        report = run_memory_campaign(seed, duration=args.duration)
        if not report.ok:
            failed.append(report)
        if not args.quiet:
            verdict = "ok" if report.ok else "FAIL"
            stats = report.stats
            print(
                f"  seed={seed:<4d} {verdict:4s} "
                f"peak={stats.peak_live:<4d} (bound {report.live_bound}) "
                f"revoked={len(stats.revocations):<3d} "
                f"too_old={stats.too_old_total:<3d} "
                f"scans={stats.scan_commits:<3d} "
                f"ro={stats.ro_commits:<4d} rw={stats.rw_commits:<4d} "
                f"shed={stats.rw_shed}"
                + (
                    f" slo={'ok' if report.slo['ok'] else 'BREACH'}"
                    if report.slo is not None
                    else ""
                )
                + (
                    f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                    f" (peak {report.witness['peak_tracked']})"
                    if report.witness is not None
                    else ""
                )
            )
    print(f"{args.seeds} campaigns, {len(failed)} failed")
    for report in failed:
        print(f"FAILED seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --campaign memory "
            f"--seeds 1 --seed-base {report.seed}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _replication_main(args: argparse.Namespace) -> int:
    """``python -m repro drill --campaign replication`` — the replica drill."""
    from repro.replica.campaign import REPLICATION_SPEC, run_replication_campaign

    spec = FaultSpec(
        drop=args.drop if args.drop != DEFAULT_SPEC.drop else REPLICATION_SPEC.drop,
        duplicate=args.duplicate
        if args.duplicate != DEFAULT_SPEC.duplicate
        else REPLICATION_SPEC.duplicate,
        delay_spike=args.delay_spike
        if args.delay_spike != DEFAULT_SPEC.delay_spike
        else REPLICATION_SPEC.delay_spike,
    )
    promote = not args.no_promote
    print(
        f"replication campaign: seeds={args.seeds} replicas={args.replicas} "
        f"duration={args.duration} mode={args.mode} spec=(drop={spec.drop}, "
        f"dup={spec.duplicate}, spike={spec.delay_spike}) promote={promote}"
    )
    failed = []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        report = run_replication_campaign(
            seed,
            duration=args.duration,
            n_replicas=args.replicas,
            spec=spec,
            mode=args.mode,
            promote=promote,
        )
        if not report.ok:
            failed.append(report)
        if not args.quiet:
            verdict = "ok" if report.ok else "FAIL"
            phase = report.phase
            print(
                f"  seed={seed:<4d} {verdict:4s} "
                f"rw={phase.rw_commits:<4d} ro={phase.ro_commits:<5d} "
                f"lag_max={phase.max_lag_txns:<3d} "
                f"redirects={phase.ro_redirects:<4d} "
                f"promoted=r{phase.promoted_replica or '-'} "
                f"rpo={phase.rpo_txns if phase.rpo_txns is not None else '-'} "
                f"drops={report.faults.get('drops', 0):<3d} "
                f"parked={report.faults.get('partition_deferrals', 0)}"
                + (
                    f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                    if report.witness is not None
                    else ""
                )
            )
    print(f"{args.seeds} campaigns, {len(failed)} failed")
    for report in failed:
        print(f"FAILED seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        for name in report.phase.wedged:
            print(f"  wedged process: {name}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --campaign replication "
            f"--seeds 1 --seed-base {report.seed} --replicas {args.replicas} "
            f"--mode {args.mode}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _availability_main(args: argparse.Namespace) -> int:
    """``python -m repro drill --campaign availability`` — self-healing drill."""
    from repro.replica.availability import run_availability_campaign

    print(
        f"availability campaign: seeds={args.seeds} replicas={args.replicas} "
        f"duration={args.duration} mode=quorum (partition -> automatic "
        f"fail-over + crash-point sweep)"
    )
    failed = []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        report = run_availability_campaign(
            seed, duration=args.duration, n_replicas=args.replicas
        )
        if not report.ok:
            failed.append(report)
        if not args.quiet:
            verdict = "ok" if report.ok else "FAIL"
            phase = report.phase
            outage = max(phase.outages) if phase.outages else 0.0
            crash_ok = sum(1 for p in report.crash_points if p.ok)
            print(
                f"  seed={seed:<4d} {verdict:4s} "
                f"rw={phase.rw_commits:<4d} post={phase.rw_commits_post:<3d} "
                f"ro={phase.ro_commits:<5d} "
                f"rpo={phase.rpo_txns if phase.rpo_txns is not None else '-'} "
                f"outage={outage:<6.2f} fenced={phase.fenced:<2d} "
                f"split={'fenced' if phase.split_brain_fenced else 'FAIL'} "
                f"crash={crash_ok}/{len(report.crash_points)}"
                + (
                    f" slo={'ok' if report.slo['ok'] else 'BREACH'}"
                    if report.slo is not None
                    else ""
                )
                + (
                    f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                    if report.witness is not None
                    else ""
                )
            )
    print(f"{args.seeds} campaigns, {len(failed)} failed")
    for report in failed:
        print(f"FAILED seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        for name in report.phase.wedged:
            print(f"  wedged process: {name}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --campaign availability "
            f"--seeds 1 --seed-base {report.seed} --replicas {args.replicas}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _shard_main(args: argparse.Namespace) -> int:
    """``python -m repro drill --campaign shard`` — multi-primary drill."""
    from repro.shard.campaign import run_shard_campaign

    print(
        f"shard campaign: seeds={args.seeds} shards={args.sites} "
        f"duration={args.duration} (partition one shard -> fail-over "
        f"mid-batch; certify 1SR + vector consistency + determinism + "
        f"fail-over isolation)"
    )
    failed = []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        report = run_shard_campaign(
            seed, duration=args.duration, n_shards=args.sites
        )
        if not report.ok:
            failed.append(report)
        if not args.quiet:
            verdict = "ok" if report.ok else "FAIL"
            phase = report.phase
            failed_outages = phase.outages_per_shard.get(report.fail_shard, ())
            outage = max(failed_outages) if failed_outages else 0.0
            print(
                f"  seed={seed:<4d} {verdict:4s} "
                f"fast={phase.fast_commits:<4d} x={phase.cross_commits:<3d} "
                f"ro={phase.ro_sessions:<4d} "
                f"audits={phase.audits_failed} "
                f"survive={phase.survivor_commits_during:<3d} "
                f"outage={outage:<6.2f} "
                f"det={'yes' if report.deterministic else 'NO'}"
                + (
                    f" slo={'ok' if report.slo['ok'] else 'BREACH'}"
                    if report.slo is not None
                    else ""
                )
                + (
                    f" witness={'1SR' if report.witness['ok'] else 'FAIL'}"
                    if report.witness is not None
                    else ""
                )
            )
    print(f"{args.seeds} campaigns, {len(failed)} failed")
    for report in failed:
        print(f"FAILED seed={report.seed}:", file=sys.stderr)
        for violation in report.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        for name in report.phase.wedged:
            print(f"  wedged process: {name}", file=sys.stderr)
        print(
            f"  replay: python -m repro drill --campaign shard "
            f"--seeds 1 --seed-base {report.seed} --sites {args.sites}",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
