"""Deterministic fault injection for the distributed reproduction.

The fault layer composes with the rest of the stack instead of replacing
it: a :class:`FaultyCourier` wraps the network seam every distributed
module already goes through, a :class:`FaultSchedule` makes every fault
draw a pure function of the master seed, and a
:class:`FaultInvariantChecker` continuously asserts the paper's invariants
while :func:`run_drill` campaigns shake the protocols with drops,
duplicates, delay spikes, partitions, and site crash-restarts.

See ``docs/faults.md`` for the fault taxonomy and the seed-replay workflow.
"""

from repro.faults.courier import FaultyCourier, RetryPolicy
from repro.faults.drill import DrillReport, run_campaign, run_drill
from repro.faults.invariants import ClusterInvariantChecker, FaultInvariantChecker
from repro.faults.schedule import (
    DEFAULT_SPEC,
    FaultCounts,
    FaultDecision,
    FaultSchedule,
    FaultSpec,
    PartitionWindow,
)

__all__ = [
    "DEFAULT_SPEC",
    "DrillReport",
    "FaultCounts",
    "FaultDecision",
    "ClusterInvariantChecker",
    "FaultInvariantChecker",
    "FaultSchedule",
    "FaultSpec",
    "FaultyCourier",
    "PartitionWindow",
    "RetryPolicy",
    "run_campaign",
    "run_drill",
]
