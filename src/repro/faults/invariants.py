"""Paper invariants checked continuously while faults are injected.

A :class:`FaultInvariantChecker` watches one distributed database —
:class:`~repro.distributed.database.DistributedVCDatabase` or
:class:`~repro.distributed.dmv2pl.DistributedMV2PL` — and asserts, during
and after a drill, the properties the paper's correctness argument rests
on:

* **counter/visibility ordering** — each site's visibility counter stays
  strictly below its next assignable local number (the distributed face of
  Figure 1's ``vtnc <= tnc``);
* **VCQueue consistency** — per-site queues stay sorted by number with
  visibility strictly below the head entry (re-asserted externally, even
  when the module's internal ``checked`` mode is off);
* **visibility monotonicity** — a site's ``vtnc`` never decreases within
  one incarnation (a crash may lawfully reopen visibility at the durable
  frontier, which is why the checker tracks incarnations);
* **no committed-write loss** — after every crash/recovery, each version a
  committed transaction installed is still present, with the committed
  value, in the owning site's store;
* **global one-copy serializability** — the oracle's MVSG check over the
  recorded global history (for DMV2PL under its own version order, and
  only over the read-write subhistory — its read-only anomaly is a paper
  result, not a fault bug).

Violations accumulate as strings; :meth:`assert_ok` raises
:class:`~repro.errors.InvariantViolation` carrying all of them.  Drills
call :meth:`snapshot` between steps (cheap) and :meth:`check_final` once
the run settles (full store/history scan).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.transaction import Transaction
from repro.errors import InvariantViolation
from repro.histories.checker import check_one_copy_serializable
from repro.histories.mvsg import multiversion_serialization_graph


class FaultInvariantChecker:
    """Continuously assert paper invariants over a faulted distributed DB."""

    def __init__(self, db: Any):
        self.db = db
        self.violations: list[str] = []
        #: Per-site (incarnation, vtnc) high-water marks.
        self._visibility_marks: dict[int, tuple[int, int]] = {}
        #: Expected durable state of committed transactions:
        #: txn_id -> list of (site_id, version_tn, key, value).
        self._committed_writes: dict[int, list[tuple[int, int, Hashable, Any]]] = {}

    # -- wiring -------------------------------------------------------------------

    def _is_dvc(self) -> bool:
        return hasattr(next(iter(self.db.sites.values())), "vc")

    def note_commit(self, txn: Transaction) -> None:
        """Record what a just-committed transaction must keep durable."""
        if not txn.write_set or txn.tn is None:
            return
        expected: list[tuple[int, int, Hashable, Any]] = []
        site_numbers = txn.meta.get("site_numbers")  # DMV2PL: per-site numbers
        for key, value in txn.write_set.items():
            site = self.db.site_of_key(key)
            tn = site_numbers[site.site_id] if site_numbers else txn.tn
            expected.append((site.site_id, tn, key, value))
        self._committed_writes[txn.txn_id] = expected

    # -- incremental checks -----------------------------------------------------------

    def snapshot(self) -> None:
        """Cheap mid-run check: VC ordering, queue shape, monotonicity."""
        if not self._is_dvc():
            return
        for sid, site in self.db.sites.items():
            vc = site.vc
            if vc.vtnc >= vc.next_local_number:
                self.violations.append(
                    f"site {sid}: visibility {vc.vtnc} at or above the next "
                    f"assignable number {vc.next_local_number}"
                )
            nums = [entry.num for entry in vc._order]
            if nums != sorted(nums):
                self.violations.append(f"site {sid}: VCQueue out of order: {nums}")
            if nums and vc.vtnc >= nums[0]:
                self.violations.append(
                    f"site {sid}: visibility {vc.vtnc} covers pending entry {nums[0]}"
                )
            incarnation = getattr(site, "incarnation", 0)
            mark = self._visibility_marks.get(sid)
            if mark is not None and mark[0] == incarnation and vc.vtnc < mark[1]:
                self.violations.append(
                    f"site {sid}: visibility regressed {mark[1]} -> {vc.vtnc} "
                    f"within incarnation {incarnation}"
                )
            self._visibility_marks[sid] = (incarnation, vc.vtnc)

    def check_no_committed_write_loss(self) -> None:
        """Every committed write is still installed with its committed value."""
        for txn_id, expected in self._committed_writes.items():
            for sid, tn, key, value in expected:
                store = self.db.sites[sid].store
                version = None
                if key in set(store.keys()):
                    version = store.object(key).find(tn)
                if version is None:
                    self.violations.append(
                        f"T{txn_id}: committed write {key!r}@{tn} lost at site {sid}"
                    )
                elif version.value != value:
                    self.violations.append(
                        f"T{txn_id}: committed write {key!r}@{tn} at site {sid} "
                        f"holds {version.value!r}, expected {value!r}"
                    )

    def check_serializable(self) -> None:
        """Oracle check of the recorded global history."""
        if self._is_dvc():
            report = check_one_copy_serializable(self.db.history)
            if not report.serializable:
                self.violations.append(
                    f"history not one-copy serializable: cycle {report.cycle}"
                )
        else:
            graph = multiversion_serialization_graph(
                self.db.history.committed_projection(),
                self.db.global_version_order(),
            )
            cycle = graph.find_cycle()
            if cycle is not None:
                self.violations.append(
                    f"dmv2pl read-write history not serializable: cycle {list(cycle)}"
                )

    def check_final(self) -> None:
        """Full end-of-drill check (call after the network has drained)."""
        self.snapshot()
        self.check_no_committed_write_loss()
        self.check_serializable()

    # -- verdict ---------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} fault-drill invariant violation(s): "
                + "; ".join(self.violations)
            )


class ClusterInvariantChecker:
    """Replication-tier invariants over a :class:`~repro.replica.cluster.
    ReplicaCluster` (async or quorum mode), mirroring the distributed
    checker's surface: cheap :meth:`snapshot` calls mid-run, one
    :meth:`check_final` after the network drains, violations as strings.

    What it asserts:

    * **watermark monotonicity** — a replica's ``vtnc`` never decreases,
      and never exceeds the primary's assigned-tn frontier (``tnc``);
    * **primary visibility ordering** — ``vtnc <= tnc`` on the primary
      (Figure 1's ordering, surviving promotions);
    * **prefix property** — every replica's applied log is record-for-
      record a prefix of the current primary's durable log (what makes
      promotion-by-recovery sound);
    * **no duplicate commit numbers** — each ``tn`` appears on at most one
      COMMIT record in the primary's durable log (a fenced deposed primary
      must not have smuggled a second history for a number);
    * **acknowledged durability (RPO)** — every ``tn`` recorded via
      :meth:`note_ack` (a commit whose future *resolved*) appears as a
      COMMIT record in the current primary's durable log, across any
      number of fail-overs.  In quorum mode this is the RPO=0 proof; in
      async mode callers only note acks that survived, so it degenerates
      to a convergence check.
    """

    def __init__(self, cluster: Any):
        self.cluster = cluster
        self.violations: list[str] = []
        #: Commit numbers acknowledged to a session (futures that resolved).
        self.acked_tns: set[int] = set()
        self._watermarks: dict[int, int] = {}

    def note_ack(self, tn: int | None) -> None:
        if tn is not None:
            self.acked_tns.add(tn)

    # -- incremental checks -----------------------------------------------------------

    def snapshot(self) -> None:
        """Cheap mid-run check: watermark monotonicity and ordering."""
        cluster = self.cluster
        vc = cluster.primary.vc
        if vc.vtnc > vc.tnc:
            self.violations.append(
                f"primary visibility {vc.vtnc} above assigned frontier {vc.tnc}"
            )
        for rid, replica in cluster.replicas.items():
            prev = self._watermarks.get(rid, 0)
            if replica.vtnc < prev:
                self.violations.append(
                    f"replica {rid} watermark regressed {prev} -> {replica.vtnc}"
                )
            self._watermarks[rid] = replica.vtnc
            if replica.vtnc > vc.tnc:
                self.violations.append(
                    f"replica {rid} watermark {replica.vtnc} above the "
                    f"primary's assigned frontier {vc.tnc}"
                )
        for rid in list(self._watermarks):
            if rid not in cluster.replicas:
                del self._watermarks[rid]  # promoted out of the replica set

    # -- final checks -------------------------------------------------------------------

    def _committed_tns(self) -> list[int]:
        from repro.storage.wal import RecordKind

        return [
            record.tn
            for record in self.cluster.log.durable_records()
            if record.kind is RecordKind.COMMIT and record.tn is not None
        ]

    def check_prefixes(self) -> None:
        primary_records = self.cluster.log.durable_records()
        for rid, replica in self.cluster.replicas.items():
            applied = replica.log.durable_records()
            if applied != primary_records[: len(applied)]:
                self.violations.append(
                    f"replica {rid} applied log is not a prefix of the "
                    f"primary's durable log"
                )

    def check_no_acked_commit_loss(self) -> None:
        committed = set(self._committed_tns())
        lost = sorted(tn for tn in self.acked_tns if tn not in committed)
        if lost:
            self.violations.append(
                f"{len(lost)} acknowledged commit(s) missing from the "
                f"primary's durable log: tns {lost[:8]}"
            )

    def check_unique_commit_numbers(self) -> None:
        tns = self._committed_tns()
        seen: set[int] = set()
        dupes: set[int] = set()
        for tn in tns:
            if tn in seen:
                dupes.add(tn)
            seen.add(tn)
        if dupes:
            self.violations.append(
                f"duplicate commit numbers in the primary log: {sorted(dupes)[:8]}"
            )

    def check_final(self) -> None:
        """Full end-of-drill check (call after shipping has drained)."""
        self.snapshot()
        self.check_prefixes()
        self.check_unique_commit_numbers()
        self.check_no_acked_commit_loss()

    # -- verdict ---------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} cluster invariant violation(s): "
                + "; ".join(self.violations)
            )
