"""Paper invariants checked continuously while faults are injected.

A :class:`FaultInvariantChecker` watches one distributed database —
:class:`~repro.distributed.database.DistributedVCDatabase` or
:class:`~repro.distributed.dmv2pl.DistributedMV2PL` — and asserts, during
and after a drill, the properties the paper's correctness argument rests
on:

* **counter/visibility ordering** — each site's visibility counter stays
  strictly below its next assignable local number (the distributed face of
  Figure 1's ``vtnc <= tnc``);
* **VCQueue consistency** — per-site queues stay sorted by number with
  visibility strictly below the head entry (re-asserted externally, even
  when the module's internal ``checked`` mode is off);
* **visibility monotonicity** — a site's ``vtnc`` never decreases within
  one incarnation (a crash may lawfully reopen visibility at the durable
  frontier, which is why the checker tracks incarnations);
* **no committed-write loss** — after every crash/recovery, each version a
  committed transaction installed is still present, with the committed
  value, in the owning site's store;
* **global one-copy serializability** — the oracle's MVSG check over the
  recorded global history (for DMV2PL under its own version order, and
  only over the read-write subhistory — its read-only anomaly is a paper
  result, not a fault bug).

Violations accumulate as strings; :meth:`assert_ok` raises
:class:`~repro.errors.InvariantViolation` carrying all of them.  Drills
call :meth:`snapshot` between steps (cheap) and :meth:`check_final` once
the run settles (full store/history scan).
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.transaction import Transaction
from repro.errors import InvariantViolation
from repro.histories.checker import check_one_copy_serializable
from repro.histories.mvsg import multiversion_serialization_graph


class FaultInvariantChecker:
    """Continuously assert paper invariants over a faulted distributed DB."""

    def __init__(self, db: Any):
        self.db = db
        self.violations: list[str] = []
        #: Per-site (incarnation, vtnc) high-water marks.
        self._visibility_marks: dict[int, tuple[int, int]] = {}
        #: Expected durable state of committed transactions:
        #: txn_id -> list of (site_id, version_tn, key, value).
        self._committed_writes: dict[int, list[tuple[int, int, Hashable, Any]]] = {}

    # -- wiring -------------------------------------------------------------------

    def _is_dvc(self) -> bool:
        return hasattr(next(iter(self.db.sites.values())), "vc")

    def note_commit(self, txn: Transaction) -> None:
        """Record what a just-committed transaction must keep durable."""
        if not txn.write_set or txn.tn is None:
            return
        expected: list[tuple[int, int, Hashable, Any]] = []
        site_numbers = txn.meta.get("site_numbers")  # DMV2PL: per-site numbers
        for key, value in txn.write_set.items():
            site = self.db.site_of_key(key)
            tn = site_numbers[site.site_id] if site_numbers else txn.tn
            expected.append((site.site_id, tn, key, value))
        self._committed_writes[txn.txn_id] = expected

    # -- incremental checks -----------------------------------------------------------

    def snapshot(self) -> None:
        """Cheap mid-run check: VC ordering, queue shape, monotonicity."""
        if not self._is_dvc():
            return
        for sid, site in self.db.sites.items():
            vc = site.vc
            if vc.vtnc >= vc.next_local_number:
                self.violations.append(
                    f"site {sid}: visibility {vc.vtnc} at or above the next "
                    f"assignable number {vc.next_local_number}"
                )
            nums = [entry.num for entry in vc._order]
            if nums != sorted(nums):
                self.violations.append(f"site {sid}: VCQueue out of order: {nums}")
            if nums and vc.vtnc >= nums[0]:
                self.violations.append(
                    f"site {sid}: visibility {vc.vtnc} covers pending entry {nums[0]}"
                )
            incarnation = getattr(site, "incarnation", 0)
            mark = self._visibility_marks.get(sid)
            if mark is not None and mark[0] == incarnation and vc.vtnc < mark[1]:
                self.violations.append(
                    f"site {sid}: visibility regressed {mark[1]} -> {vc.vtnc} "
                    f"within incarnation {incarnation}"
                )
            self._visibility_marks[sid] = (incarnation, vc.vtnc)

    def check_no_committed_write_loss(self) -> None:
        """Every committed write is still installed with its committed value."""
        for txn_id, expected in self._committed_writes.items():
            for sid, tn, key, value in expected:
                store = self.db.sites[sid].store
                version = None
                if key in set(store.keys()):
                    version = store.object(key).find(tn)
                if version is None:
                    self.violations.append(
                        f"T{txn_id}: committed write {key!r}@{tn} lost at site {sid}"
                    )
                elif version.value != value:
                    self.violations.append(
                        f"T{txn_id}: committed write {key!r}@{tn} at site {sid} "
                        f"holds {version.value!r}, expected {value!r}"
                    )

    def check_serializable(self) -> None:
        """Oracle check of the recorded global history."""
        if self._is_dvc():
            report = check_one_copy_serializable(self.db.history)
            if not report.serializable:
                self.violations.append(
                    f"history not one-copy serializable: cycle {report.cycle}"
                )
        else:
            graph = multiversion_serialization_graph(
                self.db.history.committed_projection(),
                self.db.global_version_order(),
            )
            cycle = graph.find_cycle()
            if cycle is not None:
                self.violations.append(
                    f"dmv2pl read-write history not serializable: cycle {list(cycle)}"
                )

    def check_final(self) -> None:
        """Full end-of-drill check (call after the network has drained)."""
        self.snapshot()
        self.check_no_committed_write_loss()
        self.check_serializable()

    # -- verdict ---------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} fault-drill invariant violation(s): "
                + "; ".join(self.violations)
            )
