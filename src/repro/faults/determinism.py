"""Double-run byte-determinism verification, shared by every campaign.

Every seeded drill campaign makes the same promise: run the identical
phase twice from the same seed and *everything* observable matches — the
phase's own fingerprint (counters, faults, outcomes, rounded metrics), the
streaming SLO engine's full report, and the witness certifier's report.
That is what makes a failure replayable from its seed alone, and it is a
real check on the stack (a stray ``random.random()``, dict-order
dependence, or wall-clock leak breaks it instantly).

The check used to be copy-pasted across the overload, replication, memory,
and availability campaigns; :func:`verify_double_run` is the one shared
implementation (the shard campaign uses it too).  The campaign supplies a
``run(engine, certifier)`` closure over its seed and knobs; the helper
builds the live observer pair, runs once, and — when verification is on —
builds a *fresh* pair, reruns, and compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class DoubleRun:
    """Outcome of a (possibly verified) campaign phase run."""

    #: The live run's phase result, exactly as ``run`` returned it.
    result: Any
    #: The live run's SLO engine (None when ``slo`` was off).
    engine: Any | None
    #: The live run's witness certifier (None when ``witness`` was off).
    certifier: Any | None
    #: True when no replay was requested, or the replay matched everywhere.
    deterministic: bool


def verify_double_run(
    run: Callable[[Any | None, Any | None], Any],
    *,
    slo: bool = False,
    witness: bool = False,
    make_engine: Callable[[], Any] | None = None,
    verify: bool = True,
    fingerprint: Callable[[Any], Any] | None = None,
    extra_check: Callable[[], bool] | None = None,
) -> DoubleRun:
    """Run a campaign phase, optionally replay it, and compare everything.

    ``run(engine, certifier)`` executes one phase under the given observers
    and returns its result object; ``make_engine`` builds a fresh SLO
    engine per run (required when ``slo`` is set — engines accumulate state
    and must never be shared between the live run and the replay).
    ``fingerprint`` extracts the comparable summary from a result (default:
    its ``fingerprint()`` method).  ``extra_check`` is a campaign-specific
    continuation evaluated only if everything else matched — e.g. the
    availability campaign's crash-point resweep.

    Comparison is three-deep, mirroring what the drill later prints:
    phase fingerprints, then full SLO reports, then witness reports.
    """
    from repro.obs.witness import WitnessEngine

    if slo and make_engine is None:
        raise ValueError("slo=True requires a make_engine factory")
    take = fingerprint if fingerprint is not None else lambda r: r.fingerprint()

    engine = make_engine() if slo else None
    certifier = WitnessEngine(seal=True) if witness else None
    result = run(engine, certifier)
    deterministic = True
    if verify:
        replay_engine = make_engine() if slo else None
        replay_certifier = WitnessEngine(seal=True) if witness else None
        replay = run(replay_engine, replay_certifier)
        deterministic = take(replay) == take(result)
        if deterministic and engine is not None:
            deterministic = replay_engine.report() == engine.report()
        if deterministic and certifier is not None:
            deterministic = replay_certifier.report() == certifier.report()
        if deterministic and extra_check is not None:
            deterministic = extra_check()
    return DoubleRun(
        result=result,
        engine=engine,
        certifier=certifier,
        deterministic=deterministic,
    )
