"""Seed-deterministic fault schedules.

A :class:`FaultSpec` declares *how often* each fault kind fires; a
:class:`FaultSchedule` binds a spec to a master seed and answers, per
message, *which* faults fire — using one independent RNG stream per channel
(:class:`~repro.sim.random_streams.RandomStreams`), so adding traffic on one
channel never perturbs the fault draws of another and a drill replays
bit-for-bit from its seed.

Fault taxonomy (``docs/faults.md``):

* **drop** — the message is lost in flight; the sender's link layer
  retransmits with exponential backoff and jitter (:class:`RetryPolicy`).
* **duplicate** — the message is delivered twice (retransmission raced the
  original ack); protocols must be idempotent.
* **delay spike** — the message takes ``spike_factor`` extra latency units,
  modeling a stalled path or a bufferbloated queue.
* **partition** — a channel is unreachable during declared
  :class:`PartitionWindow` s of virtual time; messages dispatched during a
  window are deferred until it heals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.random_streams import RandomStreams


@dataclass(frozen=True)
class PartitionWindow:
    """A channel is unreachable during ``[start, end)`` of virtual time.

    ``channel="*"`` partitions every channel (a full network outage).
    """

    channel: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty partition window [{self.start}, {self.end})")

    def covers(self, channel: str, now: float) -> bool:
        return (self.channel in ("*", channel)) and self.start <= now < self.end


@dataclass(frozen=True)
class FaultSpec:
    """Per-message fault probabilities plus partition windows.

    All probabilities are per dispatched message (and per retransmission
    attempt for ``drop``).  ``spike_factor`` scales the base latency unit to
    produce the delay-spike magnitude.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay_spike: float = 0.0
    spike_factor: float = 10.0
    partitions: tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay_spike"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} outside [0, 1]")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.drop or self.duplicate or self.delay_spike or self.partitions
        )


#: A moderate default mix used by ``python -m repro drill``.
DEFAULT_SPEC = FaultSpec(drop=0.08, duplicate=0.05, delay_spike=0.05)


@dataclass
class FaultDecision:
    """What the schedule decided for one dispatched message."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


@dataclass
class FaultCounts:
    """Tally of injected faults, for drill reports."""

    drops: int = 0
    duplicates: int = 0
    delay_spikes: int = 0
    partition_deferrals: int = 0
    retries_exhausted: int = 0
    crashes: int = 0

    def total(self) -> int:
        return (
            self.drops
            + self.duplicates
            + self.delay_spikes
            + self.partition_deferrals
            + self.crashes
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delay_spikes": self.delay_spikes,
            "partition_deferrals": self.partition_deferrals,
            "retries_exhausted": self.retries_exhausted,
            "crashes": self.crashes,
        }


class FaultSchedule:
    """Deterministic per-channel fault decisions under one master seed.

    Overrides map channel names to their own :class:`FaultSpec`, so (say)
    the 2PC channel can run lossy while snapshot fetches stay clean.
    Decisions are drawn from streams named ``fault:<channel>`` — replaying
    the same traffic under the same seed reproduces the same faults.
    """

    def __init__(
        self,
        spec: FaultSpec | None = None,
        seed: int = 0,
        overrides: dict[str, FaultSpec] | None = None,
    ):
        self.spec = spec if spec is not None else FaultSpec()
        self.seed = seed
        self.overrides = dict(overrides) if overrides else {}
        self._streams = RandomStreams(seed)
        self.counts = FaultCounts()

    def spec_for(self, channel: str) -> FaultSpec:
        return self.overrides.get(channel, self.spec)

    def rng(self, channel: str) -> random.Random:
        return self._streams.stream(f"fault:{channel}")

    def partitioned_until(self, channel: str, now: float) -> float | None:
        """End of the partition window covering ``(channel, now)``, if any."""
        end: float | None = None
        for window in self.spec_for(channel).partitions:
            if window.covers(channel, now):
                end = window.end if end is None else max(end, window.end)
        return end

    def decide(self, channel: str, retransmission: bool = False) -> FaultDecision:
        """Draw the fault outcome for one message (or retransmission).

        Retransmissions re-draw only the drop fault: a retried frame can be
        lost again, but duplication/spikes of the original are not re-rolled
        (the retransmission *is* the duplicate-like event).
        """
        spec = self.spec_for(channel)
        decision = FaultDecision()
        if not spec.any_faults:
            return decision
        rng = self.rng(channel)
        if spec.drop and rng.random() < spec.drop:
            decision.drop = True
            self.counts.drops += 1
        if retransmission:
            return decision
        if spec.duplicate and rng.random() < spec.duplicate:
            decision.duplicate = True
            self.counts.duplicates += 1
        if spec.delay_spike and rng.random() < spec.delay_spike:
            decision.extra_delay = spec.spike_factor * (0.5 + rng.random())
            self.counts.delay_spikes += 1
        return decision
