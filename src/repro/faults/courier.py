"""A :class:`~repro.distributed.courier.Courier` that injects faults.

``FaultyCourier`` sits exactly where the real network sits: every
``dispatch`` consults a seeded :class:`~repro.faults.schedule.FaultSchedule`
and may drop, duplicate, delay, or defer (partition) the message.  Drops are
not silent black holes — the link layer retransmits under a
:class:`RetryPolicy` (exponential backoff with deterministic jitter), which
is what keeps the distributed protocols *live* under loss while still
exposing every reordering the loss creates.  After ``max_attempts`` the
retransmission is forced through (and counted as exhausted) so a drill can
never wedge on an unlucky stream; protocols still see arbitrarily late,
duplicated, and reordered traffic.

Every injected fault is emitted as a ``fault.*`` trace event on the
courier's tracer, so ``python -m repro trace`` can reconstruct the fault
timeline of a drill from its JSONL trace alone.

Mode behavior (see the base class's mode matrix):

* **simulated** — faults play out in virtual time: a dropped message is
  rescheduled after the backoff delay; a partitioned message is deferred to
  the end of its window.
* **manual** — faults shape the pump order: a drop pushes the message's
  arrival time out by the backoff delay, a duplicate enqueues it twice, and
  explicit :meth:`partition` / :meth:`heal` calls park and release whole
  channels (time-window partitions need a clock, hence sim mode).
* **immediate** — drops retry synchronously (attempt counting still runs),
  duplicates call the thunk twice; useful for unit-testing idempotence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.distributed.courier import Courier, LatencySource
from repro.faults.schedule import FaultSchedule
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter for retransmissions.

    Attempt ``n`` (0-based) waits ``min(cap, base * factor**n)`` scaled by a
    jitter drawn uniformly from ``[1 - jitter, 1 + jitter]``.  With the
    courier's seeded RNG streams the whole retry trajectory replays from the
    master seed.
    """

    max_attempts: int = 8
    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.cap, self.base * self.factor ** attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())


class FaultyCourier(Courier):
    """Courier with seed-deterministic fault injection (see module docs)."""

    def __init__(
        self,
        schedule: FaultSchedule | None = None,
        retry: RetryPolicy | None = None,
        sim: Simulator | None = None,
        latency: LatencySource = 0.0,
        manual: bool = False,
        channel_latency=None,
    ):
        super().__init__(
            sim=sim, latency=latency, manual=manual, channel_latency=channel_latency
        )
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.retry = retry if retry is not None else RetryPolicy()
        #: Channels parked by an explicit partition() call (manual/immediate).
        self._held_channels: set[str] = set()
        self._parked: list[tuple[str, Callable[[], None]]] = []

    # -- explicit partitions (manual / immediate modes) -------------------------

    def partition(self, channel: str) -> None:
        """Hold every future (and parked) message on ``channel``."""
        self._held_channels.add(channel)
        if self.tracer.enabled:
            self.tracer.emit("fault.partition.start", channel=channel)

    def heal(self, channel: str) -> None:
        """Release ``channel``: parked messages re-enter normal dispatch."""
        self._held_channels.discard(channel)
        released, kept = [], []
        for ch, fn in self._parked:
            (released if ch == channel else kept).append((ch, fn))
        self._parked = kept
        if self.tracer.enabled:
            self.tracer.emit(
                "fault.partition.heal", channel=channel, released=len(released)
            )
        for ch, fn in released:
            # Parked thunks already carry their span-context envelope from
            # the original dispatch; re-route, don't re-seal.
            self._route(fn, ch)

    def parked(self, channel: str | None = None) -> int:
        if channel is None:
            return len(self._parked)
        return sum(1 for ch, _ in self._parked if ch == channel)

    # -- routing (dispatch in the base class seals span contexts first) ----------

    def _route(self, fn: Callable[[], None], channel: str) -> None:
        if channel in self._held_channels:
            self.schedule.counts.partition_deferrals += 1
            if self.tracer.enabled:
                self.tracer.emit("fault.partition.hold", channel=channel)
            self._parked.append((channel, fn))
            return
        if self._sim is not None:
            self._dispatch_sim(fn, channel, attempt=0)
        elif self._manual:
            self._dispatch_manual(fn, channel)
        else:
            self._dispatch_immediate(fn, channel)

    # -- simulated mode ---------------------------------------------------------

    def _dispatch_sim(self, fn: Callable[[], None], channel: str, attempt: int) -> None:
        assert self._sim is not None
        now = self._sim.now
        heal_at = self.schedule.partitioned_until(channel, now)
        if heal_at is not None:
            self.schedule.counts.partition_deferrals += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "fault.partition.hold", channel=channel, until=heal_at
                )
            # Re-enter dispatch just past the window; the message may then be
            # dropped/duplicated like any other (or hit a later window).
            self._sim.call_at(
                heal_at, lambda: self._dispatch_sim(fn, channel, attempt)
            )
            return
        decision = self.schedule.decide(channel, retransmission=attempt > 0)
        if decision.drop:
            if attempt + 1 >= self.retry.max_attempts:
                # Backstop against 100%-loss schedules: force the delivery
                # through after the final backoff so drills cannot wedge.
                self.schedule.counts.retries_exhausted += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        "fault.retry.exhausted", channel=channel, attempts=attempt + 1
                    )
            else:
                backoff = self.retry.delay(attempt, self.schedule.rng(channel))
                if self.tracer.enabled:
                    self.tracer.emit(
                        "fault.drop",
                        channel=channel,
                        attempt=attempt,
                        retry_in=backoff,
                    )
                self._sim.call_in(
                    backoff, lambda: self._dispatch_sim(fn, channel, attempt + 1)
                )
                return
        latency = self._draw_latency(channel) + decision.extra_delay
        if decision.extra_delay and self.tracer.enabled:
            self.tracer.emit(
                "fault.delay", channel=channel, extra=decision.extra_delay
            )
        self._sim.call_in(latency, self._wrap(fn))
        if decision.duplicate:
            if self.tracer.enabled:
                self.tracer.emit("fault.duplicate", channel=channel)
            echo = self._draw_latency(channel) + self.retry.base
            self._sim.call_in(latency + echo, self._wrap(fn))

    # -- manual mode -------------------------------------------------------------

    def _dispatch_manual(self, fn: Callable[[], None], channel: str) -> None:
        decision = self.schedule.decide(channel)
        extra = decision.extra_delay
        if decision.drop:
            # A manual-mode drop is its own retransmission: the message's
            # arrival slides out by the first backoff, re-ordering it behind
            # traffic sent later — the observable effect of loss + retry.
            extra += self.retry.delay(0, self.schedule.rng(channel))
            if self.tracer.enabled:
                self.tracer.emit("fault.drop", channel=channel, retry_in=extra)
        elif decision.extra_delay and self.tracer.enabled:
            self.tracer.emit("fault.delay", channel=channel, extra=extra)
        self._enqueue(fn, channel, self._draw_latency(channel) + extra)
        if decision.duplicate:
            if self.tracer.enabled:
                self.tracer.emit("fault.duplicate", channel=channel)
            self._enqueue(fn, channel, self._draw_latency(channel) + extra)

    # -- immediate mode ----------------------------------------------------------

    def _dispatch_immediate(self, fn: Callable[[], None], channel: str) -> None:
        attempt = 0
        while True:
            decision = self.schedule.decide(channel, retransmission=attempt > 0)
            if not decision.drop:
                break
            attempt += 1
            if attempt >= self.retry.max_attempts:
                self.schedule.counts.retries_exhausted += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        "fault.retry.exhausted", channel=channel, attempts=attempt
                    )
                break
            if self.tracer.enabled:
                self.tracer.emit("fault.drop", channel=channel, attempt=attempt - 1)
        self._wrap(fn)()
        if decision.duplicate:
            if self.tracer.enabled:
                self.tracer.emit("fault.duplicate", channel=channel)
            self._wrap(fn)()
