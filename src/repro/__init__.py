"""repro — Modular Synchronization in Multiversion Databases.

A complete, executable reproduction of Sen Gupta & Agrawal's 1989 framework
decoupling *version control* from *concurrency control* in multiversion
databases, together with the baseline protocols the paper compares against,
a serializability oracle, a deterministic discrete-event simulator, and the
distributed extension.

Quickstart::

    from repro import VC2PLScheduler

    db = VC2PLScheduler()
    writer = db.begin()
    db.write(writer, "x", 41).result()
    db.commit(writer).result()

    reader = db.begin(read_only=True)   # snapshot at vtnc; zero CC overhead
    assert db.read(reader, "x").result() == 41
    db.commit(reader).result()
"""

from repro.core import (
    Database,
    SN_INFINITY,
    OpFuture,
    Scheduler,
    SnapshotManager,
    Transaction,
    TxnClass,
    TxnState,
    VersionControl,
    VersionControlledScheduler,
)
from repro.errors import (
    AbortReason,
    CorruptLogError,
    DeadlineExceeded,
    DeadlockError,
    Overloaded,
    ProtocolError,
    ReplicaLagging,
    ReproError,
    SiteUnavailable,
    TransactionAborted,
    ValidationError,
    VersionNotFound,
    is_infrastructure,
    is_retryable,
)
from repro.faults import (
    FaultInvariantChecker,
    FaultSchedule,
    FaultSpec,
    FaultyCourier,
    PartitionWindow,
    RetryPolicy,
    run_campaign,
    run_drill,
)
from repro.histories import (
    History,
    assert_one_copy_serializable,
    check_one_copy_serializable,
    is_one_copy_serializable,
)
from repro.obs import (
    NULL_TRACER,
    ConsoleSummaryExporter,
    JsonlExporter,
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    attach_tracer,
)
from repro.protocols import (
    AdaptiveVCScheduler,
    RecoverableVC2PLScheduler,
    VC2PLScheduler,
    VCOCCScheduler,
    VCTOScheduler,
)
from repro.qos import (
    AdmissionController,
    BackoffPolicy,
    BreakerBoard,
    CircuitBreaker,
    RetryBudget,
)
from repro.replica import (
    Replica,
    ReplicaCluster,
    ReplicatedDatabase,
    run_replica_scaling,
    run_replication_campaign,
)
from repro.storage import GarbageCollector, MVStore, SVStore

__version__ = "1.0.0"

__all__ = [
    "AbortReason",
    "AdaptiveVCScheduler",
    "AdmissionController",
    "BackoffPolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "RetryBudget",
    "ConsoleSummaryExporter",
    "CorruptLogError",
    "SiteUnavailable",
    "Database",
    "RecoverableVC2PLScheduler",
    "DeadlineExceeded",
    "DeadlockError",
    "Overloaded",
    "FaultInvariantChecker",
    "FaultSchedule",
    "FaultSpec",
    "FaultyCourier",
    "GarbageCollector",
    "History",
    "PartitionWindow",
    "RetryPolicy",
    "JsonlExporter",
    "MVStore",
    "MetricsRegistry",
    "NULL_TRACER",
    "OpFuture",
    "RingBufferExporter",
    "Tracer",
    "ProtocolError",
    "Replica",
    "ReplicaCluster",
    "ReplicaLagging",
    "ReplicatedDatabase",
    "ReproError",
    "SN_INFINITY",
    "SVStore",
    "Scheduler",
    "SnapshotManager",
    "Transaction",
    "TransactionAborted",
    "TxnClass",
    "TxnState",
    "VC2PLScheduler",
    "VCOCCScheduler",
    "VCTOScheduler",
    "ValidationError",
    "VersionControl",
    "VersionControlledScheduler",
    "VersionNotFound",
    "__version__",
    "assert_one_copy_serializable",
    "attach_tracer",
    "check_one_copy_serializable",
    "is_infrastructure",
    "is_one_copy_serializable",
    "is_retryable",
    "run_campaign",
    "run_drill",
    "run_replica_scaling",
    "run_replication_campaign",
]
