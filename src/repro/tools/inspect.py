"""Introspection and debugging tools.

Render the library's runtime artifacts in human-readable (and Graphviz)
form: MVSG graphs, execution timelines from the live trace, version chains,
and version-control state.  Used by the debugging example and handy in a
REPL when a test fails with a serialization cycle.
"""

from __future__ import annotations

from repro.core.version_control import VersionControl
from repro.histories.mvsg import multiversion_serialization_graph
from repro.histories.operations import History
from repro.histories.recorder import RO_ID_OFFSET
from repro.storage.mvstore import MVStore


def _node_label(txn: int) -> str:
    if txn == 0:
        return "T0 (init)"
    if txn >= RO_ID_OFFSET:
        return f"RO#{txn - RO_ID_OFFSET}"
    return f"T{txn}"


def mvsg_dot(history: History, highlight_cycle: list[int] | None = None) -> str:
    """Graphviz DOT source for the history's MVSG.

    Read-only transactions render as ellipses, read-write as boxes, the
    initial transaction as a diamond; ``highlight_cycle`` (e.g. from a
    :class:`~repro.histories.checker.CheckReport`) paints its edges red.
    """
    graph = multiversion_serialization_graph(history.committed_projection())
    cycle_edges: set[tuple[int, int]] = set()
    if highlight_cycle:
        cycle_edges = set(zip(highlight_cycle, highlight_cycle[1:]))
    lines = ["digraph MVSG {", "  rankdir=LR;"]
    for node in sorted(graph.nodes()):
        if node == 0:
            shape = "diamond"
        elif node >= RO_ID_OFFSET:
            shape = "ellipse"
        else:
            shape = "box"
        lines.append(f'  "{_node_label(node)}" [shape={shape}];')
    for src, dst in sorted(graph.edges()):
        attrs = ' [color=red, penwidth=2]' if (src, dst) in cycle_edges else ""
        lines.append(f'  "{_node_label(src)}" -> "{_node_label(dst)}"{attrs};')
    lines.append("}")
    return "\n".join(lines)


def timeline(live: list[tuple], max_events: int = 200) -> str:
    """ASCII execution timeline from a recorder's live trace.

    One row per transaction, one column per event; ``r``/``w`` cells carry
    the key, ``C``/``A`` mark commit/abort.  Reads the order operations
    actually took effect — the view the buffered history deliberately
    discards.
    """
    events = live[:max_events]
    txn_ids: list[int] = []
    for _kind, txn_id, *_rest in events:
        if txn_id not in txn_ids:
            txn_ids.append(txn_id)
    width = 4
    header = "txn".ljust(8) + "".join(
        str(i).rjust(width) for i in range(len(events))
    )
    rows = [header]
    for txn_id in txn_ids:
        cells = []
        for kind, owner, key, _version, _tn in events:
            if owner != txn_id:
                cells.append("".rjust(width))
            elif kind == "r":
                cells.append(f"r·{key}"[:width].rjust(width))
            elif kind == "w":
                cells.append(f"w·{key}"[:width].rjust(width))
            elif kind == "c":
                cells.append("C".rjust(width))
            else:
                cells.append("A".rjust(width))
        rows.append(f"T{txn_id}".ljust(8) + "".join(cells))
    if len(live) > max_events:
        rows.append(f"... ({len(live) - max_events} more events)")
    return "\n".join(rows)


def dump_version_chains(store: MVStore, limit: int = 50) -> str:
    """Formatted per-object version chains."""
    lines = []
    for i, key in enumerate(sorted(store.keys(), key=str)):
        if i >= limit:
            lines.append(f"... ({len(store)} objects total)")
            break
        chain = store.object(key)
        parts = []
        for version in chain.versions():
            flag = "*" if version.pending else ""
            parts.append(f"{version.tn}{flag}={version.value!r}")
        lines.append(f"{key}: " + " -> ".join(parts))
    return "\n".join(lines) if lines else "(empty store)"


def describe_vc(vc: VersionControl) -> str:
    """One-paragraph description of a VersionControl module's state."""
    queue = vc.queue_snapshot()
    entries = ", ".join(
        f"T{txn_id}(tn={tn}{',done' if completed else ''})"
        for txn_id, tn, completed in queue
    )
    return (
        f"tnc={vc.tnc} vtnc={vc.vtnc} lag={vc.lag} "
        f"queue=[{entries}]"
    )
