"""Introspection and debugging tools."""

from repro.tools.inspect import describe_vc, dump_version_chains, mvsg_dot, timeline

__all__ = ["describe_vc", "dump_version_chains", "mvsg_dot", "timeline"]
