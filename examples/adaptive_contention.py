#!/usr/bin/env python3
"""Adaptive concurrency control: swapping the CC component at runtime.

Paper Section 1 argues the version-control decoupling enables "adaptive
concurrency control schemes without introducing major modifications to the
entire protocol."  This example drives the adaptive scheduler through a
conflict storm (optimistic validation thrashes -> switch to locking) and a
calm phase (locking is pure overhead -> switch back), printing each switch
as it lands.  The version-control module and every read-only transaction
are untouched throughout.

Run:  python examples/adaptive_contention.py
"""

from repro.protocols.adaptive import AdaptiveVCScheduler


def conflict_storm(db: AdaptiveVCScheduler, rounds: int) -> tuple[int, int]:
    """Pairs racing on one counter: half must fail validation under OCC."""
    commits = aborts = 0
    for _ in range(rounds):
        if db.mode == "2pl":
            break  # the scheduler adapted: the storm is survivable now
        a, b = db.begin(), db.begin()
        va = db.read(a, "hot").result() or 0
        vb = db.read(b, "hot").result() or 0
        db.write(a, "hot", va + 1).result()
        db.write(b, "hot", vb + 1).result()
        for txn in (a, b):
            if db.commit(txn).failed:
                aborts += 1
            else:
                commits += 1
    return commits, aborts


def calm_phase(db: AdaptiveVCScheduler, rounds: int) -> int:
    for i in range(rounds):
        t = db.begin()
        db.write(t, f"wide{i}", i).result()
        db.commit(t).result()
    return rounds


def report(db: AdaptiveVCScheduler, label: str) -> None:
    print(
        f"{label:<28} mode={db.mode:<4} window abort rate={db.abort_rate():.2f} "
        f"switches={db.counters.get('adaptive.switch_to_2pl') + db.counters.get('adaptive.switch_to_occ')}"
    )


def main() -> None:
    db = AdaptiveVCScheduler(window=12, high_watermark=0.25, low_watermark=0.05)
    report(db, "start")

    commits, aborts = conflict_storm(db, 20)
    report(db, f"after storm ({commits}c/{aborts}a)")
    assert db.mode == "2pl", "thrashing drove the switch to locking"

    calm_phase(db, 30)
    report(db, "after calm phase")
    assert db.mode == "occ", "calm traffic switched back to optimistic"

    # Read-only transactions never noticed any of this.
    ro = db.begin(read_only=True)
    value = db.read(ro, "hot").result()
    db.commit(ro).result()
    print(f"\nread-only snapshot sees hot={value}; RO CC ops = "
          f"{db.counters.get('cc.ro')} (zero, in both modes)")

    print(f"switch log (at RW commit #, new mode): {db.switches}")
    db_report = db.history
    from repro.histories import assert_one_copy_serializable

    check = assert_one_copy_serializable(db_report)
    print(f"unified history across both modes: 1SR over {check.transactions} txns")


if __name__ == "__main__":
    main()
