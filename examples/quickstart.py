#!/usr/bin/env python3
"""Quickstart: the version-control mechanism in five minutes.

Shows the public API on the paper's flagship protocol (VC + 2PL):
transactions, snapshot-isolated read-only readers, delayed visibility, the
Section 6 remedies, and the built-in serializability oracle.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to choose where the section-6
tracing demo writes its JSONL trace (default: alongside the system temp
directory); inspect it afterwards with ``python -m repro trace <path>``.
"""

import os
import tempfile

from repro import (
    JsonlExporter,
    SnapshotManager,
    Tracer,
    VC2PLScheduler,
    assert_one_copy_serializable,
    attach_tracer,
)


def main() -> None:
    db = VC2PLScheduler()

    # -- 1. Read-write transactions --------------------------------------------
    print("== read-write transactions ==")
    setup = db.begin()
    db.write(setup, "alice", 100).result()
    db.write(setup, "bob", 50).result()
    db.commit(setup).result()
    print(f"seeded accounts; tn(setup) = {setup.tn}")

    transfer = db.begin()
    a = db.read(transfer, "alice").result()
    b = db.read(transfer, "bob").result()
    db.write(transfer, "alice", a - 30).result()
    db.write(transfer, "bob", b + 30).result()
    db.commit(transfer).result()
    print(f"transferred 30; tn(transfer) = {transfer.tn}")

    # -- 2. Read-only transactions: one VCstart, zero locks --------------------
    print("\n== read-only transactions ==")
    report = db.begin(read_only=True)
    print(f"report snapshot: sn = {report.sn} (the current vtnc)")
    alice = db.read(report, "alice").result()
    bob = db.read(report, "bob").result()
    print(f"alice={alice}, bob={bob}, total={alice + bob}")
    assert alice + bob == 150, "the invariant holds in every snapshot"

    # The reader's view is stable even while a writer works under its feet.
    concurrent = db.begin()
    db.write(concurrent, "alice", 0).result()  # X lock held, not committed
    still_alice = db.read(report, "alice").result()
    print(f"concurrent writer active; report still sees alice={still_alice}")
    db.commit(concurrent).result()
    db.commit(report).result()
    print(f"read-only CC interactions: {db.counters.get('cc.ro')} (always zero)")

    # -- 3. Visibility counters -------------------------------------------------
    print("\n== version-control counters ==")
    print(f"tnc={db.vc.tnc}, vtnc={db.vc.vtnc}, lag={db.vc.lag}")

    # -- 4. The Section 6 remedy: read your own writes ---------------------------
    print("\n== snapshot manager (Section 6 remedies) ==")
    snapshots = SnapshotManager(db)
    writer = db.begin()
    db.write(writer, "carol", 7).result()
    db.commit(writer).result()
    fresh_reader = snapshots.begin_read_only_after(writer.tn).result()
    print(f"fresh reader sn={fresh_reader.sn} sees carol={db.read(fresh_reader, 'carol').result()}")
    db.commit(fresh_reader).result()

    # -- 5. The oracle ------------------------------------------------------------
    report = assert_one_copy_serializable(db.history)
    print("\n== serializability oracle ==")
    print(f"checked {report.transactions} committed transactions: one-copy serializable")
    print(f"witness serial order: {report.witness_order}")

    # -- 6. Tracing (repro.obs): record a run, inspect it from the CLI -------------
    print("\n== tracing ==")
    trace_path = os.environ.get("REPRO_TRACE") or os.path.join(
        tempfile.gettempdir(), "repro_quickstart_trace.jsonl"
    )
    traced_db = VC2PLScheduler()
    tracer = Tracer(exporters=[JsonlExporter(trace_path)])
    instrumentation = attach_tracer(traced_db, tracer)
    blocker = traced_db.begin()                       # holds X(x) across a reader
    traced_db.write(blocker, "x", 1).result()
    waiter = traced_db.begin()
    pending = traced_db.read(waiter, "x")             # blocks behind the X lock
    traced_db.commit(blocker).result()                # unblocks; visibility advances
    pending.result()
    traced_db.commit(waiter).result()
    audit = traced_db.begin(read_only=True)
    traced_db.read(audit, "x").result()
    traced_db.commit(audit).result()
    instrumentation.detach()
    tracer.close()
    print(f"wrote JSONL trace to {trace_path}")
    print(f"inspect it with:  python -m repro trace {trace_path}")


if __name__ == "__main__":
    main()
