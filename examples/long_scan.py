#!/usr/bin/env python3
"""Long scans vs bounded GC: snapshot leases and SnapshotTooOld.

The paper's GC rule — never discard versions a live read-only
transaction might still need — retains a chain *suffix* per pinned
snapshot.  The bounded collector tightens that to the versions live
snapshots actually resolve to (one per chain per snapshot number), and
when even that footprint is too large, a memory-pressure controller
revokes the oldest snapshot leases: the revoked scan fails with a typed,
retryable SnapshotTooOld on its next read — it never sees a wrong value.

Three acts: (1) a pinned scan costs one version per chain, not the whole
history; (2) leases renew on every read and expire when a session walks
away; (3) under watermark pressure the oldest lease is revoked and the
scan retries at a fresh snapshot.

Run:  python examples/long_scan.py
"""

from repro import VC2PLScheduler
from repro.errors import SnapshotTooOld
from repro.qos.memory import MemoryPressureController

KEYS = [f"k{i}" for i in range(6)]


def put(db, key, value):
    txn = db.begin()
    db.write(txn, key, value).result()
    db.commit(txn).result()


def seed(db):
    for key in KEYS:
        put(db, key, 0)


def main() -> None:
    print("== act 1: a pinned scan costs one version per chain ==")
    db = VC2PLScheduler()
    seed(db)
    scan = db.begin(read_only=True)          # pins sn across the whole act
    for round_no in range(1, 21):
        put(db, "k0", round_no)              # hammer one chain
    db.gc.collect()
    live, longest = db.store.chain_stats()
    print(f"20 updates behind a pinned scan (sn={scan.sn}):")
    print(
        f"  retained={live} versions (longest chain {longest}); "
        f"discarded={db.gc.total_discarded}, "
        f"{db.gc.interior_discarded} of them mid-chain"
    )
    print(f"  the scan still reads its snapshot: k0={db.read(scan, 'k0').result()}")
    print("  (a horizon-based collector would have retained all 21 on that chain)")
    db.commit(scan).result()
    db.gc.collect()
    live, _ = db.store.chain_stats()
    print(f"  after the scan ends: retained={live} (one per key)")

    print("\n== act 2: leases renew on read, expire when abandoned ==")
    now = [0.0]
    db = VC2PLScheduler()
    db.ro_registry.ttl = 10.0
    db.ro_registry.clock = lambda: now[0]
    seed(db)
    reader = db.begin(read_only=True)
    lease = db.ro_registry.lease_of(reader)
    print(f"lease granted at t=0, expires at t={lease.expires_at}")
    now[0] = 6.0
    db.read(reader, "k1").result()           # renewal pushes the expiry
    print(f"read at t=6 renews: expires at t={lease.expires_at}, "
          f"renewals={lease.renewals}")
    now[0] = 20.0                            # ...then the session goes quiet
    expired = db.ro_registry.expire_due(now[0])
    print(f"t=20 sweep expires {len(expired)} lease(s) "
          f"(cause={expired[0].revoke_cause})")
    try:
        db.read(reader, "k1").result()
    except SnapshotTooOld as exc:
        print(f"next read fails typed: SnapshotTooOld(sn={exc.sn}, "
              f"cause={exc.cause!r}) — retryable, never a wrong read")

    print("\n== act 3: memory pressure revokes the oldest lease; the scan retries ==")
    db = VC2PLScheduler()
    seed(db)
    controller = MemoryPressureController(
        db.store, db.gc, db.ro_registry, low_watermark=8, high_watermark=10
    )
    attempt, values = 0, None
    while values is None:
        attempt += 1
        scan = db.begin(read_only=True)
        print(f"scan attempt {attempt} at sn={scan.sn}")
        try:
            collected = []
            for idx, key in enumerate(KEYS):
                collected.append(db.read(scan, key).result())
                # A cold scan is slow: every read lets a writer round and a
                # watchdog check slip in.  A retried scan runs warm (the
                # data it just touched is cached), so fewer writer rounds
                # land mid-scan each attempt — the same speedup that keeps
                # oldest-first revocation from livelocking real scans.
                if idx % attempt == 0:
                    put(db, key, attempt)
                    controller.check(now=0.0)
            values = collected
            db.commit(scan).result()
        except SnapshotTooOld as exc:
            print(f"  revoked mid-scan (cause={exc.cause!r}, "
                  f"footprint pressure at {controller.peak_live} versions) "
                  "-> retry warmer, at a fresh snapshot")
    live, _ = db.store.chain_stats()
    print(f"scan completed on attempt {attempt}: values={values}")
    print(f"footprint peaked at {controller.peak_live}, now {live} "
          f"(high watermark {controller.high_watermark}); "
          f"revocations={controller.revocations}")


if __name__ == "__main__":
    main()
