#!/usr/bin/env python3
"""Inventory analytics: compare all eight protocols on one workload.

An e-commerce-style mix — order transactions updating hot stock records,
dashboard queries scanning many records read-only — run through the full
protocol registry with the closed-loop simulator.  Prints the comparison
table the paper argues from: read-only overhead, blocking, aborts caused by
readers, and end-to-end latency, plus the serializability verdict for every
history.

Run:  python examples/inventory_comparison.py
"""

from repro.bench.runner import SimConfig, run_simulation
from repro.bench.tables import print_table
from repro.protocols.registry import PROTOCOLS, make_scheduler
from repro.workload.spec import WorkloadSpec


def inventory_workload(seed: int = 3) -> WorkloadSpec:
    """Hot stock records + wide read-only dashboard scans."""
    return WorkloadSpec(
        n_objects=80,
        ro_fraction=0.6,
        ro_ops=(6, 14),     # dashboards scan many stock records
        rw_ops=(2, 5),      # orders touch a few
        write_fraction=0.7,
        zipf_theta=1.0,     # best sellers are hot
        seed=seed,
    )


def main() -> None:
    config = SimConfig(duration=500.0, n_clients=10)
    rows = []
    for name in PROTOCOLS:
        metrics = run_simulation(make_scheduler(name), inventory_workload(), config)
        rows.append(
            [
                name,
                metrics.commits,
                round(metrics.throughput, 3),
                metrics.per_ro_commit("cc.ro"),
                metrics.counter("block.ro"),
                metrics.aborts_ro,
                metrics.counter("abort.rw.caused_by_readonly"),
                metrics.latency_ro.mean,
                metrics.latency_ro.p95,
                metrics.serializable,
            ]
        )
    print_table(
        [
            "protocol",
            "commits",
            "throughput",
            "CC ops/query",
            "query blocks",
            "query aborts",
            "orders killed by queries",
            "query latency mean",
            "query latency p95",
            "1SR",
        ],
        rows,
        "Inventory dashboards vs order traffic (closed-loop simulation)",
    )
    print(
        "\nThe vc-* rows are the paper's mechanism: dashboards cost nothing,"
        "\nnever wait, never restart, and never hurt the order traffic."
    )


if __name__ == "__main__":
    main()
