#!/usr/bin/env python3
"""Distributed branches: global audits across database sites.

A bank with accounts partitioned across three branch sites.  Transfers move
money *between branches* (distributed read-write transactions under 2PC with
transaction-number agreement); a global auditor reads every account at every
site in one read-only transaction — with **no a-priori knowledge of the
sites**, no locks, and a guaranteed globally consistent total.

The second half replays the same traffic against the ref [8]-style
distributed MV2PL baseline and shows the torn global reads the paper
criticizes.

Run:  python examples/distributed_branches.py
"""

from repro.bench.tables import print_table
from repro.distributed import Courier, DistributedMV2PL, DistributedVCDatabase
from repro.histories import check_one_copy_serializable
from repro.histories.mvsg import multiversion_serialization_graph

BRANCHES = (1, 2, 3)
ACCOUNTS_PER_BRANCH = 5
INITIAL = 100


def account(branch: int, idx: int) -> str:
    return f"s{branch}:acct{idx}"


def all_accounts():
    return [account(b, i) for b in BRANCHES for i in range(ACCOUNTS_PER_BRANCH)]


def seed(db) -> None:
    setup = db.begin()
    for key in all_accounts():
        db.write(setup, key, INITIAL)
    db.commit(setup)


def run_distributed_vc() -> dict:
    db = DistributedVCDatabase(n_sites=len(BRANCHES))
    seed(db)
    total = INITIAL * len(all_accounts())
    import random

    rng = random.Random(11)
    balanced_audits = 0
    audits = 20
    for round_no in range(audits):
        # A cross-branch transfer...
        src = account(rng.choice(BRANCHES), rng.randrange(ACCOUNTS_PER_BRANCH))
        dst = account(rng.choice(BRANCHES), rng.randrange(ACCOUNTS_PER_BRANCH))
        if src != dst:
            t = db.begin()
            a = db.read(t, src).result()
            b = db.read(t, dst).result()
            db.write(t, src, a - 10).result()
            db.write(t, dst, b + 10).result()
            db.commit(t).result()
        # ...then a global audit from a random origin branch.
        audit = db.begin(read_only=True, origin_site=rng.choice(BRANCHES), fresh=True)
        observed = sum(db.read(audit, key).result() for key in all_accounts())
        db.commit(audit).result()
        if observed == total:
            balanced_audits += 1
    report = check_one_copy_serializable(db.history)
    return {
        "system": "distributed VC (paper)",
        "balanced": f"{balanced_audits}/{audits}",
        "globally 1SR": report.serializable,
        "messages": db.total_messages(),
        "a-priori sites needed": "no",
    }


def run_distributed_mv2pl() -> dict:
    courier = Courier(manual=True)
    db = DistributedMV2PL(n_sites=len(BRANCHES), courier=courier)
    seed(db)
    courier.pump()
    total = INITIAL * len(all_accounts())
    import random

    rng = random.Random(11)
    balanced_audits = 0
    audits = 20
    for round_no in range(audits):
        # Begin the audit: its per-site snapshot fetches are in flight...
        audit = db.begin(read_only=True, read_sites=list(BRANCHES))
        courier.pump(1, channel="snapshot")  # only branch 1's state fetched
        # ...while a cross-branch transfer commits everywhere.
        src = account(1, rng.randrange(ACCOUNTS_PER_BRANCH))
        dst = account(2, rng.randrange(ACCOUNTS_PER_BRANCH))
        t = db.begin()
        fa, fb = db.read(t, src), db.read(t, dst)
        courier.pump(channel="data")
        db.write(t, src, fa.result() - 10)
        db.write(t, dst, fb.result() + 10)
        courier.pump(channel="data")
        db.commit(t)
        courier.pump(channel="2pc")
        # Now the audit's remaining fetches arrive: the torn window closed.
        courier.pump(channel="snapshot")
        reads = [db.read(audit, key) for key in all_accounts()]
        courier.pump()
        observed = sum(f.result() for f in reads)
        db.commit(audit)
        if observed == total:
            balanced_audits += 1
    graph = multiversion_serialization_graph(
        db.history.committed_projection(), db.global_version_order()
    )
    return {
        "system": "distributed MV2PL (ref [8])",
        "balanced": f"{balanced_audits}/{audits}",
        "globally 1SR": graph.is_acyclic(),
        "messages": db.courier.delivered,
        "a-priori sites needed": "yes",
    }


def main() -> None:
    rows = []
    for result in (run_distributed_vc(), run_distributed_mv2pl()):
        rows.append(
            [
                result["system"],
                result["balanced"],
                result["globally 1SR"],
                result["a-priori sites needed"],
                result["messages"],
            ]
        )
    print_table(
        ["system", "balanced audits", "globally 1SR", "a-priori sites", "messages"],
        rows,
        "Global audits across three branch sites",
    )
    print(
        "\nDistributed VC audits always balance and need no site list;"
        "\nthe ref [8] baseline tears audits whose snapshot fetches straddle"
        "\na cross-branch transfer, and its global history is not 1SR."
    )


if __name__ == "__main__":
    main()
