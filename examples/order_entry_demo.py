#!/usr/bin/env python3
"""Order-entry workload: integrity invariants across all protocols.

A miniature order-processing system — clerks decrement stock, record sales,
and take payments; auditors scan the whole database read-only — with two
cross-object invariants every consistent snapshot must satisfy:

* conservation: stock + sold == initial stock, per item;
* balanced books: revenue == unit price x total units sold.

Run:  python examples/order_entry_demo.py
"""

from repro.bench.tables import print_table
from repro.histories import check_one_copy_serializable
from repro.protocols.registry import PROTOCOLS, make_scheduler
from repro.workload.order_entry import OrderEntryConfig, run_order_entry


def main() -> None:
    config = OrderEntryConfig(duration=300.0, n_items=12, n_clerks=6, n_auditors=2)
    rows = []
    for name in PROTOCOLS:
        scheduler = make_scheduler(name)
        outcome = run_order_entry(scheduler, config)
        report = check_one_copy_serializable(scheduler.history)
        rows.append(
            [
                name,
                outcome.orders_placed,
                outcome.order_retries,
                outcome.audits,
                outcome.audit_restarts,
                outcome.conservation_violations + outcome.books_violations,
                report.serializable,
            ]
        )
    print_table(
        [
            "protocol",
            "orders",
            "order retries",
            "audits",
            "audit restarts",
            "invariant violations",
            "1SR",
        ],
        rows,
        "Order entry: stock conservation + balanced books under load",
    )
    print(
        "\nZero invariant violations everywhere — but only the vc-* rows get"
        "\nthere without ever restarting an audit."
    )


if __name__ == "__main__":
    main()
