#!/usr/bin/env python3
"""Debugging tools: timelines, version chains, MVSG graphs.

Shows the introspection toolkit on a small mixed run, including how a
serialization *failure* looks: we hand-build the distributed-MV2PL torn-read
history and render its MVSG cycle in Graphviz DOT.

Run:  python examples/debugging_tools.py
"""

from repro.histories import History, check_one_copy_serializable
from repro.protocols import VCTOScheduler
from repro.tools import describe_vc, dump_version_chains, mvsg_dot, timeline


def main() -> None:
    db = VCTOScheduler()

    t1 = db.begin()
    t2 = db.begin()
    db.write(t1, "x", "a").result()
    blocked = db.read(t2, "x")          # waits on t1's pending write
    ro = db.begin(read_only=True)
    db.read(ro, "x").result()           # snapshot: never waits
    print("== version-control state mid-flight ==")
    print(describe_vc(db.vc))

    print("\n== version chains (pending versions flagged *) ==")
    print(dump_version_chains(db.store))

    db.commit(t1).result()
    assert blocked.done
    db.write(t2, "y", "b").result()
    db.commit(t2).result()
    db.commit(ro).result()

    print("\n== execution timeline (order operations took effect) ==")
    print(timeline(db.recorder.live))

    print("\n== MVSG of the run (Graphviz DOT) ==")
    print(mvsg_dot(db.history))

    print("\n== a failing history: the ref [8] torn read, rendered ==")
    torn = History.parse(
        "w1[x_1] w1[y_1] c1 w2[x_2] w2[y_2] c2 r3[x_1] r3[y_2] c3"
    )
    report = check_one_copy_serializable(torn)
    print(f"serializable: {report.serializable}; cycle: {report.cycle}")
    print(mvsg_dot(torn, highlight_cycle=report.cycle))


if __name__ == "__main__":
    main()
