#!/usr/bin/env python3
"""Banking scenario: consistent audits under concurrent transfers.

The workload the paper's introduction motivates: long read-only report
transactions (auditors summing every account) running against a stream of
read-write transfers.  The audit must see a *consistent* balance sheet —
the bank's total never appears to change — without slowing the transfers
down.

The script runs the same scenario through the paper's protocol (VC + 2PL)
and two baselines, showing:

* every audit under every multiversion protocol balances exactly;
* under VC the audits take zero locks and never block or get blocked;
* under single-version 2PL the audits fight the transfers for locks;
* under Reed's MVTO the audits abort transfers.

Run:  python examples/banking_audit.py
"""

from repro.bench.tables import print_table
from repro.errors import TransactionAborted
from repro.protocols.registry import make_scheduler
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams

N_ACCOUNTS = 40
INITIAL_BALANCE = 1_000
TOTAL = N_ACCOUNTS * INITIAL_BALANCE
DURATION = 400.0


def seed_accounts(db) -> None:
    setup = db.begin()
    for i in range(N_ACCOUNTS):
        db.write(setup, f"acct{i}", INITIAL_BALANCE).result()
    db.commit(setup).result()


def run_bank(protocol: str, seed: int = 7) -> dict:
    db = make_scheduler(protocol)
    seed_accounts(db)
    sim = Simulator()
    streams = RandomStreams(seed)
    rng = streams.stream("bank")
    stats = {
        "audits": 0,
        "balanced_audits": 0,
        "transfers": 0,
        "transfer_aborts": 0,
        "audit_aborts": 0,
    }

    def teller(worker: int):
        """Transfers money between random account pairs, forever."""
        while sim.now < DURATION:
            yield rng.expovariate(0.5)
            src, dst = rng.sample(range(N_ACCOUNTS), 2)
            txn = db.begin()
            try:
                yield 1.0
                a = yield db.read(txn, f"acct{src}")
                b = yield db.read(txn, f"acct{dst}")
                amount = rng.randint(1, 50)
                yield 1.0
                yield db.write(txn, f"acct{src}", a - amount)
                yield db.write(txn, f"acct{dst}", b + amount)
                yield db.commit(txn)
                stats["transfers"] += 1
            except TransactionAborted:
                db.abort(txn)
                stats["transfer_aborts"] += 1

    def auditor():
        """Periodically sums every account in one read-only transaction."""
        while sim.now < DURATION:
            yield 15.0
            txn = db.begin(read_only=True)
            total = 0
            try:
                for i in range(N_ACCOUNTS):
                    yield 0.2
                    total += yield db.read(txn, f"acct{i}")
                yield db.commit(txn)
            except TransactionAborted:
                db.abort(txn)
                stats["audit_aborts"] += 1
                continue
            stats["audits"] += 1
            if total == TOTAL:
                stats["balanced_audits"] += 1

    for worker in range(6):
        sim.spawn(teller(worker), name=f"teller-{worker}")
    sim.spawn(auditor(), name="auditor")
    sim.run()

    stats["protocol"] = protocol
    stats["audit_blocks"] = db.counters.get("block.ro")
    stats["audit_cc_ops"] = db.counters.get("cc.ro")
    stats["transfers_aborted_by_audits"] = db.counters.get("abort.rw.caused_by_readonly")
    return stats


def main() -> None:
    rows = []
    for protocol in ("vc-2pl", "vc-to", "vc-occ", "mvto-reed", "sv-2pl"):
        s = run_bank(protocol)
        rows.append(
            [
                s["protocol"],
                s["transfers"],
                s["transfer_aborts"],
                f'{s["balanced_audits"]}/{s["audits"]}',
                s["audit_aborts"],
                s["audit_blocks"],
                s["audit_cc_ops"],
                s["transfers_aborted_by_audits"],
            ]
        )
    print_table(
        [
            "protocol",
            "transfers",
            "transfer aborts",
            "balanced audits",
            "audit aborts",
            "audit blocks",
            "audit CC ops",
            "transfers killed by audits",
        ],
        rows,
        "Banking: consistent audits under concurrent transfers",
    )
    print(
        "\nEvery multiversion audit balances exactly; under vc-* the audits"
        "\ntake zero locks, never block, and never kill a transfer."
    )


if __name__ == "__main__":
    main()
