#!/usr/bin/env python3
"""Step-by-step execution traces of the paper's Figures 1-4.

Replays each figure's action sequence against the real implementation and
prints the internal state after every step, so the code can be read
side-by-side with the paper.

Run:  python examples/figure_traces.py
"""

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.protocols import VC2PLScheduler, VCTOScheduler


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def trace_figure_1() -> None:
    banner("Figure 1 — the VersionControl module")
    vc = VersionControl()
    txns = [Transaction() for _ in range(3)]

    def show(step: str) -> None:
        queue = ", ".join(
            f"E(T{t}, tn={n}, {'complete' if c else 'active'})"
            for t, n, c in vc.queue_snapshot()
        )
        print(f"{step:<42} tnc={vc.tnc} vtnc={vc.vtnc}  VCQueue=[{queue}]")

    show("initial state")
    for i, txn in enumerate(txns, 1):
        vc.vc_register(txn)
        show(f"VCregister(T{i}, 'active')")
    print(f"VCstart() for a read-only txn returns sn = {vc.vc_start()}")
    vc.vc_complete(txns[2])
    show("VCcomplete(T3)   (out of order: delayed)")
    vc.vc_complete(txns[0])
    show("VCcomplete(T1)   (head completes: drains)")
    vc.vc_complete(txns[1])
    show("VCcomplete(T2)")


def trace_figure_2() -> None:
    banner("Figure 2 — read-only transaction execution")
    db = VC2PLScheduler()
    for value in (10, 20, 30):
        w = db.begin()
        db.write(w, "x", value).result()
        db.commit(w).result()
    print(f"store now holds versions of x: {[v.tn for v in db.store.object('x').versions()]}")
    ro = db.begin(read_only=True)
    print(f"begin(T):  sn(T) <- VCstart() = {ro.sn}")
    value = db.read(ro, "x").result()
    print(f"read(x):   returns x_j with largest version <= sn(T): value {value}")
    db.commit(ro).result()
    print(f"end(T):    (nothing) — CC interactions by this txn: {db.counters.get('cc.ro')}")


def trace_figure_3() -> None:
    banner("Figure 3 — read-write execution under timestamp ordering")
    db = VCTOScheduler()
    t = db.begin()
    print(f"begin(T):  VCregister -> tn(T) = {t.tn}; sn(T) = tn(T) = {t.sn}")
    db.read(t, "x").result()
    print(f"read(x):   r-ts(x) <- MAX(r-ts(x), tn(T)) = {db.store.object('x').max_r_ts}")
    db.write(t, "y", 99).result()
    version = db.store.object("y").latest()
    print(f"write(y):  created y_{version.tn} (pending={version.pending})")
    db.commit(t).result()
    print(f"end(T):    commit; pending cleared; vtnc = {db.vc.vtnc}")
    # Rejection case: a younger reader raises r-ts, then an older writer dies.
    older = db.begin()
    younger = db.begin()
    db.read(younger, "z").result()
    rejected = db.write(older, "z", 1)
    print(
        f"conflict:  w{older.tn}[z] after r{younger.tn}[z] -> "
        f"{'rejected, T aborted' if rejected.failed else 'granted'}"
    )
    db.commit(younger).result()


def trace_figure_4() -> None:
    banner("Figure 4 — read-write execution under two-phase locking")
    db = VC2PLScheduler()
    t = db.begin()
    print(f"begin(T):  sn(T) = {t.sn} ('infinity, for uniformity')")
    db.read(t, "x").result()
    print(f"read(x):   r-lock(x) granted; holders = {db.locks.holders('x')}")
    db.write(t, "y", 5).result()
    print(
        "write(y):  w-lock(y) granted; created y with version phi "
        f"(staged privately: {t.write_set})"
    )
    db.commit(t).result()
    print(
        f"end(T):    VCregister -> tn(T) = {t.tn}; updates installed with tn; "
        f"locks cleared; VCcomplete -> vtnc = {db.vc.vtnc}"
    )
    installed = db.store.object("y").latest()
    print(f"store:     y_{installed.tn} = {installed.value}")


if __name__ == "__main__":
    trace_figure_1()
    trace_figure_2()
    trace_figure_3()
    trace_figure_4()
