#!/usr/bin/env python3
"""Read replicas: the read-only fast path, served from another machine.

The paper's class split gives read-only transactions everything they need
from two ingredients — a snapshot number and committed versions up to it —
and neither requires the primary.  This example ships the write-ahead log
to two replicas, serves snapshot reads from them with zero concurrency-
control calls, shows the staleness bound degrading a lagging replica to a
primary redirect instead of a wait, and finishes with a fail-over that
promotes a replica through the ordinary crash-recovery path.

Run:  python examples/replica_reads.py
"""

from repro.distributed.courier import Courier
from repro.replica.cluster import ReplicaCluster
from repro.replica.session import ReplicatedDatabase
from repro.sim.engine import Simulator


def transfer(db, key: str, amount: int) -> None:
    with db.transaction() as txn:
        txn.write(key, (txn.read(key) or 0) + amount)


def main() -> None:
    print("== immediate shipping: replicas stay current ==")
    cluster = ReplicaCluster(n_replicas=2)
    db = ReplicatedDatabase(cluster, max_staleness=2)
    for i in range(3):
        transfer(db, "balance", 100)
    with db.snapshot() as snap:
        print(
            f"snapshot from a replica: balance={snap.read('balance')} "
            f"sn={snap.txn.sn} staleness={snap.staleness}"
        )
    for rid, replica in sorted(cluster.replicas.items()):
        print(
            f"  replica {rid}: vtnc={replica.vtnc} "
            f"(primary vtnc={cluster.primary.vc.vtnc}) "
            f"ro CC calls={replica.counters.get('cc.ro')}"
        )

    print("\n== delayed shipping: the staleness bound kicks in ==")
    sim = Simulator()
    cluster = ReplicaCluster(n_replicas=2, courier=Courier(sim=sim, latency=1.0))
    db = ReplicatedDatabase(cluster, max_staleness=2)
    for i in range(6):
        transfer(db, "balance", 100)   # shipped, but not yet delivered
    lagging = cluster.pick_replica()
    print(
        f"before delivery: replica {lagging.replica_id} lags "
        f"{cluster.lag_txns(lagging)} txns (bound 2)"
    )
    with db.snapshot() as snap:
        print(f"snapshot redirected to primary: balance={snap.read('balance')}")
    print(f"routing counters: {cluster.counters.as_dict()}")
    sim.run()   # deliver the shipped segments
    with db.snapshot() as snap:
        print(
            f"after delivery: served from a replica again, "
            f"balance={snap.read('balance')} staleness={snap.staleness}"
        )

    print("\n== fail-over: a replica becomes the primary ==")
    promoted = cluster.fail_over()
    print(
        f"promoted replica {promoted.replica_id}; new primary "
        f"vtnc={cluster.primary.vc.vtnc} epoch={cluster.epoch}"
    )
    transfer(db, "balance", 100)   # the session follows the new primary
    sim.run()
    with db.snapshot() as snap:
        print(f"post-promotion snapshot: balance={snap.read('balance')}")
    survivors = ", ".join(
        f"r{rid}: vtnc={r.vtnc}" for rid, r in sorted(cluster.replicas.items())
    )
    print(f"survivors resubscribed and caught up ({survivors})")


if __name__ == "__main__":
    main()
