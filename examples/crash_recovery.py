#!/usr/bin/env python3
"""Crash recovery: multiversion storage plus a write-ahead log.

The paper's first sentence: "Multiple versions of data are used in database
systems to support transaction and system recovery."  This example drives
the recoverable VC+2PL scheduler through a workload, crashes it at the worst
possible moments, and shows recovery restoring exactly the committed prefix
— with the version-control counters resuming correctly.

Run:  python examples/crash_recovery.py
"""

from repro.protocols.recoverable import RecoverableVC2PLScheduler
from repro.storage.wal import redo_summary


def show_state(db, label: str) -> None:
    reader = db.begin(read_only=True)
    balance = db.read(reader, "balance").result()
    audit = db.read(reader, "audit_rows").result()
    db.commit(reader).result()
    print(
        f"{label:<34} balance={balance!r:<8} audit_rows={audit!r:<8} "
        f"tnc={db.vc.tnc} vtnc={db.vc.vtnc} log={len(db.log)} records"
    )


def main() -> None:
    db = RecoverableVC2PLScheduler()

    print("== committed work survives ==")
    t = db.begin()
    db.write(t, "balance", 100).result()
    db.write(t, "audit_rows", 1).result()
    db.commit(t).result()
    show_state(db, "after commit #1")

    print("\n== crash with a transaction in flight ==")
    doomed = db.begin()
    db.write(doomed, "balance", -999).result()   # staged + logged, not forced
    db.write(doomed, "audit_rows", -999).result()
    lost = db.crash()
    print(f"CRASH: lost {lost} volatile log records (the in-flight writes)")
    db = db.recovered()
    show_state(db, "after recovery")
    assert db.begin(read_only=True).sn == db.vc.vtnc

    print("\n== numbering resumes; history continues ==")
    t = db.begin()
    value = db.read(t, "balance").result()
    db.write(t, "balance", value + 50).result()
    db.write(t, "audit_rows", 2).result()
    db.commit(t).result()
    show_state(db, "after post-recovery commit")
    print(f"post-recovery transaction number: {t.tn} (continues the sequence)")

    print("\n== a second crash, immediately after the commit point ==")
    t = db.begin()
    db.write(t, "balance", 9000).result()
    db.commit(t).result()       # COMMIT record forced, versions installed
    db.crash()                  # nothing volatile left to lose
    db = db.recovered()
    show_state(db, "after recovery #2")
    assert db.store.read_latest_committed("balance").value == 9000

    print(f"\nlog record mix: {redo_summary(db.log.durable_records())}")
    report = db.recovered().vc  # counters from one more recovery round-trip
    print(f"recovery is idempotent: tnc={report.tnc}, vtnc={report.vtnc}")


if __name__ == "__main__":
    main()
