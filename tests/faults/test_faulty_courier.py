"""FaultyCourier behavior across the three delivery modes."""

import pytest

from repro.faults import FaultSchedule, FaultSpec, FaultyCourier, PartitionWindow, RetryPolicy
from repro.obs import RingBufferExporter, Tracer
from repro.sim.engine import Simulator


def make_courier(spec, seed=0, **kw):
    return FaultyCourier(schedule=FaultSchedule(spec, seed=seed), **kw)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(base=1.0, factor=2.0, cap=8.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in range(6)]
        assert delays[:4] == [1.0, 2.0, 4.0, 8.0]
        assert delays[4] == delays[5] == 8.0  # capped

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(base=1.0, factor=1.0, cap=10.0, jitter=0.5)
        rng = random.Random(1)
        for n in range(50):
            assert 0.5 <= policy.delay(0, rng) <= 1.5


class TestImmediateMode:
    def test_duplicate_runs_handler_twice(self):
        courier = make_courier(FaultSpec(duplicate=1.0))
        runs = []
        courier.dispatch(lambda: runs.append(1))
        assert len(runs) == 2
        assert courier.schedule.counts.duplicates == 1

    def test_certain_drop_still_delivers_after_retries(self):
        """The retry backstop forces delivery; nothing is silently lost."""
        courier = make_courier(
            FaultSpec(drop=1.0), retry=RetryPolicy(max_attempts=3)
        )
        runs = []
        courier.dispatch(lambda: runs.append(1))
        assert runs == [1]
        assert courier.schedule.counts.retries_exhausted == 1

    def test_explicit_partition_parks_and_heals(self):
        courier = make_courier(FaultSpec())
        runs = []
        courier.partition("2pc")
        courier.dispatch(lambda: runs.append("a"), channel="2pc")
        courier.dispatch(lambda: runs.append("b"), channel="data")
        assert runs == ["b"]
        assert courier.parked("2pc") == 1
        courier.heal("2pc")
        assert runs == ["b", "a"]
        assert courier.parked() == 0


class TestManualMode:
    def test_drop_slides_arrival_behind_later_sends(self):
        spec = FaultSpec(drop=1.0)
        # Find a seed/order where the dropped message's backoff pushes it
        # behind a later clean message — deterministic given the seed.
        courier = FaultyCourier(
            schedule=FaultSchedule(spec, seed=0),
            retry=RetryPolicy(base=5.0, jitter=0.0, max_attempts=2),
            manual=True,
        )
        order = []
        courier.dispatch(lambda: order.append("first"), channel="data")
        courier.schedule.overrides["data"] = FaultSpec()  # later sends clean
        courier.dispatch(lambda: order.append("second"), channel="data")
        courier.pump()
        assert order == ["second", "first"]

    def test_duplicate_enqueues_twice(self):
        courier = make_courier(FaultSpec(duplicate=1.0), manual=True)
        runs = []
        courier.dispatch(lambda: runs.append(1))
        assert courier.pending() == 2
        courier.pump()
        assert runs == [1, 1]

    def test_clean_schedule_preserves_fifo(self):
        courier = make_courier(FaultSpec(), manual=True)
        order = []
        for i in range(5):
            courier.dispatch(lambda i=i: order.append(i))
        courier.pump()
        assert order == [0, 1, 2, 3, 4]


class TestSimulatedMode:
    def test_drop_retransmits_in_virtual_time(self):
        sim = Simulator()
        courier = FaultyCourier(
            schedule=FaultSchedule(FaultSpec(drop=1.0), seed=0),
            retry=RetryPolicy(base=2.0, jitter=0.0, max_attempts=3),
            sim=sim,
        )
        arrivals = []
        courier.dispatch(lambda: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 1
        # Two failed attempts back off 2.0 + 4.0 before the forced delivery.
        assert arrivals[0] == pytest.approx(6.0)
        assert courier.schedule.counts.retries_exhausted == 1

    def test_duplicate_delivers_twice(self):
        sim = Simulator()
        courier = make_courier(FaultSpec(duplicate=1.0), sim=sim)
        runs = []
        courier.dispatch(lambda: runs.append(sim.now))
        sim.run()
        assert len(runs) == 2

    def test_partition_window_defers_to_heal_time(self):
        sim = Simulator()
        spec = FaultSpec(partitions=(PartitionWindow("2pc", 0.0, 50.0),))
        courier = make_courier(spec, sim=sim)
        arrivals = []
        courier.dispatch(lambda: arrivals.append(sim.now), channel="2pc")
        courier.dispatch(lambda: arrivals.append(("data", sim.now)), channel="data")
        sim.run()
        assert ("data", 0.0) in arrivals
        (deferred,) = [a for a in arrivals if not isinstance(a, tuple)]
        assert deferred >= 50.0
        assert courier.schedule.counts.partition_deferrals == 1

    def test_delay_spike_adds_latency(self):
        sim = Simulator()
        courier = make_courier(FaultSpec(delay_spike=1.0, spike_factor=10.0), sim=sim)
        arrivals = []
        courier.dispatch(lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] >= 5.0  # spike is at least 0.5 * spike_factor


class TestTraceEvents:
    def test_faults_emit_trace_events(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        courier = make_courier(
            FaultSpec(drop=1.0), retry=RetryPolicy(max_attempts=2)
        )
        courier.tracer = tracer
        courier.dispatch(lambda: None)
        names = {e.name for e in ring.events()}
        assert "fault.drop" in names or "fault.retry.exhausted" in names

    def test_partition_events(self):
        ring = RingBufferExporter()
        courier = make_courier(FaultSpec())
        courier.tracer = Tracer(exporters=[ring])
        courier.partition("x")
        courier.dispatch(lambda: None, channel="x")
        courier.heal("x")
        names = [e.name for e in ring.events()]
        assert names[:3] == [
            "fault.partition.start",
            "fault.partition.hold",
            "fault.partition.heal",
        ]


class TestDeterminism:
    def test_same_seed_same_manual_delivery_order(self):
        def run(seed):
            courier = make_courier(
                FaultSpec(drop=0.3, duplicate=0.3, delay_spike=0.3),
                seed=seed,
                manual=True,
            )
            order = []
            for i in range(30):
                courier.dispatch(lambda i=i: order.append(i), channel=f"c{i % 3}")
            courier.pump()
            return order

        assert run(5) == run(5)
        assert run(5) != run(6)
