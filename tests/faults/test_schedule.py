"""Seed determinism and semantics of fault schedules."""

import pytest

from repro.faults import FaultSchedule, FaultSpec, PartitionWindow


def decisions(schedule, channel, n=50, **kw):
    return [
        (d.drop, d.duplicate, round(d.extra_delay, 9))
        for d in (schedule.decide(channel, **kw) for _ in range(n))
    ]


class TestFaultSpec:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(duplicate=-0.1)

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(drop=0.1).any_faults
        assert FaultSpec(partitions=(PartitionWindow("a", 0, 1),)).any_faults

    def test_empty_partition_window_rejected(self):
        with pytest.raises(ValueError):
            PartitionWindow("a", 5.0, 5.0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        spec = FaultSpec(drop=0.2, duplicate=0.2, delay_spike=0.2)
        a = decisions(FaultSchedule(spec, seed=7), "2pc")
        b = decisions(FaultSchedule(spec, seed=7), "2pc")
        assert a == b

    def test_different_seed_different_decisions(self):
        spec = FaultSpec(drop=0.3, duplicate=0.3, delay_spike=0.3)
        a = decisions(FaultSchedule(spec, seed=1), "2pc")
        b = decisions(FaultSchedule(spec, seed=2), "2pc")
        assert a != b

    def test_channels_are_independent_streams(self):
        """Draws on one channel never perturb another channel's sequence."""
        spec = FaultSpec(drop=0.3, duplicate=0.3)
        alone = decisions(FaultSchedule(spec, seed=3), "data")
        mixed_schedule = FaultSchedule(spec, seed=3)
        interleaved = []
        for _ in range(50):
            mixed_schedule.decide("2pc")  # extra traffic on another channel
            d = mixed_schedule.decide("data")
            interleaved.append((d.drop, d.duplicate, round(d.extra_delay, 9)))
        assert interleaved == alone


class TestDecide:
    def test_no_faults_spec_never_fires(self):
        schedule = FaultSchedule(FaultSpec(), seed=0)
        for _ in range(100):
            d = schedule.decide("x")
            assert not d.drop and not d.duplicate and d.extra_delay == 0.0
        assert schedule.counts.total() == 0

    def test_certain_drop(self):
        schedule = FaultSchedule(FaultSpec(drop=1.0), seed=0)
        assert all(schedule.decide("x").drop for _ in range(10))
        assert schedule.counts.drops == 10

    def test_retransmission_redraws_only_drop(self):
        spec = FaultSpec(drop=0.0, duplicate=1.0, delay_spike=1.0)
        schedule = FaultSchedule(spec, seed=0)
        d = schedule.decide("x", retransmission=True)
        assert not d.duplicate and d.extra_delay == 0.0

    def test_per_channel_override(self):
        schedule = FaultSchedule(
            FaultSpec(), seed=0, overrides={"lossy": FaultSpec(drop=1.0)}
        )
        assert schedule.decide("lossy").drop
        assert not schedule.decide("clean").drop

    def test_counts_as_dict_keys(self):
        counts = FaultSchedule(FaultSpec(), seed=0).counts.as_dict()
        assert set(counts) == {
            "drops",
            "duplicates",
            "delay_spikes",
            "partition_deferrals",
            "retries_exhausted",
            "crashes",
        }


class TestPartitions:
    def test_window_covers(self):
        window = PartitionWindow("2pc", 10.0, 20.0)
        assert window.covers("2pc", 10.0)
        assert not window.covers("2pc", 20.0)
        assert not window.covers("data", 15.0)

    def test_wildcard_channel(self):
        window = PartitionWindow("*", 0.0, 5.0)
        assert window.covers("anything", 1.0)

    def test_partitioned_until_returns_latest_end(self):
        spec = FaultSpec(
            partitions=(
                PartitionWindow("2pc", 0.0, 10.0),
                PartitionWindow("*", 5.0, 30.0),
            )
        )
        schedule = FaultSchedule(spec, seed=0)
        assert schedule.partitioned_until("2pc", 6.0) == 30.0
        assert schedule.partitioned_until("2pc", 2.0) == 10.0
        assert schedule.partitioned_until("data", 2.0) is None
        assert schedule.partitioned_until("2pc", 30.0) is None
