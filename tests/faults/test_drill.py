"""End-to-end fault drills: seeded campaigns must hold the paper invariants."""

import pytest

from repro.faults import FaultSpec, PartitionWindow, run_campaign, run_drill
from repro.faults.drill import main as drill_main
from repro.obs import RingBufferExporter, Tracer


class TestRunDrill:
    def test_dvc_drill_ok_with_faults(self):
        report = run_drill("dvc", seed=0, duration=200.0)
        assert report.ok, (report.violations, report.wedged)
        assert report.commits > 10
        assert sum(report.faults.values()) > 0

    def test_dmv2pl_drill_ok_with_faults(self):
        report = run_drill("dmv2pl", seed=0, duration=200.0)
        assert report.ok, (report.violations, report.wedged)
        assert report.commits > 10
        assert report.ro_commits == 0  # drills skip the known RO anomaly

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_drill("nope", seed=0)

    def test_deterministic_under_seed(self):
        a = run_drill("dvc", seed=9, duration=150.0).as_dict()
        b = run_drill("dvc", seed=9, duration=150.0).as_dict()
        assert a == b

    def test_different_seeds_differ(self):
        a = run_drill("dvc", seed=1, duration=150.0).as_dict()
        b = run_drill("dvc", seed=2, duration=150.0).as_dict()
        assert a != b

    def test_crashes_happen_and_survive(self):
        report = run_drill("dvc", seed=3, duration=300.0, crash_mean=40.0)
        assert report.crashes > 0
        assert report.ok, (report.violations, report.wedged)

    def test_no_crash_mode(self):
        report = run_drill("dvc", seed=0, duration=150.0, crash_mean=None)
        assert report.crashes == 0
        assert report.ok

    def test_partition_windows_defer_messages(self):
        spec = FaultSpec(partitions=(PartitionWindow("*", 40.0, 90.0),))
        report = run_drill("dvc", seed=0, duration=200.0, spec=spec, crash_mean=None)
        assert report.ok, (report.violations, report.wedged)
        assert report.faults["partition_deferrals"] > 0

    def test_heavy_loss_still_converges(self):
        spec = FaultSpec(drop=0.35, duplicate=0.15, delay_spike=0.1)
        report = run_drill("dvc", seed=4, duration=250.0, spec=spec)
        assert report.ok, (report.violations, report.wedged)
        assert report.commits > 0

    def test_fault_events_traced(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        report = run_drill("dvc", seed=0, duration=150.0, tracer=tracer)
        names = {e.name for e in ring.events()}
        assert any(name.startswith("fault.") for name in names)
        assert "fault.drill.done" in names
        assert report.ok


class TestRunCampaign:
    def test_campaign_covers_protocols_and_seeds(self):
        reports = run_campaign(("dvc", "dmv2pl"), seeds=2, duration=120.0)
        assert len(reports) == 4
        assert {r.protocol for r in reports} == {"dvc", "dmv2pl"}
        assert all(r.ok for r in reports), [
            (r.protocol, r.seed, r.violations, r.wedged) for r in reports
        ]


class TestDrillCLI:
    def test_cli_pass(self, capsys):
        code = drill_main(
            ["--seeds", "1", "--duration", "100", "--protocol", "dvc"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failed" in out

    def test_cli_trace_output(self, tmp_path, capsys):
        trace = tmp_path / "drill.jsonl"
        code = drill_main(
            [
                "--seeds",
                "1",
                "--duration",
                "100",
                "--protocol",
                "dvc",
                "--quiet",
                "--trace",
                str(trace),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert trace.exists()
        assert '"fault.' in trace.read_text()
