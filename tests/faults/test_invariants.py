"""FaultInvariantChecker: catches seeded corruption, passes clean runs."""

import pytest

from repro.distributed import Courier, DistributedVCDatabase
from repro.errors import InvariantViolation
from repro.faults import FaultInvariantChecker


def committed_txn(db, keys_values):
    txn = db.begin()
    for key, value in keys_values:
        db.write(txn, key, value)
    db.commit(txn)
    return txn


class TestCleanRun:
    def test_ok_on_clean_database(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        txn = committed_txn(db, [("s1:x", 1), ("s2:y", 2)])
        checker.note_commit(txn)
        checker.check_final()
        assert checker.ok
        checker.assert_ok()  # does not raise

    def test_snapshot_is_cheap_and_repeatable(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        for _ in range(3):
            checker.snapshot()
        assert checker.ok


class TestDetectsCorruption:
    def test_lost_committed_write_detected(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        txn = committed_txn(db, [("s1:x", 41)])
        checker.note_commit(txn)
        # Sabotage: drop the installed version behind the checker's back.
        site = db.site_of_key("s1:x")
        chain = site.store.object("s1:x")
        version = chain.find(txn.tn)
        assert version is not None
        version.value = "corrupted"
        checker.check_no_committed_write_loss()
        assert not checker.ok
        assert any("holds" in v for v in checker.violations)

    def test_missing_version_detected(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        txn = committed_txn(db, [("s1:x", 41)])
        # Claim a commit at a number that was never installed.
        txn.write_set["s1:never"] = 99
        checker.note_commit(txn)
        checker.check_no_committed_write_loss()
        assert any("lost" in v for v in checker.violations)

    def test_visibility_regression_detected(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        checker.snapshot()
        site = db.sites[1]
        # Pretend an earlier snapshot saw much higher visibility in the
        # same incarnation: the next snapshot must flag the regression.
        checker._visibility_marks[1] = (site.incarnation, site.vc.vtnc + 10_000)
        checker.snapshot()
        assert any("regressed" in v for v in checker.violations)

    def test_regression_allowed_across_incarnations(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        site = db.sites[1]
        checker._visibility_marks[1] = (site.incarnation + 1, site.vc.vtnc + 10_000)
        checker.snapshot()
        assert checker.ok

    def test_assert_ok_raises_with_all_violations(self):
        db = DistributedVCDatabase(n_sites=2, courier=Courier())
        checker = FaultInvariantChecker(db)
        checker.violations.append("first problem")
        checker.violations.append("second problem")
        with pytest.raises(InvariantViolation, match="first problem"):
            checker.assert_ok()
