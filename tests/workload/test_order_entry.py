"""End-to-end integrity tests: the order-entry scenario across protocols.

The scenario's invariants (stock conservation and balanced books) couple
many objects, so any consistency defect in a protocol shows up as a
violation in some audit.  Every protocol must keep every audit clean and
every history one-copy serializable.
"""

import pytest

from repro.histories import assert_one_copy_serializable
from repro.protocols.registry import PROTOCOLS, make_scheduler
from repro.workload.order_entry import (
    OrderEntryConfig,
    run_order_entry,
    seed_database,
)

FAST = OrderEntryConfig(duration=200.0, n_items=10, n_clerks=5, n_auditors=2)


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_invariants_hold_under_every_protocol(name):
    scheduler = make_scheduler(name)
    outcome = run_order_entry(scheduler, FAST)
    assert outcome.orders_placed > 10, f"{name}: workload barely ran"
    # Single-version TO restarts long audits aggressively; a couple of
    # completed audits still gives the invariants plenty of bite.
    assert outcome.audits >= 2, f"{name}: audits barely ran ({outcome})"
    assert outcome.clean, (
        f"{name}: {outcome.conservation_violations} conservation / "
        f"{outcome.books_violations} books violations"
    )
    assert_one_copy_serializable(scheduler.history)


def test_vc_auditors_never_restart():
    scheduler = make_scheduler("vc-2pl")
    outcome = run_order_entry(scheduler, FAST)
    assert outcome.audit_restarts == 0
    assert scheduler.counters.get("cc.ro") == 0


def test_sv_to_auditors_restart():
    """The single-version contrast: auditors get timestamp-rejected."""
    config = OrderEntryConfig(
        duration=300.0, n_items=6, n_clerks=8, n_auditors=3, seed=4
    )
    scheduler = make_scheduler("sv-to")
    outcome = run_order_entry(scheduler, config)
    assert outcome.audit_restarts > 0
    assert outcome.clean, "restarted audits must still never see torn state"


def test_rejected_orders_leave_no_trace():
    config = OrderEntryConfig(
        duration=200.0, n_items=4, initial_stock=3, n_clerks=6, n_auditors=1
    )
    scheduler = make_scheduler("vc-to")
    outcome = run_order_entry(scheduler, config)
    assert outcome.orders_rejected > 0, "tiny stock forces rejections"
    assert outcome.clean


def test_seed_database_is_one_transaction():
    scheduler = make_scheduler("vc-2pl")
    seed_database(scheduler, OrderEntryConfig(n_items=3))
    assert scheduler.vc.vtnc == 1
    reader = scheduler.begin(read_only=True)
    assert scheduler.read(reader, "stock:0").result() == 1000
    assert scheduler.read(reader, "orders").result() == 0


def test_deterministic_outcomes():
    def once():
        scheduler = make_scheduler("vc-occ")
        return run_order_entry(scheduler, FAST)

    assert once() == once()
