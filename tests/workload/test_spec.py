"""Tests for workload specification and generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import MIXES, WorkloadGenerator, WorkloadSpec, balanced


class TestSpecValidation:
    def test_defaults_valid(self):
        WorkloadSpec()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(ro_fraction=1.5)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(rw_ops=(5, 2))
        with pytest.raises(ValueError):
            WorkloadSpec(ro_ops=(0, 2))

    def test_bad_object_count_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_objects=0)


class TestGeneration:
    def test_deterministic_under_seed(self):
        spec = balanced(seed=5)
        a = [t for t in WorkloadGenerator(spec).transactions(50)]
        b = [t for t in WorkloadGenerator(spec).transactions(50)]
        assert a == b

    def test_different_seeds_differ(self):
        a = list(WorkloadGenerator(balanced(seed=1)).transactions(50))
        b = list(WorkloadGenerator(balanced(seed=2)).transactions(50))
        assert a != b

    def test_read_only_txns_have_only_reads(self):
        gen = WorkloadGenerator(WorkloadSpec(ro_fraction=1.0, seed=3))
        for txn in gen.transactions(30):
            assert txn.read_only
            assert txn.writes == 0
            assert txn.reads >= 1

    def test_read_write_txns_have_at_least_one_write(self):
        """The paper's class definition: RW txns execute >= 1 write."""
        gen = WorkloadGenerator(
            WorkloadSpec(ro_fraction=0.0, write_fraction=0.05, seed=3)
        )
        for txn in gen.transactions(100):
            assert not txn.read_only
            assert txn.writes >= 1

    def test_keys_distinct_within_txn(self):
        """Section 3 model: at most one read and one write per object."""
        gen = WorkloadGenerator(WorkloadSpec(n_objects=5, rw_ops=(4, 5), seed=3))
        for txn in gen.transactions(50):
            keys = [op.key for op in txn.ops]
            assert len(keys) == len(set(keys))

    def test_keys_within_database(self):
        gen = WorkloadGenerator(WorkloadSpec(n_objects=7, seed=1))
        for txn in gen.transactions(50):
            for op in txn.ops:
                assert 0 <= int(op.key[1:]) < 7

    def test_zipf_skew_concentrates_keys(self):
        hot = WorkloadGenerator(WorkloadSpec(n_objects=100, zipf_theta=1.2, seed=1))
        cold = WorkloadGenerator(WorkloadSpec(n_objects=100, zipf_theta=0.0, seed=1))

        def head_share(gen):
            touches = [
                int(op.key[1:]) for txn in gen.transactions(200) for op in txn.ops
            ]
            return sum(1 for k in touches if k < 10) / len(touches)

        assert head_share(hot) > head_share(cold) + 0.2

    def test_ro_fraction_respected(self):
        gen = WorkloadGenerator(WorkloadSpec(ro_fraction=0.7, seed=4))
        txns = list(gen.transactions(500))
        share = sum(1 for t in txns if t.read_only) / len(txns)
        assert 0.6 < share < 0.8


class TestMixes:
    def test_all_presets_constructible(self):
        for name, factory in MIXES.items():
            spec = factory(seed=1)
            txns = list(WorkloadGenerator(spec).transactions(10))
            assert len(txns) == 10, name

    def test_overrides_apply(self):
        spec = balanced(seed=1, ro_fraction=0.9)
        assert spec.ro_fraction == 0.9


@settings(max_examples=50, deadline=None)
@given(
    ro_fraction=st.floats(0.0, 1.0),
    theta=st.floats(0.0, 1.5),
    n_objects=st.integers(1, 50),
)
def test_property_generated_txns_always_well_formed(ro_fraction, theta, n_objects):
    spec = WorkloadSpec(
        n_objects=n_objects, ro_fraction=ro_fraction, zipf_theta=theta, seed=9
    )
    for txn in WorkloadGenerator(spec).transactions(20):
        assert len(txn.ops) >= 1
        keys = [op.key for op in txn.ops]
        assert len(keys) == len(set(keys))
        if txn.read_only:
            assert txn.writes == 0
        else:
            assert txn.writes >= 1
