"""Tests for the single-version baselines (SV-2PL, SV-TO)."""

import pytest

from repro.baselines import SV2PLScheduler, SVTOScheduler
from repro.errors import AbortReason, DeadlockError
from repro.histories import assert_one_copy_serializable


class TestSV2PL:
    @pytest.fixture
    def db(self):
        return SV2PLScheduler()

    def test_write_read_roundtrip(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        r = db.begin()
        assert db.read(r, "x").result() == 1

    def test_read_only_transactions_lock_and_block(self, db):
        """The cost the paper's Section 1 motivates removing."""
        w = db.begin()
        db.write(w, "x", 1).result()
        ro = db.begin(read_only=True)
        f = db.read(ro, "x")
        assert f.pending, "read-only reader blocks behind the writer"
        assert db.counters.get("block.ro") == 1
        assert db.counters.get("cc.ro") == 1
        db.commit(w).result()
        assert f.result() == 1

    def test_read_only_blocks_writer(self, db):
        ro = db.begin(read_only=True)
        db.read(ro, "x").result()
        w = db.begin()
        f = db.write(w, "x", 1)
        assert f.pending, "writer stalls behind the read-only reader"
        db.commit(ro).result()
        assert f.done

    def test_read_only_can_deadlock(self, db):
        ro = db.begin(read_only=True)
        w = db.begin()
        db.read(ro, "x").result()
        db.write(w, "y", 1).result()
        f_ro = db.read(ro, "y")     # ro waits for w
        assert f_ro.pending
        f_w = db.write(w, "x", 2)   # w waits for ro: cycle
        assert f_w.failed
        assert isinstance(f_w.error, DeadlockError)
        assert db.counters.get("deadlock") == 1

    def test_aborted_writer_leaves_no_trace(self, db):
        w = db.begin()
        db.write(w, "x", 9).result()
        db.abort(w)
        r = db.begin()
        assert db.read(r, "x").result() is None

    def test_history_is_serializable(self, db):
        for i in range(4):
            w = db.begin()
            v = db.read(w, "c").result() or 0
            db.write(w, "c", v + 1).result()
            db.commit(w).result()
        assert db.store.read("c") == (4, 4)
        assert_one_copy_serializable(db.history)

    def test_pure_reader_rw_txn_gets_tn(self, db):
        t = db.begin()
        db.read(t, "x").result()
        db.commit(t).result()
        assert t.tn is not None


class TestSVTO:
    @pytest.fixture
    def db(self):
        return SVTOScheduler()

    def test_write_read_roundtrip(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        r = db.begin()
        assert db.read(r, "x").result() == 1

    def test_read_only_can_be_rejected(self, db):
        """Without versions, even read-only transactions restart."""
        ro = db.begin(read_only=True)  # ts=1
        w = db.begin()                  # ts=2
        db.write(w, "x", 5).result()
        db.commit(w).result()          # w_ts(x) = 2
        f = db.read(ro, "x")
        assert f.failed
        assert ro.abort_reason is AbortReason.TIMESTAMP_REJECTED
        assert db.counters.get("abort.ro") == 1

    def test_late_write_rejected_by_read(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.read(t2, "x").result()  # r_ts = 2
        f = db.write(t1, "x", 1)
        assert f.failed

    def test_read_blocks_behind_older_prewrite(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 1).result()
        f = db.read(t2, "x")
        assert f.pending
        db.commit(t1).result()
        assert f.result() == 1

    def test_write_blocks_behind_older_prewrite(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 1).result()
        f = db.write(t2, "x", 2)
        assert f.pending
        db.commit(t1).result()
        assert f.done
        db.commit(t2).result()
        assert db.store.read("x") == (2, 2)

    def test_write_under_younger_prewrite_rejected(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "x", 2).result()
        f = db.write(t1, "x", 1)
        assert f.failed
        assert t1.abort_reason is AbortReason.TIMESTAMP_REJECTED

    def test_aborted_prewriter_unblocks_reader(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 1).result()
        f = db.read(t2, "x")
        db.abort(t1)
        assert f.result() is None

    def test_own_write_read_back(self, db):
        t = db.begin()
        db.write(t, "x", 3).result()
        assert db.read(t, "x").result() == 3

    def test_history_is_serializable(self, db):
        for _ in range(5):
            t = db.begin()
            f = db.read(t, "x")
            if f.failed:
                continue
            w = db.write(t, "x", (f.result() or 0) + 1)
            if w.failed:
                continue
            db.commit(t).result()
        assert_one_copy_serializable(db.history)
