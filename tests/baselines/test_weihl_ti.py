"""Tests for the Weihl timestamps-at-initiation reconstruction."""

import pytest

from repro.baselines import WeihlTIScheduler
from repro.histories import assert_one_copy_serializable


@pytest.fixture
def db():
    return WeihlTIScheduler()


class TestBasicOperation:
    def test_everyone_gets_initiation_timestamp(self, db):
        rw = db.begin()
        ro = db.begin(read_only=True)
        assert rw.tn == 1
        assert ro.tn == 2

    def test_write_read_roundtrip(self, db):
        w = db.begin()
        db.write(w, "x", 5).result()
        db.commit(w).result()
        r = db.begin(read_only=True)
        assert db.read(r, "x").result() == 5

    def test_rw_retimestamps_past_read_floor(self, db):
        """A writer whose initiation timestamp is under a read floor must
        re-timestamp at commit — the writer's half of the race."""
        w = db.begin()             # ts=1
        ro = db.begin(read_only=True)  # ts=2
        db.read(ro, "x").result()  # floor(x) = 2
        db.write(w, "x", 9).result()
        db.commit(w).result()
        assert w.tn > ro.tn, "final timestamp pushed above the floor"
        assert db.counters.get("weihl.rw_retimestamp") >= 1
        db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_rw_keeps_timestamp_when_unobstructed(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        assert w.tn == 1
        assert db.counters.get("weihl.rw_retimestamp") == 0


class TestReadOnlySynchronization:
    """The RO-side synchronization the paper contrasts with its own scheme."""

    def test_ro_blocks_behind_lower_tentative_writer(self, db):
        w = db.begin()                  # ts=1
        db.write(w, "x", 7).result()    # tentative ts 1 published
        ro = db.begin(read_only=True)   # ts=2
        f = db.read(ro, "x")
        assert f.pending, "reader must synchronize with the concurrent writer"
        assert db.counters.get("weihl.ro_sync") == 1
        db.commit(w).result()
        assert f.done

    def test_ro_does_not_block_on_higher_tentative_writer(self, db):
        ro = db.begin(read_only=True)  # ts=1
        w = db.begin()                 # ts=2
        db.write(w, "x", 7).result()
        f = db.read(ro, "x")
        assert f.done, "writer above our timestamp cannot affect our view"
        assert f.result() is None

    def test_ro_sync_write_counted(self, db):
        ro = db.begin(read_only=True)
        db.read(ro, "x").result()
        assert db.counters.get("syncwrite.ro") == 1

    def test_race_reader_waits_and_writer_retimestamps(self, db):
        """Both halves of the race fire on the same conflict."""
        w = db.begin()                 # ts=1
        db.write(w, "x", 7).result()
        ro = db.begin(read_only=True)  # ts=2
        db.read(ro, "y").result()      # unrelated: fine
        f = db.read(ro, "x")           # blocked behind w
        # Meanwhile another reader raises the floor on x above w's ts.
        ro2 = db.begin(read_only=True)  # ts=3
        f2 = db.read(ro2, "x")
        assert f.pending and f2.pending
        db.commit(w).result()
        assert db.counters.get("weihl.rw_retimestamp") >= 1
        assert f.done and f2.done
        # Both readers see the initial version: w finished above them.
        assert f.result() is None and f2.result() is None
        db.commit(ro).result()
        db.commit(ro2).result()
        assert_one_copy_serializable(db.history)


class TestSerializability:
    def test_mixed_history_is_1sr(self, db):
        for i in range(5):
            w = db.begin()
            ro = db.begin(read_only=True)
            db.read(ro, "a").result()
            db.write(w, "a", i).result()
            db.commit(w).result()
            db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_rw_reading_later_version_retimestamps(self, db):
        t1 = db.begin()  # ts=1
        t2 = db.begin()  # ts=2
        db.write(t2, "x", 2).result()
        db.commit(t2).result()
        v = db.read(t1, "x").result()  # reads version 2 with ts 1
        db.write(t1, "y", v).result()
        db.commit(t1).result()
        assert t1.tn > t2.tn, "re-timestamped above the version it read"
        assert_one_copy_serializable(db.history)
