"""Tests for Reed's MVTO baseline — including the paper's criticisms."""

import pytest

from repro.baselines import MVTOScheduler
from repro.errors import AbortReason, TransactionAborted
from repro.histories import assert_one_copy_serializable


@pytest.fixture
def db():
    return MVTOScheduler()


class TestBasicOperation:
    def test_timestamps_assigned_at_begin_to_everyone(self, db):
        rw = db.begin()
        ro = db.begin(read_only=True)
        assert rw.tn == 1
        assert ro.tn == 2, "read-only transactions get timestamps too"

    def test_write_then_read_same_value(self, db):
        w = db.begin()
        db.write(w, "x", 5).result()
        db.commit(w).result()
        r = db.begin()
        assert db.read(r, "x").result() == 5

    def test_out_of_timestamp_order_write_into_past(self, db):
        """Reed allows a write between existing versions when unread."""
        t1 = db.begin()  # ts=1
        t2 = db.begin()  # ts=2
        db.write(t2, "x", 20).result()
        db.commit(t2).result()
        f = db.write(t1, "x", 10)  # version 1 slots beneath version 2
        assert f.done
        db.commit(t1).result()
        chain = [v.tn for v in db.store.object("x").versions()]
        assert chain == [0, 1, 2]
        assert_one_copy_serializable(db.history)

    def test_late_write_under_read_rejected(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.read(t2, "x").result()  # reads v0, r_ts(v0)=2
        f = db.write(t1, "x", 1)
        assert f.failed
        assert t1.abort_reason is AbortReason.TIMESTAMP_REJECTED


class TestPaperCriticism1Blocking:
    """Section 2: 'read operations may be blocked due to a pending write'."""

    def test_read_only_read_blocks_on_pending_write(self, db):
        w = db.begin()  # ts=1
        db.write(w, "x", 1).result()
        ro = db.begin(read_only=True)  # ts=2
        f = db.read(ro, "x")
        assert f.pending, "read-only reader is NOT independent here"
        assert db.counters.get("block.ro") == 1
        db.commit(w).result()
        assert f.result() == 1

    def test_read_only_unblocked_by_abort(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        ro = db.begin(read_only=True)
        f = db.read(ro, "x")
        db.abort(w)
        assert f.result() is None


class TestPaperCriticism2Overhead:
    """Section 2: read-only reads 'must update certain information'."""

    def test_read_only_reads_perform_sync_writes(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        ro = db.begin(read_only=True)
        db.read(ro, "x").result()
        assert db.counters.get("syncwrite.ro") == 1
        assert db.counters.get("cc.ro") == 1

    def test_read_only_read_raises_r_ts(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        ro = db.begin(read_only=True)  # ts=2
        db.read(ro, "x").result()
        version = db.store.object("x").find(1)
        assert version.r_ts == ro.tn
        assert version.r_ts_ro == ro.tn


class TestPaperCriticism3ReadOnlyCausedAborts:
    """Section 2: 'a read-only transaction causing an abort of a read-write
    transaction'."""

    def test_ro_read_aborts_older_writer(self, db):
        old_writer = db.begin()       # ts=1
        ro = db.begin(read_only=True)  # ts=2
        db.read(ro, "x").result()      # r_ts(v0) = 2 set by a read-only txn
        f = db.write(old_writer, "x", 9)
        assert f.failed
        assert old_writer.abort_reason is AbortReason.TIMESTAMP_REJECTED
        assert old_writer.abort_caused_by_readonly
        assert db.counters.get("abort.rw.caused_by_readonly") == 1

    def test_attribution_not_blamed_on_ro_when_rw_also_read(self, db):
        old_writer = db.begin()            # ts=1
        rw_reader = db.begin()             # ts=2
        ro = db.begin(read_only=True)      # ts=3
        db.read(rw_reader, "x").result()   # r_ts_rw = 2
        db.read(ro, "x").result()          # r_ts_ro = 3
        f = db.write(old_writer, "x", 9)
        assert f.failed
        assert not old_writer.abort_caused_by_readonly, (
            "the read-write reader alone would have caused the rejection"
        )
        assert db.counters.get("abort.rw.caused_by_readonly") == 0


class TestSerializability:
    def test_interleaved_history_is_1sr(self, db):
        for i in range(4):
            w = db.begin()
            ro = db.begin(read_only=True)
            db.write(w, "a", i).result()
            f = db.read(ro, "a")  # may block on w's pending write
            db.commit(w).result()
            assert f.done
            db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_writer_blocked_behind_older_pending_writer(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 1).result()
        f = db.write(t2, "x", 2)
        assert f.pending
        db.commit(t1).result()
        assert f.done
        db.commit(t2).result()
        assert db.store.read_latest_committed("x").value == 2
        assert_one_copy_serializable(db.history)
