"""Tests for Chan et al.'s MV2PL baseline and its CTL costs."""

import pytest

from repro.baselines import MV2PLScheduler
from repro.histories import assert_one_copy_serializable


@pytest.fixture
def db():
    return MV2PLScheduler()


class TestReadWritePath:
    def test_commit_assigns_timestamp_and_appends_ctl(self, db):
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert t.tn == 1
        assert 1 in db.ctl
        assert db.ctl_size() == 2  # {0, 1}

    def test_locking_conflicts_apply(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        r = db.begin()
        f = db.read(r, "x")
        assert f.pending
        db.commit(w).result()
        assert f.result() == 1

    def test_deadlock_resolved(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "y", 2).result()
        db.write(t1, "y", 3)
        f = db.write(t2, "x", 4)
        assert f.failed
        assert db.counters.get("deadlock") == 1
        db.commit(t1).result()
        assert_one_copy_serializable(db.history)


class TestReadOnlyPath:
    def test_ro_copies_ctl_at_begin(self, db):
        for i in range(3):
            t = db.begin()
            db.write(t, f"k{i}", i).result()
            db.commit(t).result()
        ro = db.begin(read_only=True)
        assert ro.meta["ctl_copy"] == {0, 1, 2, 3}
        assert db.counters.get("ctl.copied_entries") == 4

    def test_ro_read_probes_ctl_membership(self, db):
        for i in range(3):
            t = db.begin()
            db.write(t, "x", i).result()
            db.commit(t).result()
        ro = db.begin(read_only=True)
        assert db.read(ro, "x").result() == 2
        assert db.counters.get("ctl.membership_checks") >= 1

    def test_ro_never_blocks_on_writer(self, db):
        w0 = db.begin()
        db.write(w0, "x", 1).result()
        db.commit(w0).result()
        w = db.begin()
        db.write(w, "x", 2).result()  # X lock held, version not installed
        ro = db.begin(read_only=True)
        f = db.read(ro, "x")
        assert f.done
        assert f.result() == 1

    def test_ro_snapshot_stable_under_later_commits(self, db):
        w0 = db.begin()
        db.write(w0, "x", 1).result()
        db.commit(w0).result()
        ro = db.begin(read_only=True)
        w = db.begin()
        db.write(w, "x", 2).result()
        db.commit(w).result()
        assert db.read(ro, "x").result() == 1, "start timestamp bounds the view"
        db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_ctl_grows_without_bound(self, db):
        """The maintenance burden the paper criticizes (EXP-F measures it)."""
        for i in range(50):
            t = db.begin()
            db.write(t, "x", i).result()
            db.commit(t).result()
        assert db.ctl_size() == 51
        ro = db.begin(read_only=True)
        assert len(ro.meta["ctl_copy"]) == 51

    def test_ro_zero_cost_metrics_do_not_apply_here(self, db):
        """Contrast with VC protocols: MV2PL read-only txns DO interact
        with protocol machinery at begin (CTL copy)."""
        ro = db.begin(read_only=True)
        db.read(ro, "x").result()
        db.commit(ro).result()
        assert db.counters.get("cc.ro") == 1  # the CTL copy


class TestSerializability:
    def test_mixed_history_is_1sr(self, db):
        for i in range(5):
            w = db.begin()
            db.write(w, "a", i).result()
            db.write(w, "b", -i).result()
            db.commit(w).result()
            ro = db.begin(read_only=True)
            assert db.read(ro, "a").result() == i
            assert db.read(ro, "b").result() == -i
            db.commit(ro).result()
        assert_one_copy_serializable(db.history)
