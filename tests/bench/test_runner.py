"""Tests for the closed-loop simulation runner and the experiment claims.

The experiment-level assertions here are the paper's qualitative claims as
test invariants: they must hold for every seed, not just the benchmark's.
"""

import pytest

from repro.bench.metrics import RunMetrics
from repro.bench.runner import SimConfig, run_protocols, run_simulation
from repro.protocols.registry import PROTOCOLS, VC_PROTOCOLS, make_scheduler
from repro.workload.mixes import balanced, contended_small, write_heavy_hotspot

FAST = SimConfig(duration=200.0, n_clients=6)


class TestRunnerBasics:
    def test_run_produces_commits_and_checks_history(self):
        m = run_simulation(make_scheduler("vc-2pl"), balanced(seed=1), FAST)
        assert m.commits > 0
        assert m.serializable is True
        assert m.duration > 0
        assert m.throughput > 0

    def test_deterministic_under_seed(self):
        a = run_simulation(make_scheduler("vc-to"), balanced(seed=3), FAST)
        b = run_simulation(make_scheduler("vc-to"), balanced(seed=3), FAST)
        assert (a.commits, a.aborts, a.counters) == (b.commits, b.aborts, b.counters)

    def test_different_seeds_differ(self):
        a = run_simulation(make_scheduler("vc-2pl"), balanced(seed=1), FAST)
        b = run_simulation(make_scheduler("vc-2pl"), balanced(seed=2), FAST)
        assert a.commits != b.commits or a.counters != b.counters

    def test_check_can_be_disabled(self):
        config = SimConfig(duration=100.0, n_clients=4, check_serializability=False)
        m = run_simulation(make_scheduler("vc-occ"), balanced(seed=1), config)
        assert m.serializable is None

    def test_run_protocols_helper(self):
        results = run_protocols(["vc-2pl", "sv-2pl"], balanced(seed=1), FAST)
        assert set(results) == {"vc-2pl", "sv-2pl"}

    def test_gc_runs_when_configured(self):
        config = SimConfig(duration=200.0, n_clients=6, gc_period=20.0)
        m = run_simulation(make_scheduler("vc-2pl"), balanced(seed=1), config)
        assert m.gc_discarded > 0
        assert m.aborts_ro == 0, "GC must never victimize a read-only reader"
        assert m.serializable


class TestMetricsDerivation:
    def test_throughput_and_rates(self):
        m = RunMetrics(duration=100.0, commits_ro=30, commits_rw=20, aborts_rw=5)
        assert m.commits == 50
        assert m.throughput == 0.5
        assert m.abort_rate_rw == 0.2
        assert m.abort_rate_ro == 0.0

    def test_per_commit_normalization(self):
        m = RunMetrics(commits_ro=10, counters={"cc.ro": 40})
        assert m.per_ro_commit("cc.ro") == 4.0
        assert m.per_ro_commit("missing") == 0.0

    def test_zero_division_guards(self):
        m = RunMetrics()
        assert m.throughput == 0.0
        assert m.abort_rate_rw == 0.0
        assert m.per_rw_commit("x") == 0.0


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
class TestEveryProtocolUnderLoad:
    def test_history_always_serializable(self, name):
        m = run_simulation(make_scheduler(name), write_heavy_hotspot(seed=5), FAST)
        assert m.serializable is True, name
        assert m.commits > 0

    def test_contended_workload_serializable(self, name):
        m = run_simulation(make_scheduler(name), contended_small(seed=8), FAST)
        assert m.serializable is True, name


@pytest.mark.parametrize("name", VC_PROTOCOLS)
class TestPaperClaimsAsInvariants:
    """Sections 1, 2, 4.4, 6 — claims that must hold on every run."""

    def test_read_only_has_zero_cc_interactions(self, name):
        m = run_simulation(make_scheduler(name), balanced(seed=11), FAST)
        assert m.counter("cc.ro") == 0
        assert m.counter("syncwrite.ro") == 0

    def test_read_only_exactly_one_vc_call(self, name):
        m = run_simulation(make_scheduler(name), balanced(seed=11), FAST)
        # One VCstart per read-only begin (commits + any retried attempts).
        begins = m.counter("begin.ro")
        assert m.counter("vc.ro") == m.counter("vc.ro.start") == begins

    def test_read_only_never_blocks(self, name):
        m = run_simulation(make_scheduler(name), write_heavy_hotspot(seed=11), FAST)
        assert m.counter("block.ro") == 0

    def test_read_only_never_aborts(self, name):
        m = run_simulation(make_scheduler(name), write_heavy_hotspot(seed=11), FAST)
        assert m.aborts_ro == 0
        assert m.counter("abort.ro") == 0

    def test_read_only_never_causes_rw_aborts(self, name):
        m = run_simulation(make_scheduler(name), write_heavy_hotspot(seed=11), FAST)
        assert m.counter("abort.rw.caused_by_readonly") == 0


class TestBaselineContrast:
    """The same quantities are non-zero for the baselines the paper faults."""

    def test_mvto_read_only_pays_and_aborts_writers(self):
        m = run_simulation(
            make_scheduler("mvto-reed"), write_heavy_hotspot(seed=11), FAST
        )
        assert m.counter("cc.ro") > 0
        assert m.counter("syncwrite.ro") > 0

    def test_sv2pl_read_only_blocks(self):
        m = run_simulation(
            make_scheduler("sv-2pl"), write_heavy_hotspot(seed=11), FAST
        )
        assert m.counter("block.ro") > 0

    def test_svto_read_only_aborts(self):
        m = run_simulation(
            make_scheduler("sv-to"), write_heavy_hotspot(seed=11), FAST
        )
        assert m.counter("abort.ro") > 0
