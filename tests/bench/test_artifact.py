"""Bench artifacts: schema, determinism, and the regression comparator."""

import copy
import json

import pytest

from repro.bench.artifact import (
    SCHEMA,
    SUITES,
    Suite,
    compare,
    load_artifact,
    main,
    run_suite,
    write_artifact,
)

#: Small but non-trivial: one local protocol, one distributed database.
TINY = Suite(
    name="tiny",
    protocols=("vc-2pl", "dvc-2pl"),
    duration=80.0,
    n_clients=4,
    description="test suite",
)

_ENTRY_KEYS = {
    "throughput",
    "commits",
    "commits_ro",
    "commits_rw",
    "aborts",
    "abort_rate_rw",
    "abort_rate_ro",
    "restarts",
    "latency",
    "visibility_lag",
    "critical_path",
    "span_trees",
    "trace_events",
    "wall_clock_s",
}


@pytest.fixture(scope="module")
def artifact():
    return run_suite(TINY, seed=0)


class TestArtifactSchema:
    def test_header(self, artifact):
        assert artifact["schema"] == SCHEMA
        assert artifact["suite"] == "tiny"
        assert artifact["seed"] == 0
        assert set(artifact["protocols"]) == {"vc-2pl", "dvc-2pl"}

    def test_entry_shape(self, artifact):
        for protocol, entry in artifact["protocols"].items():
            assert set(entry) == _ENTRY_KEYS, protocol
            assert entry["commits"] > 0
            assert entry["throughput"] > 0
            for cls in ("ro", "rw"):
                block = entry["latency"][cls]
                assert set(block) == {"count", "mean", "p50", "p95", "p99"}
                assert block["p50"] <= block["p95"] <= block["p99"]

    def test_span_trees_back_every_protocol(self, artifact):
        # The critical-path column is only meaningful if the run actually
        # produced committed span trees — for baselines and distributed
        # databases alike.
        for protocol, entry in artifact["protocols"].items():
            assert entry["span_trees"] > 0, protocol
            shares = entry["critical_path"]
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-3)

    def test_distributed_entry_sees_the_network(self, artifact):
        shares = artifact["protocols"]["dvc-2pl"]["critical_path"]
        assert shares.get("network", 0.0) > 0.0

    def test_artifact_is_json_and_roundtrips(self, artifact, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_artifact(artifact, str(path))
        assert load_artifact(str(path)) == json.loads(path.read_text())

    def test_load_rejects_non_artifact(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_artifact(str(path))

    def test_virtual_time_metrics_deterministic(self, artifact):
        again = run_suite(TINY, seed=0)
        for protocol in TINY.protocols:
            a = dict(artifact["protocols"][protocol])
            b = dict(again["protocols"][protocol])
            a.pop("wall_clock_s")  # the only machine-dependent field
            b.pop("wall_clock_s")
            assert a == b, protocol
        # The slo verdicts are virtual-time too — deterministic wholesale.
        assert artifact["slo"] == again["slo"]

    def test_slo_block_is_top_level_and_comparator_safe(self, artifact):
        slo = artifact["slo"]
        assert set(slo["protocols"]) == set(artifact["protocols"])
        assert slo["ok"] is True
        for protocol, block in slo["protocols"].items():
            assert block["ok"], (protocol, block["breaches"])
            # The VC family's hard promise ran as a hard objective.
            if protocol.startswith(("vc-", "dvc-")):
                assert block["objectives"]["ro_blocking"]["violations"] == 0
        # Comparator safety: protocol entries keep their exact legacy shape
        # (test_entry_shape pins it) and compare() never reads the block.
        stripped = {k: v for k, v in artifact.items() if k != "slo"}
        assert compare(artifact, stripped) == []
        assert compare(stripped, artifact) == []


class TestComparator:
    def test_identical_artifacts_pass(self, artifact):
        assert compare(artifact, artifact) == []

    def test_flags_20_percent_throughput_regression(self, artifact):
        worse = copy.deepcopy(artifact)
        entry = worse["protocols"]["vc-2pl"]
        entry["throughput"] = round(entry["throughput"] * 0.8, 6)
        messages = compare(artifact, worse)
        assert len(messages) == 1
        assert "vc-2pl" in messages[0] and "throughput" in messages[0]

    def test_throughput_within_tolerance_passes(self, artifact):
        slightly = copy.deepcopy(artifact)
        entry = slightly["protocols"]["vc-2pl"]
        entry["throughput"] = round(entry["throughput"] * 0.95, 6)
        assert compare(artifact, slightly) == []

    def test_flags_p99_latency_regression(self, artifact):
        worse = copy.deepcopy(artifact)
        worse["protocols"]["dvc-2pl"]["latency"]["rw"]["p99"] *= 1.5
        messages = compare(artifact, worse)
        assert len(messages) == 1
        assert "dvc-2pl" in messages[0] and "p99" in messages[0]

    def test_missing_protocol_fails(self, artifact):
        partial = copy.deepcopy(artifact)
        del partial["protocols"]["dvc-2pl"]
        messages = compare(artifact, partial)
        assert any("missing" in m for m in messages)

    def test_extra_protocol_is_not_a_failure(self, artifact):
        grown = copy.deepcopy(artifact)
        grown["protocols"]["new-proto"] = grown["protocols"]["vc-2pl"]
        assert compare(artifact, grown) == []

    def test_improvement_passes(self, artifact):
        better = copy.deepcopy(artifact)
        for entry in better["protocols"].values():
            entry["throughput"] *= 1.5
            entry["latency"]["rw"]["p99"] *= 0.5
        assert compare(artifact, better) == []


class TestCli:
    def test_list_names_suites(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SUITES:
            assert name in out

    def test_compare_exit_codes(self, artifact, tmp_path, capsys):
        base = tmp_path / "base.json"
        write_artifact(artifact, str(base))
        worse = copy.deepcopy(artifact)
        worse["protocols"]["vc-2pl"]["throughput"] *= 0.5
        cand = tmp_path / "cand.json"
        write_artifact(worse, str(cand))

        assert main(["--compare", str(base), str(base)]) == 0
        assert main(["--compare", str(base), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_unknown_suite_is_an_error(self, capsys):
        assert main(["--suite", "nope"]) == 2
        assert "nope" in capsys.readouterr().out
