"""Failure injection: random user aborts at every operation boundary.

Every protocol must absorb client abandonment at arbitrary points — locks
released, pending versions destroyed, VC entries discarded — and keep its
history one-copy serializable with all structures draining clean.
"""

import pytest

from repro.bench.runner import SimConfig, run_simulation
from repro.protocols.registry import PROTOCOLS, VC_PROTOCOLS, make_scheduler
from repro.workload.mixes import balanced, write_heavy_hotspot

ABORT_STORM = SimConfig(
    duration=250.0, n_clients=8, user_abort_probability=0.15
)


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_serializable_under_user_abort_storm(name):
    scheduler = make_scheduler(name)
    metrics = run_simulation(scheduler, balanced(seed=21), ABORT_STORM)
    assert metrics.counter("user_abort.injected") > 10, "storm actually fired"
    assert metrics.commits > 0
    assert metrics.serializable is True, name


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_structures_drain_after_abort_storm(name):
    scheduler = make_scheduler(name)
    run_simulation(scheduler, write_heavy_hotspot(seed=22), ABORT_STORM)
    locks = getattr(scheduler, "locks", None)
    if locks is not None:
        assert locks.is_idle(), f"{name}: locks leaked after abort storm"
    vc = getattr(scheduler, "vc", None)
    if vc is not None and hasattr(vc, "lag"):
        assert vc.lag == 0, f"{name}: VCQueue entries leaked"


@pytest.mark.parametrize("name", VC_PROTOCOLS)
def test_vc_guarantees_survive_abort_storm(name):
    scheduler = make_scheduler(name)
    metrics = run_simulation(scheduler, write_heavy_hotspot(seed=23), ABORT_STORM)
    assert metrics.counter("cc.ro") == 0
    assert metrics.counter("block.ro") == 0
    assert metrics.counter("abort.rw.caused_by_readonly") == 0
