"""Tests for table rendering and fast smoke runs of the experiment suite."""

import pytest

from repro.bench.experiments import (
    exp_a_ro_overhead,
    exp_d_visibility_lag,
    exp_j_distributed,
    exp_l_uniformity,
)
from repro.bench.tables import format_value, print_table, render_table


class TestFormatValue:
    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_zero_float(self):
        assert format_value(0.0) == "0"

    def test_small_float_three_decimals(self):
        assert format_value(0.12345) == "0.123"

    def test_medium_float_one_decimal(self):
        assert format_value(42.25) == "42.2"

    def test_large_float_thousands(self):
        assert format_value(12345.6) == "12,346"

    def test_strings_and_ints_verbatim(self):
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["name", "n"], [["a", 1], ["bbbb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "-+-" in lines[2]
        assert len({len(line) for line in lines[1:]}) == 1, "all rows same width"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_print_table_returns_text(self, capsys):
        text = print_table(["x"], [[1]])
        out = capsys.readouterr().out
        assert text in out


class TestExperimentSmoke:
    """Short-duration sanity runs of representative experiments."""

    def test_exp_a_summary_keys(self):
        result = exp_a_ro_overhead(duration=60.0)
        assert result.exp_id == "EXP-A"
        assert result.summary["vc-2pl.cc_per_ro"] == 0
        assert len(result.rows) == 8

    def test_exp_d_rows(self):
        result = exp_d_visibility_lag(duration=80.0)
        assert [row[0] for row in result.rows] == [
            "short(2-4)",
            "medium(6-10)",
            "long(14-20)",
        ]

    def test_exp_j_small(self):
        result = exp_j_distributed(rounds=6)
        assert result.summary["dvc-2pl.torn"] == 0
        assert result.summary["dmv2pl.torn"] > 0

    def test_exp_l_uniform_ro_profile(self):
        result = exp_l_uniformity(duration=60.0)
        for name in ("vc-2pl", "vc-to", "vc-occ"):
            assert result.summary[f"{name}.cc_ro"] == 0
            assert result.summary[f"{name}.serializable"] is True
