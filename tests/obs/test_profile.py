"""Critical-path profiling: the backward walk and its phase attribution."""

import pytest

from repro.obs.profile import (
    aggregate_phase_shares,
    critical_path,
    phase_of,
    phase_shares,
    profile_wallclock,
    render_critical_path,
    site_shares,
)
from repro.obs.spans import SpanNode

_IDS = iter(range(1, 10_000))


def node(name, start, end, parent=None, **fields):
    span = SpanNode(
        next(_IDS),
        parent.trace_id if parent is not None else 1,
        parent.span_id if parent is not None else None,
        name,
        start,
        dict(fields),
    )
    span.end = end
    span.ok = True
    if parent is not None:
        parent.children.append(span)
    return span


def assert_tiles(path):
    """Segments must tile the root's duration gap-free and in order."""
    assert path.segments[0].start == path.root.start
    assert path.segments[-1].end == path.root.end
    for left, right in zip(path.segments, path.segments[1:]):
        assert left.end == right.start
    assert sum(s.duration for s in path.segments) == pytest.approx(path.total)


class TestCriticalPath:
    def test_childless_span_is_its_own_path(self):
        root = node("txn", 0.0, 10.0)
        path = critical_path(root)
        assert path.span_names() == ["txn"]
        assert_tiles(path)

    def test_backward_chain_of_waits(self):
        root = node("txn", 0.0, 10.0)
        node("msg", 0.0, 1.0, root)
        node("msg", 2.0, 8.0, root)
        path = critical_path(root)
        # Backward from 10: root's own tail, the last-finishing msg, a gap
        # of root's own time, then the earlier msg that covered the head.
        assert path.span_names() == ["msg", "txn", "msg", "txn"]
        assert_tiles(path)
        assert [s.duration for s in path.segments] == [1.0, 1.0, 6.0, 2.0]

    def test_nested_descent(self):
        root = node("txn", 0.0, 10.0)
        commit = node("commit", 4.0, 10.0, root)
        node("msg", 4.0, 9.0, commit)
        path = critical_path(root)
        assert path.span_names() == ["txn", "msg", "commit"]
        assert_tiles(path)

    def test_child_running_past_parent_is_clamped(self):
        root = node("txn", 0.0, 10.0)
        node("msg", 6.0, 15.0, root)  # still in flight at commit
        path = critical_path(root)
        assert path.span_names() == ["txn", "msg"]
        assert path.segments[-1].end == 10.0
        assert_tiles(path)

    def test_unfinished_child_contributes_nothing(self):
        root = node("txn", 0.0, 10.0)
        dangling = node("msg", 2.0, None, root)
        dangling.ok = None
        path = critical_path(root)
        assert path.span_names() == ["txn"]
        assert_tiles(path)

    def test_instantaneous_child_kept_at_frontier(self):
        # A 2PC leg applied on message arrival takes zero virtual time but
        # names the causal step — it must appear as a zero-length segment.
        root = node("txn", 0.0, 10.0)
        msg = node("msg", 5.0, 10.0, root)
        node("2pc.commit", 10.0, 10.0, msg, site=1)
        names = critical_path(root).span_names()
        assert "2pc.commit" in names

    def test_instantaneous_child_off_frontier_skipped(self):
        root = node("txn", 0.0, 10.0)
        node("2pc.commit", 4.0, 4.0, root)  # frontier is 10, not 4
        node("msg", 0.0, 10.0, root)
        assert "2pc.commit" not in critical_path(root).span_names()

    def test_same_instant_steps_in_causal_order(self):
        # prepare and commit both applied at t=10: emission order (span id)
        # must order the path, prepare before commit.
        root = node("txn", 0.0, 10.0)
        node("2pc.prepare", 10.0, 10.0, root, site=1)
        node("2pc.commit", 10.0, 10.0, root, site=1)
        names = critical_path(root).span_names()
        assert names.index("2pc.prepare") < names.index("2pc.commit")

    def test_unfinished_root_yields_empty_path(self):
        root = node("txn", 0.0, None)
        assert critical_path(root).segments == []


class TestPhases:
    def test_phase_of_exact_then_prefix_then_other(self):
        assert phase_of("2pc.prepare") == "prepare"
        assert phase_of("msg") == "network"
        assert phase_of("wal.force") == "wal"  # dotted-prefix fallback
        assert phase_of("mystery.thing") == "other"

    def test_phase_shares_sum_to_one(self):
        root = node("txn", 0.0, 10.0)
        node("msg", 2.0, 8.0, root)
        shares = phase_shares(root)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["network"] == pytest.approx(0.6)
        assert shares["execute"] == pytest.approx(0.4)

    def test_site_shares_label_local_and_remote(self):
        root = node("txn", 0.0, 10.0)
        node("2pc.prepare", 4.0, 10.0, root, site=2)
        shares = site_shares(root)
        assert shares == {"local": pytest.approx(0.4), "s2": pytest.approx(0.6)}

    def test_aggregate_weighted_by_duration(self):
        fast = node("txn", 0.0, 10.0)  # 10 units, all execute
        slow = node("txn", 0.0, 30.0)
        node("msg", 0.0, 30.0, slow)  # 30 units, all network
        shares = aggregate_phase_shares([fast, slow])
        assert shares["execute"] == pytest.approx(0.25)
        assert shares["network"] == pytest.approx(0.75)

    def test_aggregate_of_nothing_is_empty(self):
        assert aggregate_phase_shares([]) == {}

    def test_render_critical_path_smoke(self):
        root = node("txn", 0.0, 10.0, txn=9)
        node("msg", 2.0, 8.0, root, channel="2pc")
        text = render_critical_path(root)
        assert "T9" in text and "msg[2pc]" in text and "phases:" in text


class TestWallclockProfile:
    def test_runs_function_and_ranks_by_cumtime(self):
        result, rows = profile_wallclock(sum, [1, 2, 3])
        assert result == 6
        assert rows
        assert set(rows[0]) == {"function", "calls", "tottime", "cumtime"}
        cums = [row["cumtime"] for row in rows]
        assert cums == sorted(cums, reverse=True)
