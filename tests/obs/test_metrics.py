"""MetricsRegistry: counters, gauges, HDR-style histograms."""

import random

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("commit.rw").inc()
        registry.counter("commit.rw").inc(4)
        assert registry.counter_value("commit.rw") == 5
        assert registry.counter_value("never.touched") == 0
        assert registry.counters_dict() == {"commit.rw": 5}

    def test_gauge_watermarks(self):
        gauge = MetricsRegistry().gauge("vc.lag")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.maximum == 7
        assert gauge.minimum == 2

    def test_gauge_first_set_initializes_both_watermarks(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(-5)
        assert gauge.maximum == -5 and gauge.minimum == -5


class TestHistogram:
    def test_exact_on_small_values(self):
        hist = Histogram("h")
        for v in [0.1, 0.2, 0.5]:
            hist.record(v)
        assert hist.count == 3
        assert hist.minimum == pytest.approx(0.1)
        assert hist.quantile(0.5) <= 1.0  # underflow bucket upper bound

    def test_quantile_relative_error_bounded(self):
        rng = random.Random(7)
        hist = Histogram("lat", sub_buckets=32)
        samples = [rng.expovariate(1 / 50.0) for _ in range(5000)]
        for v in samples:
            hist.record(v)
        samples.sort()
        for q in (0.5, 0.95, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            approx = hist.quantile(q)
            # log-linear buckets: upper bound within ~2/sub_buckets of exact
            assert approx >= exact * 0.95
            assert approx <= exact * 1.15

    def test_mean_total_max(self):
        hist = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.mean == pytest.approx(2.0)
        assert hist.total == pytest.approx(6.0)
        assert hist.maximum == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("h").record(-1.0)

    def test_empty_quantile_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_p50_never_exceeds_max(self):
        hist = Histogram("h")
        hist.record(1000.0)
        assert hist.p50 == 1000.0

    def test_empty_histogram_everywhere_zero(self):
        hist = Histogram("h")
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 0.0
        assert hist.mean == 0.0
        assert (hist.p50, hist.p95, hist.p99) == (0.0, 0.0, 0.0)

    def test_single_sample_all_quantiles_equal_it(self):
        hist = Histogram("h")
        hist.record(42.0)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_single_zero_sample(self):
        hist = Histogram("h")
        hist.record(0.0)
        assert hist.count == 1
        assert hist.p99 == 0.0  # clamped to the maximum, not the bucket bound

    def test_saturating_counts_in_one_bucket(self):
        # Every sample lands in the same bucket: the cumulative-rank scan
        # crosses on the first bucket for every q, and the answer stays the
        # recorded value no matter how large the count grows.
        hist = Histogram("h")
        for _ in range(50_000):
            hist.record(5.0)
        assert hist.count == 50_000
        for q in (0.01, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 5.0
        assert hist.mean == pytest.approx(5.0)

    def test_quantile_rejects_out_of_range_q(self):
        hist = Histogram("h")
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)


class TestSnapshot:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(4.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"]["g"]["value"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert set(snap["histograms"]["h"]) >= {"mean", "p50", "p95", "p99"}

    def test_iter_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert {i.name for i in registry.iter_instruments()} == {"a", "b", "c"}
