"""The online serializability witness: topology, engine, sealing, parity.

Four layers of evidence that the streaming certifier is the offline
checker's equal (see ``docs/witness.md``):

* unit tests of the Pearce–Kelly incremental topology, including the
  ordering invariant and both removal operations (sealing / rebase);
* synthetic ``history.*`` streams exercising the edge rules, the
  committed projection, pending-read resolution, and the tripwires;
* parity between :class:`WitnessEngine` and
  :func:`~repro.histories.checker.check_one_copy_serializable` on real
  protocol runs and on hypothesis-randomized histories;
* the sealing bound: peak tracked state depends on the live-transaction
  window, not run length.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histories import History, check_one_copy_serializable
from repro.histories.recorder import RO_ID_OFFSET
from repro.obs.witness import IncrementalTopology, WitnessEngine, witness_history


# -- incremental topology ----------------------------------------------------------


class TestIncrementalTopology:
    def test_edges_respecting_order_are_cheap_noops(self):
        topo = IncrementalTopology()
        assert topo.add_edge(1, 2) is None
        assert topo.add_edge(2, 3) is None
        assert topo.order() == [1, 2, 3]
        assert topo.check()

    def test_order_violating_insert_renumbers_locally(self):
        topo = IncrementalTopology()
        for node in (1, 2, 3, 4):
            topo.add_node(node)
        # Insertion order gave 1 < 2 < 3 < 4; edge 4 -> 1 must flip it.
        assert topo.add_edge(4, 1) is None
        order = topo.order()
        assert order.index(4) < order.index(1)
        assert topo.check()

    def test_cycle_refused_and_returned_as_node_list(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(2, 3)
        cycle = topo.add_edge(3, 1)
        assert cycle is not None
        assert cycle[0] == cycle[-1] == 3
        assert set(cycle) == {1, 2, 3}
        # Refused: the structure stays acyclic and the edge is absent.
        assert not topo.has_edge(3, 1)
        assert topo.check()

    def test_consecutive_cycle_nodes_are_real_edges(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(2, 3)
        topo.add_edge(2, 4)
        topo.add_edge(4, 5)
        cycle = topo.add_edge(5, 1)
        assert cycle[0] == cycle[-1] == 5
        for u, v in zip(cycle[1:-1], cycle[2:]):
            assert topo.has_edge(u, v)

    def test_self_loop_is_a_cycle(self):
        topo = IncrementalTopology()
        assert topo.add_edge(7, 7) == [7, 7]

    def test_duplicate_edges_counted_once(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(1, 2)
        assert topo.edges == 1 and topo.edges_added == 1

    def test_remove_source_refuses_non_sources(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        with pytest.raises(ValueError, match="predecessors"):
            topo.remove_source(2)

    def test_remove_source_unlinks_outgoing(self):
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(1, 3)
        topo.remove_source(1)
        assert 1 not in topo
        assert topo.indegree(2) == 0 and topo.indegree(3) == 0
        assert topo.edges == 0
        assert topo.check()

    def test_remove_node_unlinks_both_directions(self):
        # The rebase operation: unlike sealing, incoming edges go too.
        topo = IncrementalTopology()
        topo.add_edge(1, 2)
        topo.add_edge(2, 3)
        topo.remove_node(2)
        assert 2 not in topo
        assert topo.successors(1) == set() and topo.predecessors(3) == set()
        assert topo.edges == 0
        assert topo.check()

    def test_randomized_inserts_keep_invariant(self):
        import random

        rng = random.Random(0)
        topo = IncrementalTopology()
        refused = 0
        for _ in range(400):
            u, v = rng.randrange(30), rng.randrange(30)
            if topo.add_edge(u, v) is not None:
                refused += 1
            assert topo.check()
        assert refused > 0  # dense random graphs do close cycles


# -- synthetic event streams -------------------------------------------------------


def feed(engine, *events):
    ts = engine._last_ts  # stay monotone across calls (no seam rollover)
    for name, fields in events:
        ts += 1.0
        engine._process(name, ts, fields)
    return engine


def commit_rw(engine, txn, tn, *, reads=(), writes=()):
    """One full committed read-write transaction through the live surface."""
    events = [("history.begin", {"txn": txn, "cls": "rw"})]
    events += [
        ("history.read", {"txn": txn, "key": k, "version": v}) for k, v in reads
    ]
    events += [("history.write", {"txn": txn, "key": k}) for k in writes]
    events.append(
        ("history.commit", {"txn": txn, "ident": tn, "tn": tn, "cls": "rw"})
    )
    feed(engine, *events)


class TestWitnessSyntheticStreams:
    def test_serial_writers_certify(self):
        engine = WitnessEngine(seal=False)
        commit_rw(engine, 1, 1, writes=["x"])
        commit_rw(engine, 2, 2, reads=[("x", 1)], writes=["x"])
        engine.finish()
        assert engine.ok and engine.serializable
        assert engine.committed == 2

    def test_write_skew_cycle_reported_at_closing_edge(self):
        # T1 reads x_0 writes y; T2 reads y_0 writes x — the classic MVSG
        # cycle; the second commit closes it.
        engine = WitnessEngine(seal=False)
        feed(
            engine,
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            ("history.read", {"txn": 1, "key": "x", "version": 0}),
            ("history.read", {"txn": 2, "key": "y", "version": 0}),
            ("history.write", {"txn": 1, "key": "y"}),
            ("history.write", {"txn": 2, "key": "x"}),
            ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}),
            ("history.commit", {"txn": 2, "ident": 2, "tn": 2, "cls": "rw"}),
        )
        engine.finish()
        assert not engine.serializable
        assert engine.violation_count == 1
        violation = engine.violations[0]
        assert violation["cycle"][0] == violation["cycle"][-1]
        assert set(violation["cycle"]) == {1, 2}
        assert violation["edge_kind"] in ("rw", "ww")
        # The report carries the violation verbatim.
        report = engine.report()
        assert report["ok"] is False and report["violation_count"] == 1

    def test_aborted_transactions_leave_the_projection(self):
        # Same write skew, but T2 aborts: committed projection is clean.
        engine = WitnessEngine(seal=False)
        feed(
            engine,
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            ("history.read", {"txn": 1, "key": "x", "version": 0}),
            ("history.read", {"txn": 2, "key": "y", "version": 0}),
            ("history.write", {"txn": 1, "key": "y"}),
            ("history.write", {"txn": 2, "key": "x"}),
            ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}),
            ("history.abort", {"txn": 2, "ident": -1, "tn": None, "cls": "rw"}),
        )
        engine.finish()
        assert engine.ok
        assert engine.committed == 1 and engine.aborted == 1

    def test_read_from_uncommitted_writer_is_pending_until_its_commit(self):
        engine = WitnessEngine(seal=False)
        feed(
            engine,
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.write", {"txn": 1, "key": "x"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            # T2 reads version 1 before T1 (tn=1) commits.
            ("history.read", {"txn": 2, "key": "x", "version": 1}),
            ("history.commit", {"txn": 2, "ident": 2, "tn": 2, "cls": "rw"}),
        )
        report = engine.report()
        assert report["pending_unresolved"] == 1
        feed(engine, ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}))
        engine.finish()
        assert engine.ok
        assert engine.report()["pending_unresolved"] == 0

    def test_pending_read_dropped_when_writer_aborts(self):
        # The projection drops reads from never-committed writers.
        engine = WitnessEngine(seal=False)
        feed(
            engine,
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.write", {"txn": 1, "key": "x"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            ("history.read", {"txn": 2, "key": "x", "version": 1}),
            ("history.commit", {"txn": 2, "ident": 2, "tn": 2, "cls": "rw"}),
            ("history.abort", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}),
        )
        engine.finish()
        assert engine.ok
        assert engine.pending_dropped == 1

    def test_duplicate_commit_is_idempotent(self):
        engine = WitnessEngine(seal=False)
        commit_rw(engine, 1, 1, writes=["x"])
        feed(engine, ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}))
        engine.finish()
        assert engine.duplicate_commits == 1
        assert engine.committed == 1

    def test_read_only_snapshot_reader(self):
        engine = WitnessEngine(seal=False)
        commit_rw(engine, 1, 1, writes=["x"])
        commit_rw(engine, 2, 2, writes=["x"])
        ro = RO_ID_OFFSET + 3
        feed(
            engine,
            ("history.begin", {"txn": 3, "cls": "ro"}),
            # Snapshot read of the superseded version: legal, serializes
            # before tn=2 (an rw anti-dependency edge).
            ("history.read", {"txn": 3, "key": "x", "version": 1}),
            ("history.commit", {"txn": 3, "ident": ro, "tn": None, "cls": "ro"}),
        )
        engine.finish()
        assert engine.ok


class TestGateViolations:
    def test_empty_when_certified(self):
        engine = WitnessEngine()
        commit_rw(engine, 1, 1, writes=["x"])
        engine.finish()
        assert engine.gate_violations() == []

    def test_cycle_becomes_campaign_violation_string(self):
        engine = WitnessEngine(seal=False)
        feed(
            engine,
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            ("history.read", {"txn": 1, "key": "x", "version": 0}),
            ("history.read", {"txn": 2, "key": "y", "version": 0}),
            ("history.write", {"txn": 1, "key": "y"}),
            ("history.write", {"txn": 2, "key": "x"}),
            ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}),
            ("history.commit", {"txn": 2, "ident": 2, "tn": 2, "cls": "rw"}),
        )
        engine.finish()
        violations = engine.gate_violations()
        assert len(violations) == 1
        assert "MVSG cycle" in violations[0] and "->" in violations[0]


# -- sealing -----------------------------------------------------------------------


def watermarked_writer_stream(engine, n, *, keys=4):
    """n sequential committed writers with the watermark chasing them."""
    ts = 0.0
    for tn in range(1, n + 1):
        ts += 1.0
        engine._process("history.begin", ts, {"txn": tn, "cls": "rw"})
        engine._process(
            "history.read", ts, {"txn": tn, "key": f"k{tn % keys}", "version": max(0, tn - keys)}
        )
        engine._process("history.write", ts, {"txn": tn, "key": f"k{tn % keys}"})
        engine._process(
            "history.commit", ts, {"txn": tn, "ident": tn, "tn": tn, "cls": "rw"}
        )
        engine._process("vc.advance", ts, {"number": tn, "tnc": tn + 1, "vtnc": tn})


class TestSealing:
    def test_peak_tracked_independent_of_run_length(self):
        short = WitnessEngine(seal=True)
        watermarked_writer_stream(short, 100)
        short.finish()
        long = WitnessEngine(seal=True)
        watermarked_writer_stream(long, 1000)
        long.finish()
        assert short.ok and long.ok
        assert long.committed == 10 * short.committed
        # The bound: 10x the events, identical footprint.
        assert long.peak_tracked == short.peak_tracked
        assert long.peak_tracked < 20

    def test_sealed_run_verdict_matches_exact_mode(self):
        exact = WitnessEngine(seal=False)
        watermarked_writer_stream(exact, 300)
        exact.finish()
        sealed = WitnessEngine(seal=True)
        watermarked_writer_stream(sealed, 300)
        sealed.finish()
        assert sealed.serializable == exact.serializable
        assert sealed.late_sealed_reads == 0
        assert sealed.sealed > 0
        assert exact.sealed == 0  # exact mode never folds

    def test_late_read_below_pruned_frontier_taints_verdict(self):
        # Adversarial stream: advance the watermark far past version 1,
        # then read it after the frontier pruned it.  Impossible for the
        # protocols here; the tripwire must refuse to certify.
        engine = WitnessEngine(seal=True)
        watermarked_writer_stream(engine, 50, keys=1)
        ro = RO_ID_OFFSET + 99
        engine._process("history.begin", 1000.0, {"txn": 99, "cls": "ro"})
        engine._process("history.read", 1001.0, {"txn": 99, "key": "k0", "version": 1})
        engine._process(
            "history.commit", 1002.0,
            {"txn": 99, "ident": ro, "tn": None, "cls": "ro"},
        )
        engine.finish()
        assert engine.late_sealed_reads > 0
        assert not engine.ok  # serializable may hold; certification must not
        assert any("sealed frontier" in v for v in engine.gate_violations())

    def test_live_reader_blocks_sealing_of_its_version(self):
        engine = WitnessEngine(seal=True)
        # A reader holds version 1 of k0 open across the whole stream.
        engine._process("history.begin", 0.5, {"txn": 999, "cls": "ro"})
        watermarked_writer_stream(engine, 60, keys=1)
        engine._process("history.read", 100.0, {"txn": 999, "key": "k0", "version": 1})
        ro = RO_ID_OFFSET + 999
        engine._process(
            "history.commit", 101.0, {"txn": 999, "ident": ro, "tn": None, "cls": "ro"}
        )
        engine.finish()
        assert engine.ok
        assert engine.late_sealed_reads == 0


class TestFailoverRebase:
    def _pre_failover(self, engine):
        watermarked_writer_stream(engine, 3)
        # Replicas acked through tn=3; the deposed primary then commits
        # 4 and 5 which never ship.
        engine._process(
            "replica.watermark", engine._last_ts + 1, {"replica": "r1", "vtnc": 3}
        )
        commit_rw(engine, 4, 4, writes=["k0"])
        commit_rw(engine, 5, 5, writes=["k1"])

    def test_lost_suffix_dropped_and_counters_clamped(self):
        engine = WitnessEngine(seal=True)
        self._pre_failover(engine)
        engine._process(
            "replica.promote", engine._last_ts + 1, {"replica": "r1", "vtnc": 3}
        )
        assert engine.rebases == 1
        assert engine.lost_commits == 2
        # The new primary re-issues tns 4 and 5: no identity collision,
        # no phantom cycle.
        commit_rw(engine, 104, 4, reads=[("k0", 3)], writes=["k0"])
        commit_rw(engine, 105, 5, reads=[("k0", 4)], writes=["k1"])
        engine.finish()
        assert engine.ok

    def test_without_rebase_reissued_tns_would_collide(self):
        # The control experiment: the same stream minus the promote event
        # trips duplicate-commit suppression on the re-issued tn.
        engine = WitnessEngine(seal=True)
        self._pre_failover(engine)
        commit_rw(engine, 104, 4, reads=[("k0", 3)], writes=["k0"])
        engine.finish()
        assert engine.duplicate_commits == 1


class TestTraceSeams:
    """A timestamp regression mid-stream means an independent run follows
    (a campaign trace concatenates every drill into one JSONL file) — the
    finished segment folds away and re-issued tns must not alias it."""

    def test_timestamp_regression_starts_a_new_segment(self):
        engine = WitnessEngine(seal=True)
        watermarked_writer_stream(engine, 40)
        # Second drill, same tns, simulator restarted at ts 0.
        watermarked_writer_stream(engine, 40)
        engine.finish()
        assert engine.segments == 2
        assert engine.committed == 80
        assert engine.duplicate_commits == 0
        assert engine.late_sealed_reads == 0
        assert engine.ok
        assert engine.report()["segments"] == 2

    def test_cycle_in_any_segment_fails_the_whole_verdict(self):
        engine = WitnessEngine(seal=True)
        watermarked_writer_stream(engine, 10)
        skew = [
            ("history.begin", {"txn": 1, "cls": "rw"}),
            ("history.begin", {"txn": 2, "cls": "rw"}),
            ("history.read", {"txn": 1, "key": "x", "version": 0}),
            ("history.read", {"txn": 2, "key": "y", "version": 0}),
            ("history.write", {"txn": 1, "key": "y"}),
            ("history.write", {"txn": 2, "key": "x"}),
            ("history.commit", {"txn": 1, "ident": 1, "tn": 1, "cls": "rw"}),
            ("history.commit", {"txn": 2, "ident": 2, "tn": 2, "cls": "rw"}),
        ]
        for ts, (name, fields) in enumerate(skew, start=1):
            engine._process(name, float(ts), fields)
        engine.finish()
        assert engine.segments == 2
        assert not engine.serializable and not engine.ok
        assert engine.violation_count == 1

    def test_rollover_accounts_the_survivors(self):
        # Exact mode keeps every node live; the seam must fold them all
        # (graph restarts empty) while cumulative counters keep counting.
        engine = WitnessEngine(seal=False)
        watermarked_writer_stream(engine, 20)
        live_edges_before = engine._topo.edges_added
        assert len(engine._nodes) == 20
        watermarked_writer_stream(engine, 20)
        engine.finish()
        assert len(engine._nodes) == 20  # second run only
        assert engine.sealed >= 20  # first run folded at the seam
        assert engine.folded_edges >= live_edges_before
        assert engine.committed == 40


# -- parity with the offline checker ----------------------------------------------


PARITY_PROTOCOLS = ("vc-2pl", "vc-to", "mv2pl-chan", "sv-2pl")


def run_protocol(protocol, seed=0, duration=150.0):
    from repro.bench.runner import SimConfig, run_simulation
    from repro.obs.pipeline import ObsPipeline
    from repro.protocols.registry import make_scheduler
    from repro.sim.engine import Simulator
    from repro.workload.mixes import balanced

    sim = Simulator()
    db = make_scheduler(protocol)
    certifier = WitnessEngine(seal=True)
    pipeline = ObsPipeline(sim=sim, witness=certifier)
    run_simulation(
        db, balanced(seed=seed), SimConfig(duration=duration),
        tracer=pipeline.tracer, sim=sim,
    )
    pipeline.close()
    return db, certifier


class TestProtocolParity:
    @pytest.mark.parametrize("protocol", PARITY_PROTOCOLS)
    def test_live_sealed_verdict_matches_offline_checker(self, protocol):
        db, certifier = run_protocol(protocol)
        offline = check_one_copy_serializable(db.history)
        assert certifier.serializable == offline.serializable
        assert certifier.late_sealed_reads == 0
        assert certifier.ok == offline.serializable
        assert certifier.committed > 0

    def test_sealing_engages_on_vc_protocols(self):
        _db, certifier = run_protocol("vc-2pl")
        assert certifier.sealed > 0
        assert certifier.peak_tracked < certifier.committed

    def test_offline_bridge_matches_checker_exactly(self):
        db, _ = run_protocol("vc-to", seed=1)
        offline = check_one_copy_serializable(db.history)
        bridged = witness_history(db.history, seal=False)
        assert bridged.serializable == offline.serializable


# -- randomized histories ----------------------------------------------------------


@st.composite
def small_mv_history(draw):
    """Random plausible MV histories: <= 6 txns, 3 keys, optional aborts.

    Mirrors the checker's own property test but adds aborted transactions
    (whose writes earlier transactions may *not* read — the generator only
    offers committed-so-far versions, like a real store) so the witness's
    committed-projection handling is exercised too.
    """
    n = draw(st.integers(min_value=1, max_value=6))
    keys = ["x", "y", "z"]
    written = {key: [0] for key in keys}
    ops = []
    for txn in range(1, n + 1):
        aborts = draw(st.booleans()) and draw(st.booleans())  # ~25%
        wrote = []
        for key in keys:
            action = draw(st.sampled_from(["skip", "read", "write", "rw"]))
            if action in ("read", "rw"):
                version = draw(st.sampled_from(written[key]))
                ops.append(f"r{txn}[{key}_{version}]")
            if action in ("write", "rw"):
                ops.append(f"w{txn}[{key}_{txn}]")
                wrote.append(key)
        if aborts:
            ops.append(f"a{txn}")
        else:
            ops.append(f"c{txn}")
            for key in wrote:
                written[key].append(txn)
    return History.parse(" ".join(ops))


@settings(max_examples=200, deadline=None)
@given(history=small_mv_history())
def test_property_witness_matches_offline_checker(history):
    """Exact-mode witness == offline checker on every randomized history."""
    offline = check_one_copy_serializable(history)
    engine = witness_history(history, seal=False)
    assert engine.serializable == offline.serializable, (
        f"witness disagrees with checker on: {history}"
    )


@settings(max_examples=200, deadline=None)
@given(history=small_mv_history())
def test_property_sealing_matches_or_declares_taint(history):
    """Sealed mode either reproduces the exact verdict or raises the
    tripwire — it may never silently certify a non-1SR history."""
    offline = check_one_copy_serializable(history)
    engine = witness_history(history, seal=True)
    if engine.late_sealed_reads == 0:
        assert engine.serializable == offline.serializable
    else:
        assert not engine.ok  # tainted: refuses to certify


# -- report surface ----------------------------------------------------------------


class TestReport:
    def test_report_shape_and_determinism(self):
        import json

        def build():
            engine = WitnessEngine(seal=True)
            watermarked_writer_stream(engine, 40)
            engine.finish()
            return engine.report()

        first, second = build(), build()
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert first["schema"] == "repro.witness/1"
        for key in ("ok", "serializable", "violations", "peak_tracked",
                    "sealed", "late_sealed_reads", "rebases", "events"):
            assert key in first

    def test_render_mentions_verdict(self):
        engine = WitnessEngine()
        commit_rw(engine, 1, 1, writes=["x"])
        engine.finish()
        assert "1SR certified" in engine.render()
