"""Causal spans: runtime, envelope propagation, tree reconstruction.

Covers the span layer on its own (start/end events, ambient parenting,
explicit activation), the courier envelope (context sealed at dispatch,
surviving FaultyCourier retransmissions and duplicates), and the
reconstruction of span trees from flat event streams — including the
synthetic ``lock.wait`` spans and orphan promotion.
"""

from repro.bench.runner import SimConfig, run_simulation
from repro.faults.courier import FaultyCourier, RetryPolicy
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.obs.exporters import RingBufferExporter
from repro.obs.spans import (
    NULL_SPAN,
    activate,
    bind_envelope,
    build_span_trees,
    render_tree,
    start_span,
    transaction_trees,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.protocols.registry import make_scheduler
from repro.sim.engine import Simulator
from repro.workload.mixes import balanced


def traced(capacity: int = 4096):
    ring = RingBufferExporter(capacity=capacity)
    return Tracer(exporters=[ring]), ring


def dicts(ring):
    return [event.to_dict() for event in ring.events()]


class TestSpanRuntime:
    def test_disabled_tracer_returns_shared_null_span(self):
        assert start_span(NULL_TRACER, "txn") is NULL_SPAN
        # NULL_SPAN is inert: end and context-manager use are no-ops.
        with start_span(NULL_TRACER, "txn") as span:
            span.end()
        assert NULL_TRACER.active_span is None

    def test_start_end_event_pair(self):
        tracer, ring = traced()
        span = start_span(tracer, "txn", txn=7)
        span.end(ok=True)
        start, end = dicts(ring)
        assert start["name"] == "span.start" and end["name"] == "span.end"
        assert start["op"] == "txn" and start["txn"] == 7
        assert start["parent"] is None
        assert end["span"] == start["span"]
        assert end["trace"] == start["trace"]
        assert end["ok"] is True

    def test_end_is_idempotent(self):
        tracer, ring = traced()
        span = start_span(tracer, "txn")
        span.end()
        span.end(ok=False)
        ends = [e for e in dicts(ring) if e["name"] == "span.end"]
        assert len(ends) == 1 and ends[0]["ok"] is True

    def test_context_manager_activates_and_parents(self):
        tracer, ring = traced()
        with start_span(tracer, "txn") as outer:
            assert tracer.active_span is outer.context
            start_span(tracer, "commit").end()
        assert tracer.active_span is None
        starts = [e for e in dicts(ring) if e["name"] == "span.start"]
        assert starts[1]["parent"] == starts[0]["span"]
        assert starts[1]["trace"] == starts[0]["trace"]

    def test_parent_none_forces_fresh_trace(self):
        tracer, _ = traced()
        with start_span(tracer, "txn") as ambient:
            root = start_span(tracer, "txn", parent=None)
        assert root.parent_id is None
        assert root.context.trace_id != ambient.context.trace_id

    def test_flat_emit_stamped_with_active_span(self):
        tracer, ring = traced()
        with start_span(tracer, "txn") as span:
            tracer.emit("wal.force", site=1)
        event = [e for e in dicts(ring) if e["name"] == "wal.force"][0]
        assert event["span"] == span.context.span_id
        assert event["trace"] == span.context.trace_id

    def test_activate_restores_previous_context(self):
        tracer, _ = traced()
        a = start_span(tracer, "txn")
        b = start_span(tracer, "txn", parent=None)
        with activate(tracer, a.context):
            assert tracer.active_span is a.context
            with activate(tracer, b.context):
                assert tracer.active_span is b.context
            assert tracer.active_span is a.context
        assert tracer.active_span is None

    def test_activate_none_context_is_noop(self):
        tracer, _ = traced()
        with activate(tracer, None):
            assert tracer.active_span is None


class TestEnvelope:
    def test_first_delivery_ends_msg_span_and_carries_context(self):
        tracer, ring = traced()
        seen = []
        with start_span(tracer, "txn") as root:
            deliver = bind_envelope(
                tracer, lambda: seen.append(tracer.active_span), "2pc"
            )
        deliver()
        events = dicts(ring)
        msg = [e for e in events if e.get("op") == "msg"][0]
        assert msg["parent"] == root.context.span_id
        assert msg["channel"] == "2pc"
        assert seen[0].span_id == msg["span"]
        ends = [
            e
            for e in events
            if e["name"] == "span.end" and e["span"] == msg["span"]
        ]
        assert len(ends) == 1

    def test_duplicate_delivery_same_context_emits_redelivery(self):
        tracer, ring = traced()
        seen = []
        with start_span(tracer, "txn"):
            deliver = bind_envelope(
                tracer, lambda: seen.append(tracer.active_span), "2pc"
            )
        deliver()
        deliver()
        assert len(seen) == 2
        assert seen[0].span_id == seen[1].span_id
        redeliveries = [
            e for e in dicts(ring) if e["name"] == "courier.redelivery"
        ]
        assert len(redeliveries) == 1
        assert redeliveries[0]["span"] == seen[0].span_id
        assert redeliveries[0]["n"] == 2


class TestFaultyCourierContext:
    """Span contexts sealed at dispatch survive every fault-layer delivery."""

    def _setup(self, spec, sim=None, retry=None):
        ring = RingBufferExporter(capacity=4096)
        clock = (lambda: sim.now) if sim is not None else None
        tracer = Tracer(exporters=[ring], clock=clock)
        courier = FaultyCourier(
            schedule=FaultSchedule(spec=spec), retry=retry, sim=sim
        )
        courier.tracer = tracer
        return tracer, ring, courier

    def test_duplicate_delivery_keeps_context(self):
        tracer, ring, courier = self._setup(FaultSpec(duplicate=1.0))
        contexts = []
        with start_span(tracer, "txn", txn=1):
            courier.dispatch(
                lambda: contexts.append(tracer.active_span), channel="2pc"
            )
        assert len(contexts) == 2
        assert contexts[0].span_id == contexts[1].span_id
        redeliveries = [
            e for e in dicts(ring) if e["name"] == "courier.redelivery"
        ]
        assert len(redeliveries) == 1
        assert redeliveries[0]["span"] == contexts[0].span_id

    def test_retransmission_after_drops_keeps_context(self):
        sim = Simulator()
        tracer, ring, courier = self._setup(
            FaultSpec(drop=1.0), sim=sim, retry=RetryPolicy(max_attempts=3)
        )
        contexts = []
        with start_span(tracer, "txn", txn=1) as root:
            courier.dispatch(
                lambda: contexts.append(tracer.active_span), channel="2pc"
            )
        sim.run()
        assert len(contexts) == 1  # forced through after the retry budget
        events = dicts(ring)
        msg = [e for e in events if e.get("op") == "msg"][0]
        assert contexts[0].span_id == msg["span"]
        assert msg["parent"] == root.context.span_id
        assert any(e["name"] == "fault.drop" for e in events)
        # The msg span's end stamps the arrival after the backoff delays.
        end = [
            e
            for e in events
            if e["name"] == "span.end" and e["span"] == msg["span"]
        ][0]
        assert end["ts"] > 0.0

    def test_heal_reroutes_without_resealing(self):
        tracer, ring, courier = self._setup(FaultSpec())
        courier.partition("2pc")
        delivered = []
        with start_span(tracer, "txn"):
            courier.dispatch(
                lambda: delivered.append(tracer.active_span), channel="2pc"
            )
        assert delivered == []
        courier.heal("2pc")
        assert len(delivered) == 1
        msg_starts = [e for e in dicts(ring) if e.get("op") == "msg"]
        assert len(msg_starts) == 1  # sealed once at dispatch, not at heal
        assert delivered[0].span_id == msg_starts[0]["span"]

    def test_context_free_dispatch_stays_unsealed(self):
        tracer, ring, courier = self._setup(FaultSpec())
        delivered = []
        courier.dispatch(lambda: delivered.append(tracer.active_span))
        assert delivered == [None]
        assert not [e for e in dicts(ring) if e.get("op") == "msg"]


class TestBuildTrees:
    def test_tree_shape_and_transaction_index(self):
        tracer, ring = traced()
        with start_span(tracer, "txn", txn=1):
            with start_span(tracer, "commit"):
                start_span(tracer, "2pc.prepare", site=2).end()
        trees = transaction_trees(dicts(ring))
        root = trees[1]
        assert root.name == "txn" and root.ok is True
        assert [c.name for c in root.children] == ["commit"]
        leg = root.children[0].children[0]
        assert leg.name == "2pc.prepare" and leg.fields["site"] == 2

    def test_unfinished_span_stays_in_tree(self):
        tracer, ring = traced()
        with start_span(tracer, "txn", txn=1):
            start_span(tracer, "commit")  # never ended — crashed run
        root = transaction_trees(dicts(ring))[1]
        assert root.children[0].end is None
        assert root.children[0].duration == 0.0

    def test_orphan_promoted_to_root(self):
        events = [
            {"name": "span.start", "ts": 1.0, "span": 42, "parent": 99,
             "trace": 5, "op": "commit"},
            {"name": "span.end", "ts": 2.0, "span": 42, "trace": 5},
        ]
        roots = build_span_trees(events)
        assert [r.span_id for r in roots] == [42]

    def test_synthetic_lock_wait_span(self):
        events = [
            {"name": "span.start", "ts": 0.0, "span": 1, "parent": None,
             "trace": 1, "op": "txn", "txn": 3},
            {"name": "lock.block", "ts": 1.0, "txn": 3, "key": "x",
             "span": 1, "trace": 1},
            {"name": "lock.grant", "ts": 4.0, "txn": 3, "key": "x",
             "waited": True},
            {"name": "span.end", "ts": 5.0, "span": 1, "trace": 1},
        ]
        root = build_span_trees(events)[0]
        waits = [c for c in root.children if c.name == "lock.wait"]
        assert len(waits) == 1
        wait = waits[0]
        assert (wait.start, wait.end) == (1.0, 4.0)
        assert wait.span_id < 0  # synthetic ids never collide with real ones
        assert wait.fields["key"] == "x"

    def test_flat_event_attaches_to_its_span(self):
        tracer, ring = traced()
        with start_span(tracer, "txn", txn=1):
            tracer.emit("wal.force", site=0)
        root = transaction_trees(dicts(ring))[1]
        assert [e["name"] for e in root.events] == ["wal.force"]

    def test_render_tree_smoke(self):
        tracer, ring = traced()
        with start_span(tracer, "txn", txn=1):
            start_span(tracer, "msg", channel="2pc").end()
        root = transaction_trees(dicts(ring))[1]
        text = render_tree(root)
        assert "txn" in text and "msg[2pc]" in text


class TestBaselineSpans:
    """attach_tracer gives the baseline protocols span trees for free.

    The bench comparator relies on this: every protocol in a suite —
    including the single- and multi-version baselines that predate the
    span layer — must yield committed ``txn`` root spans.
    """

    def _trees_for(self, protocol):
        ring = RingBufferExporter(capacity=65536)
        sim_tracer = Tracer(exporters=[ring])
        run_simulation(
            make_scheduler(protocol),
            balanced(seed=3),
            SimConfig(duration=120.0, check_serializability=False),
            tracer=sim_tracer,
        )
        return transaction_trees(dicts(ring))

    def test_mv2pl_chan_baseline_produces_span_trees(self):
        trees = self._trees_for("mv2pl-chan")
        committed = [r for r in trees.values() if r.ok is True]
        assert committed, "baseline run produced no committed txn spans"
        assert all(r.name == "txn" for r in committed)

    def test_sv_2pl_baseline_produces_span_trees(self):
        trees = self._trees_for("sv-2pl")
        committed = [r for r in trees.values() if r.ok is True]
        assert committed
        # Single-version 2PL blocks readers too, so lock waits show up as
        # synthetic child spans under contended transactions.
        assert all(r.end is not None for r in committed)
