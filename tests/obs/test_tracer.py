"""Tracer core: event stamping, clocks, spans, the null tracer."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, RingBufferExporter, Tracer


class TestTracer:
    def test_emit_stamps_and_fans_out(self):
        a, b = RingBufferExporter(), RingBufferExporter()
        tracer = Tracer(exporters=[a, b])
        tracer.emit("x.one", k=1)
        tracer.emit("x.two", k=2)
        for ring in (a, b):
            events = ring.events()
            assert [e.name for e in events] == ["x.one", "x.two"]
            assert events[0].fields == {"k": 1}

    def test_default_clock_is_deterministic_monotone(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        for _ in range(3):
            tracer.emit("tick")
        assert [e.ts for e in ring.events()] == [0.0, 1.0, 2.0]

    def test_custom_clock(self):
        now = {"t": 10.5}
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring], clock=lambda: now["t"])
        tracer.emit("e")
        now["t"] = 11.0
        tracer.emit("e")
        assert [e.ts for e in ring.events()] == [10.5, 11.0]

    def test_emit_without_exporters_is_cheap_noop(self):
        tracer = Tracer()
        tracer.emit("nobody.listens", x=1)  # must not raise, must not tick
        ring = RingBufferExporter()
        tracer.add_exporter(ring)
        tracer.emit("someone.listens")
        assert ring.events()[0].ts == 0.0  # clock untouched by the no-op emit

    def test_add_remove_exporter(self):
        ring = RingBufferExporter()
        tracer = Tracer()
        tracer.add_exporter(ring)
        tracer.emit("a")
        tracer.remove_exporter(ring)
        tracer.emit("b")
        assert [e.name for e in ring.events()] == ["a"]

    def test_span_emits_start_end_with_elapsed(self):
        now = {"t": 0.0}
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring], clock=lambda: now["t"])
        with tracer.span("gc.pass", site=1):
            now["t"] = 4.0
        names = [e.name for e in ring.events()]
        assert names == ["gc.pass.start", "gc.pass.end"]
        end = ring.events()[1]
        assert end.fields["elapsed"] == 4.0
        assert end.fields["ok"] is True
        assert end.fields["site"] == 1

    def test_span_records_failure(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        assert ring.events()[-1].fields["ok"] is False

    def test_event_to_dict_round_trip(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        tracer.emit("vc.advance", number=3, lag=0)
        d = ring.events()[0].to_dict()
        assert d == {"name": "vc.advance", "ts": 0.0, "number": 3, "lag": 0}


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("anything", x=1)  # no-op
        with NULL_TRACER.span("anything"):
            pass

    def test_shared_singleton_rejects_exporters(self):
        with pytest.raises(ValueError):
            NULL_TRACER.add_exporter(RingBufferExporter())

    def test_fresh_null_tracer_also_disabled(self):
        assert NullTracer().enabled is False
