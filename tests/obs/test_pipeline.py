"""ObsPipeline: composition, NULL degradation, deterministic close, watch CLI."""

import io
import json

from repro.obs.exporters import JsonlExporter
from repro.obs.pipeline import ObsPipeline
from repro.obs.slo import SLOEngine, ZeroObjective
from repro.obs.slo.watch import main as watch_main
from repro.obs.tracer import NULL_TRACER
from repro.protocols.registry import make_scheduler
from repro.sim.engine import Simulator


class TestPipeline:
    def test_degrades_to_null_tracer_with_no_exporters(self):
        pipeline = ObsPipeline(sim=Simulator())
        assert pipeline.tracer is NULL_TRACER
        assert not pipeline.enabled
        assert pipeline.events() == []
        pipeline.close()  # harmless

    def test_ring_and_virtual_clock(self):
        sim = Simulator()
        pipeline = ObsPipeline(sim=sim, ring=64)

        def ticker():
            yield 5.0
            pipeline.tracer.emit("tick")

        sim.spawn(ticker(), name="ticker")
        sim.run()
        pipeline.close()
        [event] = pipeline.events()
        assert event == {"name": "tick", "ts": 5.0}

    def test_attach_detach_round_trip(self):
        db = make_scheduler("vc-2pl")
        pipeline = ObsPipeline(ring=256)
        pipeline.attach(db)
        txn = db.begin()
        db.write(txn, "x", 1).result()
        db.commit(txn).result()
        pipeline.close()
        assert db.tracer is NULL_TRACER  # detached on close
        names = {event["name"] for event in pipeline.events()}
        assert "txn.begin" in names and "txn.commit" in names

    def test_close_is_idempotent_and_finishes_engine(self):
        engine = SLOEngine([ZeroObjective("z", "blocked.ro")], window=10.0)
        pipeline = ObsPipeline(ring=16, engine=engine)
        pipeline.tracer.emit("txn.block", txn=1, cls="ro")
        pipeline.close()
        pipeline.close()
        assert engine.finished
        assert len(engine.breaches) == 1

    def test_engine_finished_even_on_null_path(self):
        engine = SLOEngine([ZeroObjective("z", "blocked.ro")], window=10.0)
        pipeline = ObsPipeline(engine=engine)
        assert pipeline.enabled  # an engine is an exporter
        pipeline.close()
        assert engine.finished

    def test_context_manager(self):
        with ObsPipeline(ring=8) as pipeline:
            pipeline.tracer.emit("a")
        assert len(pipeline.events()) == 1

    def test_jsonl_stream_flushes_on_close(self):
        stream = io.StringIO()
        with ObsPipeline(jsonl=stream) as pipeline:
            pipeline.tracer.emit("a", i=1)
            pipeline.tracer.emit("b", i=2)
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestJsonlDeterministicClose:
    def test_close_exactly_once(self, tmp_path):
        path = tmp_path / "t.jsonl"
        exporter = JsonlExporter(str(path))
        from repro.obs.tracer import TraceEvent

        exporter.export(TraceEvent("a", 0.0, {}))
        exporter.close()
        assert exporter.closed
        exporter.close()  # second close is a no-op, not an error
        exporter.export(TraceEvent("b", 1.0, {}))  # post-close export dropped
        rows = path.read_text().splitlines()
        assert len(rows) == 1

    def test_borrowed_stream_flushed_not_closed(self):
        stream = io.StringIO()
        exporter = JsonlExporter(stream)
        from repro.obs.tracer import TraceEvent

        exporter.export(TraceEvent("a", 0.0, {}))
        exporter.close()
        assert not stream.closed
        assert stream.getvalue().endswith("\n")


class TestWatchCli:
    def _write_trace(self, path, events):
        with open(path, "w", encoding="utf-8") as stream:
            for event in events:
                stream.write(json.dumps(event) + "\n")

    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.jsonl"
        self._write_trace(
            path,
            [
                {"name": "txn.begin", "ts": 1.0, "txn": 1, "cls": "ro"},
                {"name": "txn.commit", "ts": 2.0, "txn": 1, "cls": "ro"},
            ],
        )
        assert watch_main([str(path), "--window", "10"]) == 0
        assert "slo verdict: ok" in capsys.readouterr().out

    def test_breach_exits_three_and_writes_bundle(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        self._write_trace(
            path,
            [
                {"name": "txn.block", "ts": 1.0, "txn": 1, "cls": "ro"},
                {"name": "noop", "ts": 25.0},
            ],
        )
        bundles = tmp_path / "bundles"
        code = watch_main(
            [str(path), "--window", "10", "--bundle-dir", str(bundles)]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "BREACHED" in out
        assert list(bundles.glob("watch_*_ro_blocking.jsonl"))

    def test_json_output_is_byte_identical_across_runs(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(
            path,
            [
                {"name": "txn.begin", "ts": float(i), "txn": i, "cls": "ro"}
                for i in range(30)
            ]
            + [
                {"name": "txn.commit", "ts": i + 0.5, "txn": i, "cls": "ro"}
                for i in range(30)
            ],
        )
        assert watch_main([str(path), "--json"]) == 0
        first = capsys.readouterr().out
        assert watch_main([str(path), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        json.loads(first)

    def test_strict_fails_on_expected_breach(self, tmp_path):
        path = tmp_path / "spike.jsonl"
        # An rw-latency spike against the EWMA baseline: expected breach.
        events = []
        for i in range(20):
            begin = i * 10.0 + 1.0
            dur = 1.0 if i < 15 else 50.0
            events.append({"name": "txn.begin", "ts": begin, "txn": i, "cls": "rw"})
            for j in range(5):  # min_count padding, distinct txn ids
                pad = 1000 + i * 10 + j
                events.append(
                    {"name": "txn.begin", "ts": begin, "txn": pad, "cls": "rw"}
                )
                events.append(
                    {"name": "txn.commit", "ts": begin + dur, "txn": pad, "cls": "rw"}
                )
            events.append(
                {"name": "txn.commit", "ts": begin + dur, "txn": i, "cls": "rw"}
            )
        self._write_trace(path, sorted(events, key=lambda e: e["ts"]))
        assert watch_main([str(path), "--window", "10", "--profile", "faults"]) == 0
        assert (
            watch_main(
                [str(path), "--window", "10", "--profile", "faults", "--strict"]
            )
            == 3
        )

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert watch_main([str(tmp_path / "nope.jsonl")]) == 1

    def test_empty_trace_exits_one(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert watch_main([str(path)]) == 1
        assert "no events" in capsys.readouterr().out
