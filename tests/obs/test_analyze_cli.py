"""Trace analysis library + the `python -m repro trace` CLI."""

import json

import pytest

import repro.__main__ as repro_main
from repro.obs.analyze import (
    blocking_chains,
    load_trace,
    main,
    render_blocking,
    render_lag_series,
    render_timelines,
    visibility_lag_series,
    visibility_pairs,
)


def write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return str(path)


VC_EVENTS = [
    {"name": "vc.register", "ts": 1.0, "number": 1, "tnc": 2, "vtnc": 0, "lag": 1},
    {"name": "vc.register", "ts": 2.0, "number": 2, "tnc": 3, "vtnc": 0, "lag": 2},
    {"name": "vc.advance", "ts": 3.0, "number": 1, "tnc": 3, "vtnc": 1, "lag": 1},
    {"name": "vc.discard", "ts": 4.0, "number": 2, "tnc": 3, "vtnc": 1, "lag": 1},
]


class TestLoadTrace:
    def test_round_trip_and_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "ts": 0.0}\n\n{"name": "b", "ts": 1.0}\n')
        assert [e["name"] for e in load_trace(str(path))] == ["a", "b"]

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "ts": 0.0}\n{"name": "trunc')
        with pytest.raises(ValueError, match=r":2:.*JsonlExporter closed"):
            load_trace(str(path))

    def test_non_event_object_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"no_name": 1}\n')
        with pytest.raises(ValueError, match="not a trace event"):
            load_trace(str(path))


class TestVisibility:
    def test_pairs_honor_discards(self):
        pairs = visibility_pairs(VC_EVENTS)
        assert pairs[1] == (1.0, 3.0)
        assert pairs[2] == (2.0, None)  # discarded: never became visible

    def test_advance_covers_all_numbers_up_to_vtnc(self):
        events = [
            {"name": "vc.register", "ts": 0.0, "number": 1},
            {"name": "vc.register", "ts": 1.0, "number": 2},
            {"name": "vc.advance", "ts": 5.0, "number": 2},  # vtnc jumps to 2
        ]
        pairs = visibility_pairs(events)
        assert pairs[1] == (0.0, 5.0) and pairs[2] == (1.0, 5.0)

    def test_lag_series_and_rendering(self):
        assert visibility_lag_series(VC_EVENTS) == [(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 1)]
        text = render_lag_series(VC_EVENTS)
        assert "peak=2" in text and "4 samples" in text
        assert "##" in text  # bar for the lag-2 sample

    def test_lag_series_resamples_long_runs(self):
        events = [
            {"name": "vc.register", "ts": float(i), "number": i, "lag": 1}
            for i in range(1, 200)
        ]
        text = render_lag_series(events, max_rows=10)
        assert len(text.splitlines()) == 11  # header + 10 resampled rows
        assert "199 samples" in text.splitlines()[0]
        assert text.splitlines()[-1].lstrip().startswith("199")  # last sample kept


class TestTimelines:
    def test_renders_outcome_and_visibility_pair(self):
        events = [
            {"name": "txn.begin", "ts": 0.0, "txn": 7, "cls": "rw"},
            {"name": "vc.register", "ts": 1.0, "number": 3},
            {"name": "txn.commit", "ts": 2.0, "txn": 7, "cls": "rw", "tn": 3},
            {"name": "vc.advance", "ts": 6.0, "number": 3},
        ]
        text = render_timelines(events)
        assert "T7 [rw] commit" in text
        assert "vc.visible       tn=3 registered@1 delay=5" in text

    def test_limit_elides(self):
        events = [
            {"name": "txn.begin", "ts": float(i), "txn": i, "cls": "rw"}
            for i in range(5)
        ]
        text = render_timelines(events, limit=2)
        assert "(3 more transactions)" in text

    def test_open_transaction_never_visible(self):
        events = [
            {"name": "txn.commit", "ts": 0.0, "txn": 1, "cls": "rw", "tn": 9},
            {"name": "vc.register", "ts": 0.0, "number": 9},
        ]
        assert "never (trace ended)" in render_timelines(events)


class TestBlockingChains:
    def test_transitive_chain(self):
        events = [
            {"name": "lock.block", "ts": 1.0, "txn": 3, "key": "x", "holders": [1]},
            {"name": "lock.block", "ts": 2.0, "txn": 5, "key": "y", "holders": [3]},
        ]
        chains = blocking_chains(events)
        assert chains[1]["chain"] == [5, 3, 1]
        assert "T5 -> T3 -> T1" in render_blocking(events)

    def test_grant_clears_waiter(self):
        events = [
            {"name": "lock.block", "ts": 1.0, "txn": 3, "key": "x", "holders": [1]},
            {"name": "lock.grant", "ts": 2.0, "txn": 3, "key": "x", "waited": True},
            {"name": "lock.block", "ts": 3.0, "txn": 5, "key": "y", "holders": [3]},
        ]
        assert blocking_chains(events)[1]["chain"] == [5, 3]

    def test_cycle_detected_in_flight(self):
        events = [
            {"name": "lock.block", "ts": 1.0, "txn": 1, "key": "x", "holders": [2]},
            {"name": "lock.block", "ts": 2.0, "txn": 2, "key": "y", "holders": [1]},
        ]
        assert blocking_chains(events)[1]["chain"] == [2, 1, 2]

    def test_deadlock_events_rendered(self):
        events = [
            {"name": "lock.block", "ts": 1.0, "txn": 1, "key": "x", "holders": [2]},
            {"name": "lock.deadlock", "ts": 2.0, "victim": 1, "cycle": [1, 2], "policy": "youngest"},
        ]
        assert "DEADLOCK victim=T1 cycle: T1 -> T2" in render_blocking(events)


GC_EVENTS = [
    {"name": "gc.sweep", "ts": 10.0, "horizon": 5, "visible": 6, "pins": 1,
     "discarded": 4, "interior": 1, "scanned": 12, "active_readers": 1,
     "live_versions": 20, "max_chain": 3},
    {"name": "gc.sweep", "ts": 20.0, "horizon": 9, "visible": 10, "pins": 0,
     "discarded": 6, "interior": 2, "scanned": 8, "active_readers": 0,
     "live_versions": 16, "max_chain": 2},
]


class TestGcSummary:
    def test_counters_aggregate_across_sweeps(self):
        from repro.obs.analyze import gc_summary

        gc = gc_summary(VC_EVENTS + GC_EVENTS)
        assert gc == {
            "sweeps": 2,
            "versions_discarded": 10,
            "interior_discarded": 3,
            "versions_scanned": 20,
            "scan_per_reclaimed": 2.0,
            "peak_live_versions": 20,
            "final_live_versions": 16,
        }

    def test_none_without_sweep_events(self):
        from repro.obs.analyze import gc_summary

        assert gc_summary(VC_EVENTS) is None

    def test_summary_section_renders_gc_line(self):
        from repro.obs.analyze import render_summary

        text = render_summary(VC_EVENTS + GC_EVENTS)
        assert "gc: 2 sweeps scanned 20 versions" in text
        assert "(3 interior)" in text

    def test_collector_emits_scanned_field(self):
        """End to end: a traced bounded collector puts the scan counter on
        the wire, so offline audits see the same cost the object counted."""
        from repro.core.transaction import Transaction
        from repro.core.version_control import VersionControl
        from repro.obs.exporters import RingBufferExporter
        from repro.obs.tracer import Tracer
        from repro.storage.gc import GarbageCollector
        from repro.storage.mvstore import MVStore

        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc, bounded=True)
        ring = RingBufferExporter(capacity=64)
        gc.tracer = Tracer(exporters=[ring])
        for round_no in range(1, 21):
            txn = Transaction()
            vc.vc_register(txn)
            store.install("k", txn.tn, round_no)
            vc.vc_complete(txn)
        gc.collect()
        sweeps = [e for e in ring.events() if e.name == "gc.sweep"]
        assert sweeps and sweeps[-1].fields["scanned"] == gc.versions_scanned


class TestTraceReport:
    def test_shape_and_determinism(self):
        from repro.obs.analyze import trace_report

        events = VC_EVENTS + GC_EVENTS + [
            {"name": "history.begin", "ts": 1.0, "txn": 1, "cls": "rw"},
            {"name": "txn.begin", "ts": 1.0, "txn": 1, "cls": "rw"},
            {"name": "txn.commit", "ts": 2.0, "txn": 1, "cls": "rw"},
            {"name": "txn.begin", "ts": 3.0, "txn": 2, "cls": "rw"},
            {"name": "txn.abort", "ts": 4.0, "txn": 2, "cls": "rw"},
        ]
        first = trace_report(list(events))
        second = trace_report(list(events))
        assert first == second
        assert first["schema"] == "repro.trace/1"
        assert first["transactions"] == {
            "total": 2, "committed": 1, "aborted": 1, "open": 0,
        }
        assert first["gc"]["versions_scanned"] == 20
        assert first["visibility"]["peak"] == 2

    def test_json_flag_prints_parseable_digest(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", VC_EVENTS + GC_EVENTS)
        assert main([path, "--json"]) == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["schema"] == "repro.trace/1"
        assert digest["events"] == len(VC_EVENTS) + len(GC_EVENTS)
        assert digest["gc"]["sweeps"] == 2
        assert digest["blocking"] == {
            "events": 0, "deadlocks": 0, "longest_chain": 0,
        }


class TestCli:
    def test_all_sections_by_default(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", VC_EVENTS)
        assert main([path]) == 0
        out = capsys.readouterr().out
        for section in ("== summary ==", "== per-transaction timelines ==",
                        "== blocking chains ==", "== visibility lag =="):
            assert section in out

    def test_section_flags_select(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", VC_EVENTS)
        assert main([path, "--lag"]) == 0
        out = capsys.readouterr().out
        assert "== visibility lag ==" in out
        assert "== summary ==" not in out

    def test_missing_file_is_error_not_traceback(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot load trace" in capsys.readouterr().out

    def test_usage_errors(self, capsys):
        assert main([]) == 2
        assert main(["--bogus"]) == 2
        assert main(["a", "--limit"]) == 2
        assert main(["a", "--limit", "abc"]) == 2

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "--timelines" in capsys.readouterr().out

    def test_wired_into_repro_main(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", VC_EVENTS)
        assert repro_main.main(["trace", path, "--summary"]) == 0
        assert "4 events" in capsys.readouterr().out

    def test_empty_file_clear_message_not_traceback(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "contains no events" in out

    def test_unknown_event_types_tolerated(self, tmp_path, capsys):
        events = VC_EVENTS + [
            {"name": "totally.new.event", "ts": 5.0, "whatever": True},
            {"name": "vc.register", "ts": 6.0},  # no number — skipped, not fatal
            {"name": "lock.block", "ts": 7.0},  # no txn — skipped, not fatal
        ]
        path = write_trace(tmp_path / "t.jsonl", events)
        assert main([path]) == 0
        assert "== summary ==" in capsys.readouterr().out


class TestSpansSection:
    SPAN_EVENTS = [
        {"name": "span.start", "ts": 0.0, "span": 1, "parent": None,
         "trace": 1, "op": "txn", "txn": 7},
        {"name": "span.start", "ts": 1.0, "span": 2, "parent": 1,
         "trace": 1, "op": "msg", "channel": "2pc"},
        {"name": "span.end", "ts": 3.0, "span": 2, "trace": 1, "ok": True},
        {"name": "span.end", "ts": 4.0, "span": 1, "trace": 1, "ok": True},
    ]

    def test_spans_flag_renders_trees_and_critical_path(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", self.SPAN_EVENTS)
        assert main([path, "--spans"]) == 0
        out = capsys.readouterr().out
        assert "== span trees & critical paths ==" in out
        assert "msg[2pc]" in out
        assert "network" in out  # critical-path phase attribution

    def test_spans_included_in_default_sections(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", self.SPAN_EVENTS)
        assert main([path]) == 0
        assert "== span trees & critical paths ==" in capsys.readouterr().out

    def test_spanless_trace_says_so(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", VC_EVENTS)
        assert main([path, "--spans"]) == 0
        assert "no span events" in capsys.readouterr().out
