"""Exporters: ring buffer bounds, JSONL round trips, console summaries."""

import io
import json

import pytest

from repro.obs import (
    ConsoleSummaryExporter,
    JsonlExporter,
    RingBufferExporter,
    Tracer,
)
from repro.obs.tracer import TraceEvent


class TestRingBuffer:
    def test_bounded_with_drop_accounting(self):
        ring = RingBufferExporter(capacity=3)
        for i in range(5):
            ring.export(TraceEvent("e", float(i), {"i": i}))
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.fields["i"] for e in ring.events()] == [2, 3, 4]

    def test_clear(self):
        ring = RingBufferExporter(capacity=2)
        for i in range(4):
            ring.export(TraceEvent("e", float(i), {}))
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferExporter(capacity=0)


class TestJsonl:
    def test_stream_round_trip(self):
        stream = io.StringIO()
        exporter = JsonlExporter(stream)
        tracer = Tracer(exporters=[exporter])
        tracer.emit("vc.register", number=1, lag=0)
        tracer.emit("txn.commit", txn=4, cls="rw")
        exporter.close()  # borrowed stream: flushed, not closed
        lines = stream.getvalue().splitlines()
        assert exporter.exported == 2
        assert json.loads(lines[0]) == {"name": "vc.register", "ts": 0.0, "number": 1, "lag": 0}
        assert json.loads(lines[1])["txn"] == 4

    def test_file_path_and_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlExporter(str(path)) as exporter:
            exporter.export(TraceEvent("a", 0.0, {}))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [{"name": "a", "ts": 0.0}]

    def test_non_json_fields_fall_back_to_repr(self):
        stream = io.StringIO()
        exporter = JsonlExporter(stream)
        exporter.export(TraceEvent("lock.grant", 0.0, {"key": {"acct", 7}}))
        row = json.loads(stream.getvalue())
        assert row["key"] == repr({"acct", 7})


class TestConsoleSummary:
    def _fill(self, exporter):
        for ts, name in [(1.0, "txn.begin"), (2.0, "txn.begin"), (5.0, "txn.commit")]:
            exporter.export(TraceEvent(name, ts, {}))

    def test_counts_and_summary_text(self):
        exporter = ConsoleSummaryExporter(stream=io.StringIO())
        self._fill(exporter)
        assert exporter.counts() == {"txn.begin": 2, "txn.commit": 1}
        text = exporter.summary()
        assert "3 events over 4 time units" in text
        assert text.index("txn.begin") < text.index("txn.commit")  # sorted by count

    def test_close_prints_once(self):
        stream = io.StringIO()
        exporter = ConsoleSummaryExporter(stream=stream)
        self._fill(exporter)
        exporter.close()
        exporter.close()
        assert stream.getvalue().count("trace summary") == 1

    def test_empty_summary(self):
        assert "no events" in ConsoleSummaryExporter(stream=io.StringIO()).summary()
