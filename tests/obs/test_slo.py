"""The streaming SLO engine: windows, hysteresis, determinism, bundles."""

import json
import math

import pytest

from repro.obs.slo import (
    Breach,
    Ewma,
    FlightRecorder,
    Hysteresis,
    MaxObjective,
    PercentileObjective,
    RatioObjective,
    SLOEngine,
    WindowStats,
    ZeroObjective,
    bench_objectives,
    default_objectives,
    faults_objectives,
    memory_objectives,
    overload_objectives,
    replication_objectives,
)
from repro.obs.tracer import TraceEvent, Tracer


def _ingest(engine, events):
    for event in events:
        engine.ingest(event)
    engine.finish()
    return engine


def _txn_events(pairs, cls="ro"):
    """(begin_ts, commit_ts) pairs -> interleaved begin/commit event dicts."""
    events = []
    for i, (begin, commit) in enumerate(pairs):
        events.append({"name": "txn.begin", "ts": begin, "txn": i, "cls": cls})
        events.append({"name": "txn.commit", "ts": commit, "txn": i, "cls": cls})
    return sorted(events, key=lambda e: e["ts"])


class TestWindowStats:
    def test_nearest_rank_percentile_matches_summary_rule(self):
        stats = WindowStats()
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            stats.add(value)
        assert stats.percentile(0.5) == 3.0  # ceil(0.5*5) = 3rd smallest
        assert stats.percentile(0.99) == 5.0
        assert stats.percentile(0.2) == 1.0
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.maximum == 5.0 and stats.minimum == 1.0

    def test_reset_clears_everything(self):
        stats = WindowStats()
        stats.add(7.0)
        stats.reset()
        assert stats.count == 0
        assert stats.percentile(0.99) == 0.0
        assert stats.maximum == -math.inf


class TestEwma:
    def test_warmup_gates_readiness(self):
        ewma = Ewma(alpha=0.5, warmup=2)
        assert not ewma.ready
        assert ewma.relative_deviation(100.0) == 0.0  # cold: no verdicts
        ewma.update(10.0)
        assert not ewma.ready
        ewma.update(10.0)
        assert ewma.ready
        assert ewma.relative_deviation(30.0) == pytest.approx(2.0)

    def test_first_update_seeds_the_mean(self):
        ewma = Ewma(alpha=0.3, warmup=1)
        ewma.update(8.0)
        assert ewma.mean == 8.0
        ewma.update(4.0)
        assert ewma.mean == pytest.approx(8.0 + 0.3 * (4.0 - 8.0))

    def test_zero_mean_yields_no_deviation(self):
        ewma = Ewma(warmup=1)
        ewma.update(0.0)
        assert ewma.relative_deviation(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(warmup=0)


class TestHysteresis:
    def test_validation(self):
        with pytest.raises(ValueError):
            Hysteresis(breach_after=0)

    def test_breach_fires_only_after_consecutive_violations(self):
        objective = MaxObjective(
            "lag", "vc.lag", ceiling=5.0, hysteresis=Hysteresis(2, 1)
        )
        engine = SLOEngine([objective], window=10.0)
        # Windows: [0,10) violates, [10,20) clean, [20,30)+[30,40) violate.
        events = [
            {"name": "vc.register", "ts": 1.0, "lag": 9},
            {"name": "vc.register", "ts": 11.0, "lag": 1},
            {"name": "vc.register", "ts": 21.0, "lag": 9},
            {"name": "vc.register", "ts": 31.0, "lag": 9},
        ]
        _ingest(engine, events)
        # The isolated violation at [0,10) must not breach (streak reset).
        assert len(engine.breaches) == 1
        assert engine.breaches[0].window_start == 30.0

    def test_recovery_mid_window_does_not_clear_until_streak(self):
        objective = MaxObjective(
            "lag", "vc.lag", ceiling=5.0, hysteresis=Hysteresis(1, 2)
        )
        engine = SLOEngine([objective], window=10.0)
        events = [
            {"name": "vc.register", "ts": 1.0, "lag": 9},   # breach @ [0,10)
            # Recovery *mid-window*: the clean sample at 12 closes window
            # [10,20) clean — one good window, streak 1 of 2: still breached.
            {"name": "vc.register", "ts": 12.0, "lag": 1},
            {"name": "vc.register", "ts": 22.0, "lag": 1},  # streak 2: clears
            {"name": "vc.register", "ts": 35.0, "lag": 1},
        ]
        _ingest(engine, events)
        assert len(engine.breaches) == 1
        # Cleared exactly at the end of the second clean window.
        assert engine.breaches[0].cleared_at == 30.0
        assert engine.report()["objectives"]["lag"]["status"] == "ok"

    def test_breach_exactly_at_window_boundary_buckets_forward(self):
        """A violating sample at exactly k*W belongs to window k, not k-1."""
        objective = MaxObjective("lag", "vc.lag", ceiling=5.0)
        engine = SLOEngine([objective], window=10.0)
        events = [
            {"name": "vc.register", "ts": 0.0, "lag": 1},
            {"name": "vc.register", "ts": 10.0, "lag": 9},  # boundary sample
            {"name": "vc.register", "ts": 25.0, "lag": 1},
        ]
        _ingest(engine, events)
        assert len(engine.breaches) == 1
        breach = engine.breaches[0]
        assert (breach.window_start, breach.window_end) == (10.0, 20.0)


class TestObjectives:
    def test_zero_objective_counts_empty_windows_as_clean(self):
        objective = ZeroObjective(
            "ro_blocking", "blocked.ro", hysteresis=Hysteresis(1, 2)
        )
        engine = SLOEngine([objective], window=10.0)
        events = [
            {"name": "txn.block", "ts": 1.0, "txn": 1, "cls": "ro"},
            # Two event-less windows pass before ts=35: with ZeroObjective
            # they are *verdicts* (0 occurrences), so the clear streak runs.
            {"name": "txn.begin", "ts": 35.0, "txn": 2, "cls": "ro"},
        ]
        _ingest(engine, events)
        assert len(engine.breaches) == 1
        assert engine.breaches[0].cleared_at is not None
        assert not engine.ok  # the breach still happened and is unexpected

    def test_ratio_objective_needs_min_denominator(self):
        objective = RatioObjective(
            "abort_rate", "abort.rw", "begin.rw", ceiling=0.5, min_denominator=4
        )
        engine = SLOEngine([objective], window=10.0)
        events = []
        # Window [0,10): 3 begins, 3 aborts — below min_denominator, no verdict.
        for i in range(3):
            events.append({"name": "txn.begin", "ts": 1.0 + i, "txn": i, "cls": "rw"})
            events.append({"name": "txn.abort", "ts": 2.0 + i, "txn": i, "cls": "rw"})
        # Window [10,20): 4 begins, 4 aborts — ratio 1.0 > 0.5 violates.
        for i in range(4):
            events.append(
                {"name": "txn.begin", "ts": 11.0 + i, "txn": 10 + i, "cls": "rw"}
            )
            events.append(
                {"name": "txn.abort", "ts": 12.0 + i, "txn": 10 + i, "cls": "rw"}
            )
        events.append({"name": "txn.begin", "ts": 25.0, "txn": 99, "cls": "rw"})
        _ingest(engine, events)
        state = engine.report()["objectives"]["abort_rate"]
        assert state["windows"] == 1  # only the window that met min_denominator
        assert len(engine.breaches) == 1

    def test_percentile_objective_tracks_latency_pairing(self):
        objective = PercentileObjective(
            "ro_p99", "latency.ro", 0.99, ceiling=5.0, min_count=2
        )
        engine = SLOEngine([objective], window=10.0)
        _ingest(
            engine,
            _txn_events([(0.5, 1.0), (1.0, 9.0)]) + [{"name": "noop", "ts": 15.0}],
        )
        # p99 of {0.5, 8.0} = 8.0 > 5.0 -> breach.
        assert len(engine.breaches) == 1
        assert engine.breaches[0].value == pytest.approx(8.0)

    def test_expected_breaches_do_not_fail_ok(self):
        objective = MaxObjective("lag", "replica.lag", ceiling=2.0, expected=True)
        engine = SLOEngine([objective], window=10.0)
        _ingest(
            engine,
            [
                {"name": "replica.lag", "ts": 1.0, "lag": 9},
                {"name": "noop", "ts": 15.0},
            ],
        )
        assert len(engine.breaches) == 1
        assert engine.expected_breaches and not engine.unexpected_breaches
        assert engine.ok
        assert engine.report()["ok"] is True

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine(
                [ZeroObjective("a", "x"), ZeroObjective("a", "y")], window=1.0
            )

    def test_profiles_construct(self):
        for objectives in (
            default_objectives(),
            overload_objectives(capacity=4, ro_p99_ceiling=10.0),
            replication_objectives(max_staleness=8, writers=4),
            faults_objectives(),
            bench_objectives(ro_never_blocks=True),
            bench_objectives(ro_never_blocks=False),
            memory_objectives(),
            memory_objectives(live_versions_bound=64),
        ):
            names = [o.name for o in objectives]
            assert len(set(names)) == len(names)
            SLOEngine(objectives, window=5.0)

    def test_bench_profile_blocking_expectation_follows_protocol_family(self):
        hard = {o.name: o.expected for o in bench_objectives(ro_never_blocks=True)}
        soft = {o.name: o.expected for o in bench_objectives(ro_never_blocks=False)}
        assert hard["ro_blocking"] is False
        assert soft["ro_blocking"] is True


class TestMemoryProfile:
    def test_snapshot_revoked_is_an_expected_anomaly(self):
        # Revocations under pressure are working-as-designed degradation:
        # flight-recorded as breaches, but they never fail the verdict.
        events = [
            {"name": "snapshot.revoked", "ts": 1.0, "txn": 9, "sn": 3,
             "cause": "memory_pressure"},
            {"name": "noop", "ts": 25.0},
        ]
        engine = _ingest(SLOEngine(memory_objectives(), window=10.0), events)
        assert [b.objective for b in engine.breaches] == ["snapshot_revoked"]
        assert engine.breaches[0].expected
        assert engine.unexpected_breaches == []
        assert engine.report()["ok"]

    def test_live_versions_ceiling_is_a_hard_objective(self):
        events = [
            {"name": "gc.sweep", "ts": 1.0, "live_versions": 70, "max_chain": 3,
             "horizon": 0, "visible": 0, "pins": 0, "discarded": 0,
             "interior": 0, "active_readers": 0},
            {"name": "noop", "ts": 25.0},
        ]
        engine = _ingest(
            SLOEngine(memory_objectives(live_versions_bound=64), window=10.0),
            events,
        )
        breached = [b.objective for b in engine.unexpected_breaches]
        assert "gc_live_versions" in breached
        assert not engine.report()["ok"]

    def test_live_versions_under_the_bound_is_clean(self):
        events = [
            {"name": "gc.sweep", "ts": 1.0, "live_versions": 40, "max_chain": 3,
             "horizon": 0, "visible": 0, "pins": 0, "discarded": 0,
             "interior": 0, "active_readers": 0},
            {"name": "noop", "ts": 25.0},
        ]
        engine = _ingest(
            SLOEngine(memory_objectives(live_versions_bound=64), window=10.0),
            events,
        )
        assert engine.unexpected_breaches == []
        assert engine.report()["ok"]


class TestEngineStream:
    def test_live_export_and_replay_agree(self):
        """The exporter path and the ingest path are the same computation."""
        events = _txn_events([(1.0, 3.0), (11.0, 12.0), (21.0, 29.0)]) + [
            {"name": "vc.advance", "ts": 22.0, "lag": 3},
            {"name": "noop", "ts": 45.0},
        ]
        live = SLOEngine(default_objectives(), window=10.0)
        tracer = Tracer(exporters=[live], clock=lambda: 0.0)
        for event in events:
            fields = {k: v for k, v in event.items() if k not in ("name", "ts")}
            live._process(event["name"], event["ts"], fields, None)
        live.finish()
        replay = _ingest(SLOEngine(default_objectives(), window=10.0), events)
        assert live.report() == replay.report()

    def test_ts_regression_restarts_window_clock(self):
        """A campaign's next drill restarts virtual time at 0 mid-stream."""
        objective = MaxObjective("lag", "vc.lag", ceiling=100.0)
        engine = SLOEngine([objective], window=10.0)
        events = [
            {"name": "txn.begin", "ts": 95.0, "txn": 1, "cls": "ro"},
            {"name": "vc.register", "ts": 99.0, "lag": 1},
            # clock restarts: the dangling begin above must not pair with
            # a commit from the new run
            {"name": "vc.register", "ts": 2.0, "lag": 2},
            {"name": "txn.commit", "ts": 3.0, "txn": 1, "cls": "ro"},
            {"name": "noop", "ts": 25.0},
        ]
        latency = PercentileObjective(
            "ro_p99", "latency.ro", 0.99, ceiling=1000.0, min_count=1
        )
        engine = SLOEngine([objective, latency], window=10.0)
        _ingest(engine, events)
        report = engine.report()
        # No latency sample: the cross-run pair was dropped at the seam.
        assert report["objectives"]["ro_p99"]["windows"] == 0
        assert report["objectives"]["lag"]["windows"] == 2

    def test_gap_fast_forward_does_not_hang(self):
        engine = SLOEngine([ZeroObjective("z", "blocked.ro")], window=0.001)
        _ingest(
            engine,
            [
                {"name": "txn.begin", "ts": 0.0, "txn": 1, "cls": "ro"},
                {"name": "txn.begin", "ts": 1e9, "txn": 2, "cls": "ro"},
            ],
        )
        assert engine.windows_closed < 10_000

    def test_lock_wait_depth_tracks_live_blocked_set(self):
        objective = MaxObjective("depth", "lock.wait_depth", ceiling=100.0)
        engine = SLOEngine([objective], window=100.0)
        _ingest(
            engine,
            [
                {"name": "lock.block", "ts": 1.0, "txn": 1},
                {"name": "lock.block", "ts": 2.0, "txn": 2},
                {"name": "lock.grant", "ts": 3.0, "txn": 1, "waited": True},
                {"name": "lock.block", "ts": 4.0, "txn": 3},
            ],
        )
        assert engine.report()["objectives"]["depth"]["worst"] == 2.0

    def test_finish_is_idempotent_and_freezes(self):
        engine = SLOEngine([ZeroObjective("z", "blocked.ro")], window=10.0)
        engine.ingest({"name": "txn.block", "ts": 1.0, "txn": 1, "cls": "ro"})
        engine.finish()
        closed = engine.windows_closed
        engine.finish()
        engine.ingest({"name": "txn.block", "ts": 2.0, "txn": 2, "cls": "ro"})
        assert engine.windows_closed == closed
        assert len(engine.breaches) == 1


class TestDeterminism:
    def _trace(self):
        events = _txn_events(
            [(i * 3.0, i * 3.0 + 1.0 + (i % 4)) for i in range(40)], cls="ro"
        )
        events += [
            {"name": "vc.advance", "ts": 7.0 + 11 * i, "lag": (i * 5) % 9}
            for i in range(12)
        ]
        events += [
            {"name": "txn.block", "ts": 61.0, "txn": 900, "cls": "ro"},
            {"name": "txn.block", "ts": 62.0, "txn": 901, "cls": "ro"},
        ]
        return sorted(events, key=lambda e: e["ts"])

    def _engine(self, tmp_path, tag):
        return SLOEngine(
            default_objectives(),
            window=10.0,
            recorder=FlightRecorder(capacity=4096),
            bundle_dir=str(tmp_path / tag),
            bundle_prefix="t",
        )

    def test_replay_is_byte_identical(self, tmp_path):
        """Same trace, two replays: equal reports AND byte-equal bundles."""
        first = _ingest(self._engine(tmp_path, "a"), self._trace())
        second = _ingest(self._engine(tmp_path, "b"), self._trace())
        assert first.report() == second.report()
        assert json.dumps(first.report(), sort_keys=True) == json.dumps(
            second.report(), sort_keys=True
        )
        assert first.bundle_paths and second.bundle_paths
        for path_a, path_b in zip(first.bundle_paths, second.bundle_paths):
            with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
                assert fa.read() == fb.read()

    def test_report_is_json_serializable(self, tmp_path):
        engine = _ingest(self._engine(tmp_path, "c"), self._trace())
        json.dumps(engine.report())  # no repr fallback needed


class TestFlightRecorder:
    def test_bounded_ring_with_drop_accounting(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record({"name": "e", "ts": float(i)})
        assert len(recorder.events()) == 3
        assert recorder.dropped == 2

    def test_standalone_exporter_form(self):
        recorder = FlightRecorder(capacity=8)
        tracer = Tracer(exporters=[recorder])
        tracer.emit("txn.begin", txn=1)
        assert recorder.events()[0]["name"] == "txn.begin"

    def test_bundle_window_contains_injected_cause(self, tmp_path):
        """The acceptance scenario in miniature: inject a lag spike behind a
        fault event; the breach bundle's window must contain that cause."""
        engine = SLOEngine(
            replication_objectives(max_staleness=4, writers=2),
            window=10.0,
            recorder=FlightRecorder(capacity=4096),
            bundle_dir=str(tmp_path),
        )
        events = [
            {"name": "replica.lag", "ts": 1.0, "replica": 1, "lag": 0},
            # the injected cause, one window before the breach verdict:
            {"name": "fault.partition.hold", "ts": 11.0, "src": 0, "dst": 1},
            {"name": "replica.lag", "ts": 12.0, "replica": 1, "lag": 9},
            {"name": "replica.lag", "ts": 21.0, "replica": 1, "lag": 11},
            {"name": "noop", "ts": 35.0},
        ]
        _ingest(engine, events)
        assert engine.expected_breaches
        assert len(engine.bundles) == 1
        bundle = engine.bundles[0]
        assert bundle["schema"] == "repro.slo.bundle/1"
        assert "fault.partition.hold" in bundle["event_tally"]
        # And the written JSONL round-trips: header + one line per event.
        with open(engine.bundle_paths[0], "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        header = json.loads(lines[0])
        assert header["breach"]["objective"] == "replica_lag"
        assert len(lines) == 1 + bundle["events_in_window"]

    def test_max_bundles_caps_recorder_work(self, tmp_path):
        engine = SLOEngine(
            [
                MaxObjective(
                    "lag", "vc.lag", ceiling=1.0, hysteresis=Hysteresis(1, 1)
                )
            ],
            window=10.0,
            recorder=FlightRecorder(capacity=64),
            bundle_dir=str(tmp_path),
            max_bundles=2,
        )
        events = []
        ts = 0.0
        for k in range(6):  # breach, clear, breach, clear, ...
            events.append({"name": "vc.advance", "ts": ts + 1.0, "lag": 9})
            events.append({"name": "vc.advance", "ts": ts + 11.0, "lag": 0})
            ts += 20.0
        events.append({"name": "noop", "ts": ts + 1.0})
        _ingest(engine, events)
        assert len(engine.breaches) > 2
        assert len(engine.bundles) == 2
        assert len(engine.bundle_paths) == 2


class TestGauges:
    def test_gc_sweep_publishes_version_footprint(self):
        from repro.protocols.registry import make_scheduler

        db = make_scheduler("vc-2pl")
        for i in range(3):
            txn = db.begin()
            db.write(txn, "x", i).result()
            db.commit(txn).result()
        db.gc.collect()
        registry = db.counters.registry
        assert registry.gauge("gc.live_versions").value >= 1
        assert registry.gauge("gc.max_chain").value >= 1

    def test_gc_sweep_event_carries_the_gauges(self):
        from repro.obs.exporters import RingBufferExporter
        from repro.obs.instrument import attach_tracer
        from repro.protocols.registry import make_scheduler

        db = make_scheduler("vc-2pl")
        ring = RingBufferExporter(capacity=1024)
        handle = attach_tracer(db, Tracer(exporters=[ring]))
        txn = db.begin()
        db.write(txn, "x", 1).result()
        db.commit(txn).result()
        db.gc.collect()
        handle.detach()
        sweeps = [e for e in ring.events() if e.name == "gc.sweep"]
        assert sweeps
        assert sweeps[-1].fields["live_versions"] >= 1
        assert sweeps[-1].fields["max_chain"] >= 1

    def test_replica_staleness_gauge(self):
        from repro.replica.node import Replica
        from repro.storage.wal import LogRecord, RecordKind

        replica = Replica(1)
        records = [
            LogRecord(kind=RecordKind.WRITE, txn_id=1, key="x", value=1),
            LogRecord(kind=RecordKind.COMMIT, txn_id=1, tn=1),
            LogRecord(kind=RecordKind.WRITE, txn_id=2, key="x", value=2),
            LogRecord(kind=RecordKind.COMMIT, txn_id=2, tn=2),
        ]
        replica.receive_segment(0, 0, records[:2])
        gauge = replica.counters.registry.gauge("replica.staleness")
        assert gauge.value == replica.staleness_bound == 0
        # A buffered (gapped) segment raises the frontier but not vtnc.
        replica.receive_segment(0, 3, records[3:])
        assert gauge.value == replica.staleness_bound == 1
