"""attach_tracer / detach across the scheduler component graph."""

from repro.obs import NULL_TRACER, RingBufferExporter, Tracer, attach_tracer
from repro.obs.instrument import subscribe_version_control
from repro.protocols.registry import make_scheduler


def traced(name="vc-2pl"):
    scheduler = make_scheduler(name)
    ring = RingBufferExporter()
    tracer = Tracer(exporters=[ring])
    handle = attach_tracer(scheduler, tracer)
    return scheduler, ring, tracer, handle


def run_one_txn(db):
    txn = db.begin()
    db.write(txn, "x", 1).result()
    db.commit(txn).result()
    return txn


class TestAttach:
    def test_wires_every_component(self):
        db, _, tracer, handle = traced()
        assert db.tracer is tracer
        assert db.counters.tracer is tracer
        assert db.locks.tracer is tracer
        assert db.locks.waits_for.tracer is tracer
        assert db.gc.tracer is tracer
        assert len(db.vc._observers) == 1
        handle.detach()

    def test_wal_scheduler_instruments_log(self):
        db, ring, tracer, handle = traced("vc-2pl-wal")
        assert db.log.tracer is tracer
        run_one_txn(db)
        names = {e.name for e in ring.events()}
        assert "wal.append" in names and "wal.force" in names
        handle.detach()

    def test_adaptive_recurses_into_engines_sharing_one_vc_observer(self):
        db, ring, tracer, handle = traced("vc-adaptive")
        for engine in db._engines.values():
            assert engine.tracer is tracer
            assert getattr(engine, "locks", None) is None or engine.locks.tracer is tracer
        assert len(db.vc._observers) == 1  # shared VC subscribed exactly once
        run_one_txn(db)
        names = {e.name for e in ring.events()}
        assert {"txn.begin", "txn.commit", "vc.register", "vc.advance"} <= names
        handle.detach()

    def test_granular_lock_manager_emits(self):
        db, ring, _, handle = traced("vc-2pl-granular")
        run_one_txn(db)
        assert any(e.name == "lock.grant" for e in ring.events())
        handle.detach()

    def test_lifecycle_events_for_one_committed_txn(self):
        db, ring, _, handle = traced()
        txn = run_one_txn(db)
        names = [e.name for e in ring.events()]
        for expected in ("txn.begin", "cc.call", "lock.grant", "vc.register",
                         "vc.advance", "txn.commit"):
            assert expected in names, expected
        begin = next(e for e in ring.events() if e.name == "txn.begin")
        assert begin.fields["txn"] == txn.txn_id and begin.fields["cls"] == "rw"
        register = next(e for e in ring.events() if e.name == "vc.register")
        assert register.fields["number"] == txn.tn
        handle.detach()


class TestDetach:
    def test_detach_restores_null_tracer_and_silences_vc(self):
        db, ring, _, handle = traced()
        run_one_txn(db)
        handle.detach()
        assert db.tracer is NULL_TRACER
        assert db.counters.tracer is NULL_TRACER
        assert db.locks.tracer is NULL_TRACER
        assert db.gc.tracer is NULL_TRACER
        assert db.vc._observers == []
        before = len(ring.events())
        run_one_txn(db)  # post-detach activity must not reach the exporter
        assert len(ring.events()) == before

    def test_detach_is_idempotent(self):
        db, _, _, handle = traced()
        handle.detach()
        handle.detach()
        assert db.vc._observers == []

    def test_context_manager_detaches(self):
        db = make_scheduler("vc-2pl")
        tracer = Tracer(exporters=[RingBufferExporter()])
        with attach_tracer(db, tracer):
            assert db.tracer is tracer
        assert db.tracer is NULL_TRACER


class TestNullTracerAttach:
    def test_null_tracer_subscribes_no_vc_observer(self):
        db = make_scheduler("vc-2pl")
        assert subscribe_version_control(db.vc, NULL_TRACER) is None
        handle = attach_tracer(db, NULL_TRACER)
        assert db.vc._observers == []
        handle.detach()
