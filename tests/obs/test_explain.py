"""``python -m repro explain`` — deterministic per-transaction forensics.

The acceptance bar: on a trace recorded under fault injection, the report
must be byte-stable across invocations and cover at least one committed
and one aborted transaction (see ``docs/witness.md``).
"""

import io
import json

import pytest

import repro.__main__ as repro_main
from repro.obs.tracer import Tracer
from repro.obs.witness.explain import (
    explain_transaction,
    main as explain_main,
    render_explain,
)


@pytest.fixture(scope="module")
def drill_events():
    """One seeded fault drill, traced: lossy network + site crashes, so the
    trace holds retries, aborts, and commits all at once."""
    from repro.faults.drill import run_drill
    from repro.obs.exporters import JsonlExporter

    buffer = io.StringIO()
    tracer = Tracer(exporters=[JsonlExporter(buffer)])
    run_drill("dvc", seed=0, duration=150.0, tracer=tracer)
    tracer.close()
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def outcome_txns(events):
    committed = [
        e["txn"] for e in events
        if e["name"] == "history.commit" and e.get("cls") == "rw"
    ]
    aborted = [e["txn"] for e in events if e["name"] == "history.abort"]
    return committed, aborted


class TestExplainOnFaultDrill:
    def test_drill_produced_both_outcomes(self, drill_events):
        committed, aborted = outcome_txns(drill_events)
        assert committed and aborted

    def test_committed_report_is_byte_stable(self, drill_events):
        committed, _ = outcome_txns(drill_events)
        txn = committed[0]
        first = explain_transaction([dict(e) for e in drill_events], txn)
        second = explain_transaction([dict(e) for e in drill_events], txn)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert render_explain(first) == render_explain(second)
        assert first["outcome"] == "committed"
        assert first["operations"]

    def test_aborted_report_is_byte_stable_and_typed(self, drill_events):
        _, aborted = outcome_txns(drill_events)
        txn = aborted[0]
        first = explain_transaction([dict(e) for e in drill_events], txn)
        second = explain_transaction([dict(e) for e in drill_events], txn)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert first["outcome"] == "aborted"
        # The committed projection excludes it: no serialization edges.
        assert first["edges"] == {"in": [], "out": []}
        if first["abort"] is not None:
            assert isinstance(first["abort"]["retryable"], bool)
        rendered = render_explain(first)
        assert "aborted" in rendered
        assert "committed projection excludes" in rendered

    def test_unknown_transaction_lists_known_ids(self, drill_events):
        with pytest.raises(LookupError, match="known transactions"):
            explain_transaction(drill_events, 999_999)


SMALL_TRACE = [
    {"name": "history.begin", "ts": 1.0, "txn": 1, "cls": "rw"},
    {"name": "history.write", "ts": 2.0, "txn": 1, "key": "x"},
    {"name": "history.commit", "ts": 3.0, "txn": 1, "ident": 1, "tn": 1, "cls": "rw"},
    {"name": "history.begin", "ts": 4.0, "txn": 2, "cls": "rw"},
    {"name": "history.read", "ts": 5.0, "txn": 2, "key": "x", "version": 1},
    {"name": "history.commit", "ts": 6.0, "txn": 2, "ident": 2, "tn": 2, "cls": "rw"},
]


def write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return str(path)


class TestExplainRecord:
    def test_reads_from_edge_appears_with_kind(self):
        record = explain_transaction([dict(e) for e in SMALL_TRACE], 2)
        incoming = record["edges"]["in"]
        assert any(e["src"] == 1 and e["kind"] == "wr" for e in incoming)
        assert record["witness"]["serializable"] is True

    def test_render_is_pure_function_of_record(self):
        record = explain_transaction([dict(e) for e in SMALL_TRACE], 2)
        assert render_explain(record) == render_explain(json.loads(json.dumps(record)))


class TestExplainCLI:
    def test_json_output_round_trips(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL_TRACE)
        assert explain_main([path, "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro.explain/1"
        assert record["txn"] == 2

    def test_accepts_t_prefixed_ids(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL_TRACE)
        assert explain_main([path, "T2"]) == 0
        assert "transaction T2" in capsys.readouterr().out

    def test_unknown_txn_exits_1(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL_TRACE)
        assert explain_main([path, "42"]) == 1
        assert "known transactions" in capsys.readouterr().out

    def test_bad_id_and_usage_exit_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL_TRACE)
        assert explain_main([path, "xyz"]) == 2
        assert explain_main([path]) == 2
        assert explain_main([path, "2", "--bogus"]) == 2
        capsys.readouterr()

    def test_wired_into_module_cli(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", SMALL_TRACE)
        assert repro_main.main(["explain", path, "2"]) == 0
        assert "transaction T2" in capsys.readouterr().out
