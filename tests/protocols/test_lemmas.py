"""Paper Section 5: Lemmas 1-3 and Theorem 1 as executable assertions.

The proofs treat the lemmas as formal specifications of the protocol; here
they are checked directly against randomized executions of VC + timestamp
ordering (and, where the lemma applies, VC + 2PL), using the ground-truth
transaction descriptors the stress driver retains.
"""

import pytest

from repro.core.transaction import Transaction
from repro.histories import assert_one_copy_serializable
from repro.protocols.registry import make_scheduler
from tests.stress.driver import RandomDriver

SEEDS = range(5)


def run(name: str, seed: int) -> RandomDriver:
    driver = RandomDriver(make_scheduler(name), seed=seed)
    driver.run(250)
    return driver


def committed(driver) -> list[Transaction]:
    return [t for t in driver.all_txns if t.state.value == "committed"]


def effective_tn(txn: Transaction) -> float:
    """tn(T) in the proofs: the transaction number, or sn for read-only
    transactions (the paper sets tn(T) = sn(T) for them 'for proving
    correctness')."""
    if txn.is_read_only:
        assert txn.sn is not None
        return txn.sn
    assert txn.tn is not None
    return txn.tn


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ["vc-to", "vc-2pl", "vc-occ"])
def test_lemma_1_unique_transaction_numbers(name, seed):
    """Lemma 1: each read-write transaction has a unique tn."""
    driver = run(name, seed)
    tns = [t.tn for t in committed(driver) if t.is_read_write]
    assert len(tns) == len(set(tns))
    assert all(tn is not None for tn in tns)


@pytest.mark.parametrize("seed", SEEDS)
def test_lemma_2_reads_only_from_predecessors(seed):
    """Lemma 2: for every r_k[x_j], tn(T_j) <= tn(T_k).

    Checked from ground truth: every committed transaction's read set maps
    keys to the version number (creator tn) it read.
    """
    driver = run("vc-to", seed)
    for txn in committed(driver):
        bound = effective_tn(txn)
        for key, version_tn in txn.read_set.items():
            if version_tn < 0:
                continue  # own staged write
            assert version_tn <= bound, (
                f"T(tn={bound}) read {key} from version {version_tn}"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_lemma_2_strict_for_read_write(seed):
    """Read-write readers see strictly older versions (tn is unique)."""
    driver = run("vc-to", seed)
    for txn in committed(driver):
        if not txn.is_read_write:
            continue
        for version_tn in txn.read_set.values():
            if version_tn >= 0:
                assert version_tn < txn.tn


@pytest.mark.parametrize("seed", SEEDS)
def test_lemma_3_no_write_between_read_and_its_version(seed):
    """Lemma 3: for every r_k[x_j] and w_i[x_i] with i, j, k distinct,
    either tn(T_i) < tn(T_j) or tn(T_k) < tn(T_i).

    Equivalently: no committed write on x lands strictly between the
    version a committed reader saw and the reader's own number.
    """
    driver = run("vc-to", seed)
    txns = committed(driver)
    writes: dict[str, list[int]] = {}
    for txn in txns:
        if txn.is_read_write:
            for key in txn.write_set:
                writes.setdefault(key, []).append(txn.tn)
    for txn in txns:
        k = effective_tn(txn)
        for key, j in txn.read_set.items():
            if j < 0:
                continue
            for i in writes.get(key, ()):
                if i == j or (txn.is_read_write and i == txn.tn):
                    continue
                assert i < j or k < i, (
                    f"w[{key}] at tn={i} violates the Lemma 3 window "
                    f"(read version {j}, reader tn {k})"
                )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ["vc-to", "vc-2pl", "vc-occ"])
def test_theorem_1_one_copy_serializable(name, seed):
    """Theorem 1 (and its 2PL/OCC analogues): every history is 1SR."""
    driver = run(name, seed)
    assert_one_copy_serializable(driver.scheduler.history)
    # The core of the proof: every MVSG edge between read-write transactions
    # follows transaction-number order (read-only nodes may interleave
    # anywhere their snapshot places them).
    from repro.histories.mvsg import multiversion_serialization_graph
    from repro.histories.recorder import RO_ID_OFFSET

    graph = multiversion_serialization_graph(
        driver.scheduler.history.committed_projection()
    )
    for u, v in graph.edges():
        if 0 < u < RO_ID_OFFSET and 0 < v < RO_ID_OFFSET:
            assert u < v, f"MVSG edge {u} -> {v} violates tn order"
