"""Counter-name audit across every registered protocol.

Two guarantees, uniform over the whole registry:

* ``SchedulerCounters.as_dict()`` round-trips into ``RunMetrics.counters``
  unchanged — the registry-backed rewrite of the counters must not change
  what experiments read;
* every counter name a protocol emits belongs to a canonical dotted family
  (``begin.*``, ``cc.*``, ``vc.*``, ``block.*``, ...), so traces, metrics
  tables, and the docs' event schema stay one vocabulary.
"""

import pytest

from repro.bench.runner import SimConfig, run_simulation
from repro.protocols.registry import PROTOCOLS, VC_PROTOCOLS, make_scheduler
from repro.workload.mixes import balanced

#: Every legal counter-name family.  A new prefix here requires a matching
#: entry in docs/observability.md's schema section.
CANONICAL_PREFIXES = (
    "begin.",
    "commit.",
    "abort.",
    "cc.",
    "vc.",
    "block.",
    "syncwrite.",
    "deadlock",
    "user_abort.",
    "weihl.",
    "ctl.",
    "occ.",
    "adaptive.",
    "ro.",
)

_CONFIG = SimConfig(duration=120.0, n_clients=6, check_serializability=False)


@pytest.fixture(scope="module")
def runs():
    """One short balanced run per protocol: (scheduler, metrics)."""
    out = {}
    for index, name in enumerate(PROTOCOLS):
        scheduler = make_scheduler(name)
        metrics = run_simulation(scheduler, balanced(seed=100 + index), _CONFIG)
        out[name] = (scheduler, metrics)
    return out


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_counters_round_trip_into_run_metrics(name, runs):
    scheduler, metrics = runs[name]
    assert metrics.counters == scheduler.counters.as_dict()
    # and RunMetrics.counter() reads the same values back
    for key, value in metrics.counters.items():
        assert metrics.counter(key) == value
    assert metrics.counter("no.such.counter") == 0


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_all_counter_names_are_canonical(name, runs):
    _, metrics = runs[name]
    stray = [
        key for key in metrics.counters
        if not key.startswith(CANONICAL_PREFIXES)
    ]
    assert not stray, f"{name} emits non-canonical counter names: {stray}"


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_lifecycle_counters_present(name, runs):
    _, metrics = runs[name]
    assert metrics.counter("begin.rw") > 0
    assert metrics.counter("commit.rw") > 0
    assert metrics.counter("begin.ro") > 0
    assert metrics.counter("cc.rw") > 0  # read-write txns always touch CC


@pytest.mark.parametrize("name", sorted(n for n in PROTOCOLS if n.startswith("vc-")))
def test_vc_protocols_use_the_module_and_spare_readers(name, runs):
    _, metrics = runs[name]
    assert metrics.counter("vc.rw") > 0  # register/complete through VC
    assert metrics.counter("vc.ro") > 0  # VCstart per read-only txn
    assert metrics.counter("cc.ro") == 0  # the paper's claim, as a counter
    assert metrics.counter("block.ro") == 0


def test_registry_groupings_are_consistent():
    assert set(VC_PROTOCOLS) <= set(PROTOCOLS)
    for name, cls in PROTOCOLS.items():
        assert cls.name == name
