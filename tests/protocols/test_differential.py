"""Differential testing: protocol variants that must behave identically.

Two pairs of schedulers implement the same protocol over different
substrates, so on an identical adversarial schedule they must produce an
identical outcome:

* ``vc-2pl`` vs ``vc-2pl-granular`` — without scans, intention locks at the
  root are always mutually compatible, so key-level conflicts (and hence
  blocking, deadlocks, and the final history) are exactly those of flat
  S/X locking;
* ``vc-2pl`` vs ``vc-2pl-wal`` — logging is pure bookkeeping below the
  protocol; the observable execution is identical record for record.

The drivers are seeded identically; any divergence in the committed history
or the counter profile is a bug in one of the substrates.
"""

import pytest

from repro.protocols.registry import make_scheduler
from tests.stress.driver import RandomDriver

SEEDS = range(5)


def run(name: str, seed: int):
    scheduler = make_scheduler(name)
    driver = RandomDriver(scheduler, seed=seed)
    driver.run(250)
    return scheduler


def canonical_history(scheduler) -> list[str]:
    """The committed history with identities normalized to tn order.

    Transaction ids differ across runs (the global id counter keeps
    counting), so read-only identities are renamed by order of appearance.
    """
    rename: dict[int, str] = {}
    out = []
    for op in scheduler.history.committed_projection().ops:
        ident = op.txn
        if ident not in rename:
            rename[ident] = (
                f"rw{ident}" if ident < 10_000_000_000 else f"ro{len(rename)}"
            )
        version = ""
        if op.version is not None:
            v = op.version
            version = f"_{v if v < 10_000_000_000 else 'own'}"
        out.append(f"{op.kind.value}{rename[ident]}[{op.key}{version}]")
    return out


def comparable_counters(scheduler) -> dict[str, int]:
    ignored_prefixes = ("vc.",)  # wal adds no counters; keep everything else
    return {
        k: v
        for k, v in scheduler.counters.as_dict().items()
        if not k.startswith(ignored_prefixes)
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_flat_and_granular_2pl_are_equivalent_without_scans(seed):
    flat = run("vc-2pl", seed)
    granular = run("vc-2pl-granular", seed)
    assert canonical_history(flat) == canonical_history(granular)
    assert comparable_counters(flat) == comparable_counters(granular)
    assert flat.counters.get("deadlock") == granular.locks.deadlocks


@pytest.mark.parametrize("seed", SEEDS)
def test_plain_and_wal_2pl_are_equivalent(seed):
    plain = run("vc-2pl", seed)
    wal = run("vc-2pl-wal", seed)
    assert canonical_history(plain) == canonical_history(wal)
    assert comparable_counters(plain) == comparable_counters(wal)
    # And the WAL run must be reconstructible to the same committed state.
    recovered = wal.recovered()
    for key in wal.store.keys():
        assert (
            recovered.store.read_latest_committed(key).value
            == wal.store.read_latest_committed(key).value
        )
