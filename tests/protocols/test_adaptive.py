"""Tests for the adaptive (2PL <-> OCC) scheduler."""

import pytest

from repro.bench.runner import SimConfig, run_simulation
from repro.histories import assert_one_copy_serializable
from repro.protocols.adaptive import AdaptiveVCScheduler
from repro.workload.mixes import balanced, write_heavy_hotspot


def drain_window(db, n=None):
    """Commit enough trivially-conflicting-free txns to fill the window."""
    n = n if n is not None else db._outcomes.maxlen
    for i in range(n):
        t = db.begin()
        db.write(t, f"unique{db.counters.get('begin.rw')}-{i}", 1).result()
        db.commit(t).result()


class TestConstruction:
    def test_defaults(self):
        db = AdaptiveVCScheduler()
        assert db.mode == "occ"
        assert db.switches == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveVCScheduler(initial_mode="mvcc")

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveVCScheduler(high_watermark=0.1, low_watermark=0.5)

    def test_engines_share_vc_and_store(self):
        db = AdaptiveVCScheduler()
        assert db._engines["2pl"].vc is db.vc is db._engines["occ"].vc
        assert db._engines["2pl"].store is db.store


class TestBasicOperation:
    def test_occ_mode_roundtrip(self):
        db = AdaptiveVCScheduler(initial_mode="occ")
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        r = db.begin(read_only=True)
        assert db.read(r, "x").result() == 1
        db.commit(r).result()

    def test_2pl_mode_roundtrip(self):
        db = AdaptiveVCScheduler(initial_mode="2pl")
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert db.store.read_latest_committed("x").value == 1

    def test_read_only_path_is_mode_independent(self):
        for mode in ("occ", "2pl"):
            db = AdaptiveVCScheduler(initial_mode=mode)
            t = db.begin()
            db.write(t, "x", 5).result()
            db.commit(t).result()
            r = db.begin(read_only=True)
            assert db.read(r, "x").result() == 5
            db.commit(r).result()
            assert db.counters.get("cc.ro") == 0


class TestSwitching:
    def test_high_abort_rate_switches_to_2pl(self):
        db = AdaptiveVCScheduler(window=10, high_watermark=0.3)
        # Conflict storm under OCC: pairs racing on one counter.  Stop the
        # racing pattern once the scheduler adapts (it would block under
        # 2PL — which is the point of the adaptation).
        for _ in range(20):
            if db.mode == "2pl":
                break
            a, b = db.begin(), db.begin()
            va = db.read(a, "c").result() or 0
            vb = db.read(b, "c").result() or 0
            db.write(a, "c", va + 1).result()
            db.write(b, "c", vb + 1).result()
            db.commit(a)
            db.commit(b)  # second one fails validation
        assert db.mode == "2pl"
        assert db.counters.get("adaptive.switch_to_2pl") == 1

    def test_calm_workload_switches_back_to_occ(self):
        db = AdaptiveVCScheduler(initial_mode="2pl", window=10, low_watermark=0.1)
        drain_window(db, 10)
        assert db.mode == "occ"
        assert db.switches[-1][1] == "occ"

    def test_switch_quiesces_around_inflight_transactions(self):
        db = AdaptiveVCScheduler(
            initial_mode="2pl", window=4, high_watermark=0.6, low_watermark=0.5
        )
        lingering = db.begin()           # old-mode txn stays in flight
        db.write(lingering, "L", 1).result()
        drain_window(db, 4)              # policy wants OCC now
        assert db.mode == "2pl", "switch deferred while 2PL txn in flight"
        started = db.begin()             # still started under the old mode
        assert started.meta["engine"] is db._engines["2pl"]
        db.commit(started).result()
        db.commit(lingering).result()    # drain completes...
        t = db.begin()                   # ...and the switch lands
        assert db.mode == "occ"
        assert t.meta["engine"] is db._engines["occ"]
        db.commit(t).result()

    def test_no_switch_below_window(self):
        db = AdaptiveVCScheduler(window=50)
        drain_window(db, 10)
        assert db.switches == []


class TestCorrectnessAcrossSwitches:
    def test_history_serializable_across_mode_changes(self):
        db = AdaptiveVCScheduler(window=6, high_watermark=0.2, low_watermark=0.1)
        # Alternate conflict storms (drive to 2PL) and calm phases (back to
        # OCC), checking the unified history at the end.
        for phase in range(4):
            if phase % 2 == 0:
                for _ in range(8):
                    if db.mode == "2pl":
                        # Under 2PL the racing pattern would block; run the
                        # increments back-to-back instead.
                        t = db.begin()
                        v = db.read(t, "hot").result() or 0
                        db.write(t, "hot", v + 1).result()
                        db.commit(t).result()
                        continue
                    a, b = db.begin(), db.begin()
                    va = db.read(a, "hot").result() or 0
                    vb = db.read(b, "hot").result() or 0
                    db.write(a, "hot", va + 1).result()
                    db.write(b, "hot", vb + 1).result()
                    db.commit(a)
                    db.commit(b)
            else:
                drain_window(db, 8)
        assert len(db.switches) >= 1, "at least one adaptation happened"
        report = assert_one_copy_serializable(db.history)
        assert report.serializable

    def test_simulated_run_is_serializable_and_adapts(self):
        db = AdaptiveVCScheduler(window=20, high_watermark=0.15, low_watermark=0.02)
        metrics = run_simulation(
            db, write_heavy_hotspot(seed=3), SimConfig(duration=400.0, n_clients=10)
        )
        assert metrics.serializable is True
        assert metrics.counter("cc.ro") == 0, "RO path untouched by adaptation"

    def test_balanced_run_deterministic(self):
        def once():
            db = AdaptiveVCScheduler(window=10)
            m = run_simulation(db, balanced(seed=9), SimConfig(duration=200.0, n_clients=6))
            return m.commits, m.aborts, tuple(db.switches)

        assert once() == once()
