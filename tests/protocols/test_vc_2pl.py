"""Scripted-interleaving tests for VC + two-phase locking (paper Figure 4)."""

import pytest

from repro.core.transaction import SN_INFINITY
from repro.errors import (
    AbortReason,
    DeadlockError,
    ProtocolError,
    TransactionAborted,
)
from repro.histories import assert_one_copy_serializable
from repro.protocols import VC2PLScheduler


@pytest.fixture
def db():
    return VC2PLScheduler()


class TestFigure4Trace:
    """The exact action sequence of Figure 4, step by step."""

    def test_begin_sets_sn_infinity(self, db):
        t = db.begin()
        assert t.sn == SN_INFINITY
        assert t.tn is None, "no transaction number until the lock point"

    def test_read_takes_shared_lock_and_reads_latest(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        t = db.begin()
        assert db.read(t, "x").result() == 1
        assert db.locks.holds(t.txn_id, "x", db.locks.holders("x")[t.txn_id])

    def test_write_stages_privately_with_version_phi(self, db):
        t = db.begin()
        db.write(t, "x", 99).result()
        # Not installed: the store still shows only the initial version.
        assert db.store.object("x").latest().tn == 0
        assert t.write_set == {"x": 99}

    def test_commit_registers_installs_releases_completes(self, db):
        t = db.begin()
        db.write(t, "x", 7).result()
        db.commit(t).result()
        assert t.tn == 1
        assert db.store.object("x").latest().tn == 1
        assert db.locks.is_idle()
        assert db.vc.vtnc == 1

    def test_tn_assigned_in_lock_point_order(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "a", 1).result()
        db.write(t1, "b", 2).result()
        db.commit(t2).result()  # t2 reaches its lock point first
        db.commit(t1).result()
        assert t2.tn == 1
        assert t1.tn == 2


class TestLockInteractions:
    def test_writer_blocks_reader(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        r = db.begin()
        f = db.read(r, "x")
        assert f.pending, "reader waits for the writer's X lock"
        db.commit(w).result()
        assert f.result() == 1, "after commit the reader sees the new version"

    def test_reader_blocks_writer(self, db):
        r = db.begin()
        db.read(r, "x").result()
        w = db.begin()
        f = db.write(w, "x", 5)
        assert f.pending
        db.commit(r).result()
        assert f.done

    def test_shared_readers_coexist(self, db):
        a, b = db.begin(), db.begin()
        assert db.read(a, "x").done
        assert db.read(b, "x").done

    def test_read_own_staged_write(self, db):
        t = db.begin()
        db.write(t, "x", 10).result()
        assert db.read(t, "x").result() == 10

    def test_upgrade_read_then_write(self, db):
        t = db.begin()
        db.read(t, "x").result()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert db.store.read_latest_committed("x").value == 1


class TestDeadlock:
    def test_deadlock_victim_aborts_and_survivor_proceeds(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "y", 2).result()
        f1 = db.write(t1, "y", 3)
        assert f1.pending
        f2 = db.write(t2, "x", 4)
        # t2 closed the cycle: it is the victim under the default policy.
        assert f2.failed
        assert isinstance(f2.error, DeadlockError)
        assert t2.state.value == "aborted"
        assert t2.abort_reason is AbortReason.DEADLOCK_VICTIM
        assert f1.done, "survivor's blocked write was granted"
        db.commit(t1).result()
        assert_one_copy_serializable(db.history)

    def test_deadlock_counter(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "y", 2).result()
        db.write(t1, "y", 3)
        db.write(t2, "x", 4)
        assert db.counters.get("deadlock") == 1
        assert db.counters.get("abort.rw.deadlock_victim") == 1

    def test_registered_transactions_never_deadlock(self, db):
        """Section 4.4: past the lock point there are no pending requests."""
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert not db.locks.waits_for.is_waiting(t.txn_id)


class TestReadOnlyIndependence:
    """Figure 2 behavior under the 2PL instantiation."""

    def test_ro_sees_snapshot_not_uncommitted(self, db):
        w0 = db.begin()
        db.write(w0, "x", 1).result()
        db.commit(w0).result()
        w = db.begin()
        db.write(w, "x", 2).result()  # holds X lock
        r = db.begin(read_only=True)
        f = db.read(r, "x")
        assert f.done, "read-only read is never blocked, even by an X lock"
        assert f.result() == 1
        db.commit(w).result()
        assert db.read(r, "x").result() == 1, "snapshot is stable"
        db.commit(r).result()

    def test_ro_does_not_touch_lock_manager(self, db):
        r = db.begin(read_only=True)
        db.read(r, "x").result()
        db.commit(r).result()
        assert db.counters.get("cc.ro") == 0
        assert db.locks.is_idle()

    def test_ro_write_rejected(self, db):
        r = db.begin(read_only=True)
        with pytest.raises(ProtocolError, match="read-only"):
            db.write(r, "x", 1)

    def test_ro_snapshot_excludes_delayed_visibility(self, db):
        """A committed-but-invisible transaction stays invisible to new ROs."""
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "a", 1).result()
        db.write(t2, "b", 2).result()
        # Commit both; visibility is immediate here because commits are
        # atomic — instead simulate delayed visibility via VC directly.
        db.commit(t1).result()
        r = db.begin(read_only=True)
        assert r.sn == 1
        db.commit(t2).result()
        assert db.read(r, "b").result() is None, "t2 invisible at sn=1"


class TestOperationsAfterEnd:
    def test_read_after_commit_rejected(self, db):
        t = db.begin()
        db.commit(t).result()
        with pytest.raises(ProtocolError):
            db.read(t, "x")

    def test_user_abort_discards_writes(self, db):
        t = db.begin()
        db.write(t, "x", 5).result()
        db.abort(t)
        assert db.store.object("x").latest().tn == 0
        assert db.locks.is_idle()

    def test_abort_is_idempotent(self, db):
        t = db.begin()
        db.abort(t)
        db.abort(t)
        assert db.counters.get("abort.rw") == 1


class TestSerializabilityEndToEnd:
    def test_mixed_workload_history_is_1sr(self, db):
        for i in range(5):
            w = db.begin()
            db.write(w, f"k{i % 2}", i).result()
            db.commit(w).result()
            r = db.begin(read_only=True)
            db.read(r, "k0").result()
            db.read(r, "k1").result()
            db.commit(r).result()
        report = assert_one_copy_serializable(db.history)
        assert report.transactions == 10
