"""Tests for VC + forward-validation OCC (wound-the-readers)."""

import pytest

from repro.errors import AbortReason, TransactionAborted
from repro.histories import assert_one_copy_serializable
from repro.protocols.vc_occ_forward import VCOCCForwardScheduler
from tests.stress.driver import RandomDriver


@pytest.fixture
def db():
    return VCOCCForwardScheduler()


class TestCommitterNeverFails:
    def test_clean_commit(self, db):
        t = db.begin()
        db.write(t, "x", 1).result()
        assert db.commit(t).done
        assert t.tn == 1

    def test_committer_wins_even_when_stale_elsewhere(self, db):
        """Unlike backward validation, the committer never aborts."""
        t1 = db.begin()
        db.read(t1, "x").result()
        db.write(t1, "x", 1).result()
        t2 = db.begin()
        db.read(t2, "x").result()
        db.write(t2, "x", 2).result()
        assert db.commit(t1).done
        # t2 was wounded by t1's commit (it read x, t1 wrote x).
        f = db.commit(t2)
        assert f.failed
        assert t2.abort_reason is AbortReason.WOUNDED


class TestWounding:
    def test_active_reader_of_written_key_is_wounded(self, db):
        reader = db.begin()
        db.read(reader, "x").result()
        writer = db.begin()
        db.write(writer, "x", 5).result()
        db.commit(writer).result()
        assert reader.state.value == "aborted"
        assert reader.abort_reason is AbortReason.WOUNDED
        assert db.counters.get("occ.wounded") == 1

    def test_wounded_txn_discovers_on_next_op(self, db):
        reader = db.begin()
        db.read(reader, "x").result()
        writer = db.begin()
        db.write(writer, "x", 5).result()
        db.commit(writer).result()
        f = db.read(reader, "y")
        assert f.failed
        with pytest.raises(TransactionAborted):
            f.result()

    def test_wounded_commit_fails_gracefully(self, db):
        reader = db.begin()
        db.read(reader, "x").result()
        writer = db.begin()
        db.write(writer, "x", 5).result()
        db.commit(writer).result()
        assert db.commit(reader).failed

    def test_nonconflicting_active_txns_survive(self, db):
        bystander = db.begin()
        db.read(bystander, "y").result()
        writer = db.begin()
        db.write(writer, "x", 5).result()
        db.commit(writer).result()
        assert bystander.is_active
        db.commit(bystander).result()

    def test_blind_writers_not_wounded(self, db):
        blind = db.begin()
        db.write(blind, "x", 1).result()   # writes x but never read it
        writer = db.begin()
        db.write(writer, "x", 2).result()
        db.commit(writer).result()
        assert blind.is_active, "write-write is ordered by tn, no wound"
        db.commit(blind).result()
        assert_one_copy_serializable(db.history)

    def test_read_only_transactions_never_wounded(self, db):
        w0 = db.begin()
        db.write(w0, "x", 1).result()
        db.commit(w0).result()
        ro = db.begin(read_only=True)
        db.read(ro, "x").result()
        writer = db.begin()
        db.write(writer, "x", 2).result()
        db.commit(writer).result()
        assert ro.is_active
        assert db.read(ro, "x").result() == 1, "snapshot intact"
        db.commit(ro).result()
        assert db.counters.get("occ.wounded") == 0


class TestSerializability:
    def test_contended_increments_no_lost_updates(self, db):
        db.store.preload({"c": 0})
        committed = 0
        for _ in range(10):
            a, b = db.begin(), db.begin()
            va = db.read(a, "c").result()
            db.write(a, "c", va + 1).result()
            fb = db.read(b, "c")
            if not fb.failed:
                db.write(b, "c", fb.result() + 1)
            for txn in (a, b):
                f = db.commit(txn)
                if not f.failed:
                    committed += 1
        assert db.store.read_latest_committed("c").value == committed
        assert_one_copy_serializable(db.history)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_interleavings_serializable(self, seed):
        db = VCOCCForwardScheduler()
        driver = RandomDriver(db, seed=seed)
        driver.run(250)
        assert_one_copy_serializable(db.history)
        assert db.counters.get("cc.ro") == 0
        assert db.vc.lag == 0
