"""Tests for VC + 2PL over intention locks (the swapped-CC demonstration)."""

import pytest

from repro.errors import ProtocolError
from repro.histories import assert_one_copy_serializable
from repro.protocols.vc_granular import VCGranular2PLScheduler
from tests.stress.driver import RandomDriver


@pytest.fixture
def db():
    return VCGranular2PLScheduler()


def seed(db, n=5):
    setup = db.begin()
    for i in range(n):
        db.write(setup, f"k{i}", i).result()
    db.commit(setup).result()


class TestFigure4Semantics:
    """The scheduler must behave exactly like vc-2pl at the protocol level."""

    def test_roundtrip(self, db):
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert t.tn == 1
        r = db.begin(read_only=True)
        assert db.read(r, "x").result() == 1
        db.commit(r).result()

    def test_writer_blocks_reader(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        r = db.begin()
        f = db.read(r, "x")
        assert f.pending
        db.commit(w).result()
        assert f.result() == 1

    def test_deadlock_resolution(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "y", 2).result()
        db.write(t1, "y", 3)
        f = db.write(t2, "x", 4)
        assert f.failed
        db.commit(t1).result()
        assert_one_copy_serializable(db.history)

    def test_ro_takes_no_locks(self, db):
        seed(db)
        r = db.begin(read_only=True)
        db.read(r, "k0").result()
        db.commit(r).result()
        assert db.counters.get("cc.ro") == 0
        assert db.locks.is_idle()


class TestScan:
    def test_rw_scan_reads_everything_under_one_root_lock(self, db):
        seed(db, 8)
        grants_before = db.locks.grants
        t = db.begin()
        values = db.scan(t).result()
        assert len(values) == 8
        assert db.locks.grants == grants_before + 1, "one root S, no leaf locks"
        db.commit(t).result()

    def test_scan_blocks_behind_concurrent_writer(self, db):
        seed(db)
        w = db.begin()
        db.write(w, "k0", 99).result()
        t = db.begin()
        f = db.scan(t)
        assert f.pending, "root S waits for the writer's IX to clear"
        db.commit(w).result()
        assert f.result()["k0"] == 99
        db.commit(t).result()
        assert_one_copy_serializable(db.history)

    def test_writer_blocks_behind_scanner(self, db):
        seed(db)
        t = db.begin()
        db.scan(t).result()
        w = db.begin()
        f = db.write(w, "k0", 99)
        assert f.pending
        db.commit(t).result()
        assert f.done
        db.commit(w).result()

    def test_scan_then_write_same_txn(self, db):
        """SIX conversion: scan everything, then update one key."""
        seed(db)
        t = db.begin()
        values = db.scan(t).result()
        db.write(t, "k0", values["k0"] + 100).result()
        db.commit(t).result()
        r = db.begin(read_only=True)
        assert db.read(r, "k0").result() == 100

    def test_ro_scan_is_lock_free(self, db):
        seed(db)
        w = db.begin()
        db.write(w, "k0", 99).result()  # active writer holds X
        r = db.begin(read_only=True)
        values = db.scan(r).result()
        assert values["k0"] == 0, "snapshot scan ignores the writer"
        db.commit(w).result()
        db.commit(r).result()

    def test_snapshot_scan_rejects_rw(self, db):
        t = db.begin()
        with pytest.raises(ProtocolError):
            db.snapshot_scan(t)


class TestStress:
    @pytest.mark.parametrize("seed_value", range(4))
    def test_random_interleavings_serializable(self, seed_value):
        db = VCGranular2PLScheduler()
        driver = RandomDriver(db, seed=seed_value)
        driver.run(250)
        assert_one_copy_serializable(db.history)
        assert db.locks.is_idle()
        assert db.counters.get("cc.ro") == 0
