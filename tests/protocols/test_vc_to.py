"""Scripted-interleaving tests for VC + timestamp ordering (paper Figure 3)."""

import pytest

from repro.errors import AbortReason, TransactionAborted
from repro.histories import assert_one_copy_serializable
from repro.protocols import VCTOScheduler


@pytest.fixture
def db():
    return VCTOScheduler()


class TestFigure3Trace:
    def test_begin_registers_and_sets_sn_to_tn(self, db):
        t = db.begin()
        assert t.tn == 1
        assert t.sn == 1
        assert db.vc.is_registered(t)

    def test_read_updates_object_rts(self, db):
        t = db.begin()
        db.read(t, "x").result()
        assert db.store.object("x").max_r_ts == t.tn

    def test_write_creates_pending_version(self, db):
        t = db.begin()
        db.write(t, "x", 5).result()
        v = db.store.object("x").latest()
        assert v.tn == t.tn
        assert v.pending

    def test_commit_clears_pending_and_completes(self, db):
        t = db.begin()
        db.write(t, "x", 5).result()
        db.commit(t).result()
        assert not db.store.object("x").latest().pending
        assert db.vc.vtnc == t.tn

    def test_late_write_after_read_rejected(self, db):
        """Figure 3: IF r-ts(x) > tn(T) THEN abort(T)."""
        t1 = db.begin()  # tn=1
        t2 = db.begin()  # tn=2
        db.read(t2, "x").result()  # r-ts(x) = 2
        f = db.write(t1, "x", 9)
        assert f.failed
        with pytest.raises(TransactionAborted):
            f.result()
        assert t1.abort_reason is AbortReason.TIMESTAMP_REJECTED
        assert not t1.abort_caused_by_readonly

    def test_late_write_after_write_rejected(self, db):
        """Figure 3: IF w-ts(x) > tn(T) THEN abort(T)."""
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "x", 2).result()  # w-ts(x) = 2
        f = db.write(t1, "x", 1)
        assert f.failed
        assert t1.abort_reason is AbortReason.TIMESTAMP_REJECTED

    def test_aborted_writer_discards_version_and_vcqueue_entry(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "x", 2).result()
        db.write(t1, "x", 1)  # rejected -> t1 aborted
        assert db.store.object("x").find(t1.tn) is None
        assert not db.vc.is_registered(t1)
        db.commit(t2).result()
        assert db.vc.vtnc == t2.tn, "vtnc jumps across the discarded number"


class TestPendingWriteBlocking:
    def test_read_blocks_on_older_pending_write(self, db):
        t1 = db.begin()  # tn=1
        t2 = db.begin()  # tn=2
        db.write(t1, "x", 10).result()
        f = db.read(t2, "x")
        assert f.pending, "read waits for the older pending write"
        db.commit(t1).result()
        assert f.result() == 10

    def test_read_unblocked_by_writer_abort_falls_back(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 10).result()
        f = db.read(t2, "x")
        db.abort(t1)
        assert f.result() is None, "falls back to the initial version"

    def test_write_blocks_behind_older_pending_write(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.write(t1, "x", 1).result()
        f = db.write(t2, "x", 2)
        assert f.pending
        db.commit(t1).result()
        assert f.done
        db.commit(t2).result()
        assert db.store.read_latest_committed("x").value == 2

    def test_read_own_pending_write(self, db):
        t = db.begin()
        db.write(t, "x", 3).result()
        assert db.read(t, "x").result() == 3

    def test_rewrite_own_version(self, db):
        t = db.begin()
        db.write(t, "x", 3).result()
        db.write(t, "x", 4).result()
        db.commit(t).result()
        assert db.store.read_latest_committed("x").value == 4

    def test_chain_of_blocked_readers(self, db):
        t1 = db.begin()
        readers = [db.begin() for _ in range(3)]
        db.write(t1, "x", 1).result()
        futures = [db.read(r, "x") for r in readers]
        assert all(f.pending for f in futures)
        db.commit(t1).result()
        assert all(f.result() == 1 for f in futures)


class TestDelayedVisibility:
    def test_out_of_order_commit_delays_vtnc(self, db):
        t1 = db.begin()  # tn=1
        t2 = db.begin()  # tn=2
        db.write(t2, "y", 2).result()
        db.commit(t2).result()
        assert db.vc.vtnc == 0, "t2's updates invisible while t1 active"
        r = db.begin(read_only=True)
        assert db.read(r, "y").result() is None
        db.commit(t1).result()
        assert db.vc.vtnc == 2
        r2 = db.begin(read_only=True)
        assert db.read(r2, "y").result() == 2

    def test_ro_snapshot_never_hits_pending_version(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()  # pending at tn=1
        r = db.begin(read_only=True)
        f = db.read(r, "x")
        assert f.done, "read-only reads are never blocked"
        assert f.result() is None


class TestReadOnlyIndependence:
    def test_ro_zero_cc_interactions(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        r = db.begin(read_only=True)
        db.read(r, "x").result()
        db.commit(r).result()
        assert db.counters.get("cc.ro") == 0

    def test_ro_reads_do_not_update_rts(self, db):
        """The crucial difference from Reed's MVTO (paper Section 2)."""
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        rts_before = db.store.object("x").max_r_ts
        r = db.begin(read_only=True)
        db.read(r, "x").result()
        db.commit(r).result()
        assert db.store.object("x").max_r_ts == rts_before

    def test_ro_cannot_cause_rw_abort(self, db):
        """A read-only read of x never forces a writer of x to abort."""
        w0 = db.begin()
        db.write(w0, "x", 0).result()
        db.commit(w0).result()
        old_writer = db.begin()  # tn=2
        ro = db.begin(read_only=True)  # sn=1
        db.read(ro, "x").result()
        f = db.write(old_writer, "x", 5)
        assert f.done, "the read-only reader is invisible to the writer"
        db.commit(old_writer).result()
        db.commit(ro).result()
        assert db.counters.get("abort.rw.caused_by_readonly") == 0
        assert_one_copy_serializable(db.history)


class TestSerializabilityEndToEnd:
    def test_interleaved_rw_and_ro_history_is_1sr(self, db):
        t1 = db.begin()
        t2 = db.begin()
        r = db.begin(read_only=True)
        db.write(t1, "a", 1).result()
        db.read(t2, "a")           # blocks on t1's pending write
        db.read(r, "a").result()   # snapshot read, never blocks
        db.commit(t1).result()
        db.write(t2, "b", 2).result()
        db.commit(t2).result()
        db.commit(r).result()
        report = assert_one_copy_serializable(db.history)
        assert report.serializable
