"""Tests for VC + optimistic concurrency control (paper refs [1, 2])."""

import pytest

from repro.errors import AbortReason, ValidationError
from repro.histories import assert_one_copy_serializable
from repro.protocols import VCOCCScheduler


@pytest.fixture
def db():
    return VCOCCScheduler()


class TestReadPhase:
    def test_reads_never_block(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        assert db.read(t2, "x").done, "no locks: reads proceed immediately"

    def test_reads_see_latest_committed(self, db):
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        t = db.begin()
        assert db.read(t, "x").result() == 1

    def test_writes_staged_privately(self, db):
        t = db.begin()
        db.write(t, "x", 9).result()
        assert db.store.object("x").latest().tn == 0

    def test_read_own_write(self, db):
        t = db.begin()
        db.write(t, "x", 9).result()
        assert db.read(t, "x").result() == 9


class TestValidation:
    def test_clean_commit_validates(self, db):
        t = db.begin()
        db.read(t, "x").result()
        db.write(t, "y", 1).result()
        assert db.commit(t).done
        assert t.tn == 1

    def test_stale_read_fails_validation(self, db):
        t1 = db.begin()
        db.read(t1, "x").result()       # reads version 0
        t2 = db.begin()
        db.write(t2, "x", 5).result()
        db.commit(t2).result()          # installs version 1
        f = db.commit(t1)
        assert f.failed
        with pytest.raises(ValidationError):
            f.result()
        assert t1.abort_reason is AbortReason.VALIDATION_FAILED

    def test_blind_writers_both_commit(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "x", 2).result()
        db.commit(t1).result()
        db.commit(t2).result()
        assert db.store.read_latest_committed("x").value == 2
        assert_one_copy_serializable(db.history)

    def test_validation_ignores_own_writes(self, db):
        t = db.begin()
        db.write(t, "x", 1).result()
        db.read(t, "x").result()  # own write
        assert db.commit(t).done

    def test_first_committer_wins(self, db):
        t1, t2 = db.begin(), db.begin()
        db.read(t1, "x").result()
        db.write(t1, "x", 1).result()
        db.read(t2, "x").result()
        db.write(t2, "x", 2).result()
        assert db.commit(t1).done
        assert db.commit(t2).failed
        assert db.counters.get("abort.rw.validation_failed") == 1


class TestVersionControlIntegration:
    def test_tn_assigned_in_validation_order(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t2, "a", 1).result()
        db.write(t1, "b", 2).result()
        db.commit(t2).result()
        db.commit(t1).result()
        assert t2.tn == 1 and t1.tn == 2

    def test_vtnc_tracks_commits(self, db):
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        assert db.vc.vtnc == 1

    def test_aborted_validation_leaves_no_vc_trace(self, db):
        t1, t2 = db.begin(), db.begin()
        db.read(t1, "x").result()
        db.write(t2, "x", 1).result()
        db.commit(t2).result()
        db.commit(t1)  # fails validation
        assert db.vc.lag == 0
        assert len(db.vc) == 0


class TestReadOnlyIndependence:
    def test_ro_needs_no_validation(self, db):
        """The very overhead refs [1,2] set out to eliminate."""
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        r = db.begin(read_only=True)
        db.read(r, "x").result()
        db.commit(r).result()
        assert db.counters.get("cc.ro") == 0
        assert db.counters.get("cc.ro.validate") == 0

    def test_ro_snapshot_stable_across_concurrent_commits(self, db):
        w0 = db.begin()
        db.write(w0, "x", 1).result()
        db.commit(w0).result()
        r = db.begin(read_only=True)
        w = db.begin()
        db.write(w, "x", 2).result()
        db.commit(w).result()
        assert db.read(r, "x").result() == 1
        db.commit(r).result()
        assert_one_copy_serializable(db.history)

    def test_ro_never_invalidates_writers(self, db):
        r = db.begin(read_only=True)
        db.read(r, "x").result()
        w = db.begin()
        db.write(w, "x", 2).result()
        assert db.commit(w).done
        db.commit(r).result()
        assert db.counters.get("abort.rw") == 0


class TestSerializabilityEndToEnd:
    def test_contended_counter_increments_are_1sr(self, db):
        db.store.preload({"c": 0})
        committed = 0
        for _ in range(10):
            a, b = db.begin(), db.begin()
            va = db.read(a, "c").result()
            vb = db.read(b, "c").result()
            db.write(a, "c", va + 1).result()
            db.write(b, "c", vb + 1).result()
            for txn in (a, b):
                if not db.commit(txn).failed:
                    committed += 1
        final = db.store.read_latest_committed("c").value
        assert final == committed, "no lost updates"
        assert_one_copy_serializable(db.history)
