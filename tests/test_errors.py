"""Tests for the error taxonomy."""

import pytest

from repro.errors import (
    AbortReason,
    DeadlockError,
    FutureNotReady,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TransactionAborted,
    ValidationError,
    VersionNotFound,
)


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (
            TransactionAborted,
            DeadlockError,
            ValidationError,
            VersionNotFound,
            ProtocolError,
            FutureNotReady,
            InvariantViolation,
        ):
            assert issubclass(cls, ReproError)

    def test_deadlock_and_validation_are_aborts(self):
        assert issubclass(DeadlockError, TransactionAborted)
        assert issubclass(ValidationError, TransactionAborted)
        # ...so one except-clause catches every protocol-initiated abort.
        with pytest.raises(TransactionAborted):
            raise DeadlockError(5, (1, 2, 1))


class TestTransactionAborted:
    def test_message_includes_reason(self):
        err = TransactionAborted(3, AbortReason.TIMESTAMP_REJECTED)
        assert "transaction 3" in str(err)
        assert "timestamp_rejected" in str(err)

    def test_detail_appended(self):
        err = TransactionAborted(3, AbortReason.USER_REQUESTED, detail="why")
        assert str(err).endswith("why")

    def test_caused_by_readonly_flag(self):
        err = TransactionAborted(
            3, AbortReason.TIMESTAMP_REJECTED, caused_by_readonly=True
        )
        assert err.caused_by_readonly


class TestSpecificErrors:
    def test_deadlock_carries_cycle(self):
        err = DeadlockError(2, cycle=(1, 2, 1))
        assert err.cycle == (1, 2, 1)
        assert err.reason is AbortReason.DEADLOCK_VICTIM

    def test_validation_carries_conflict(self):
        err = ValidationError(4, conflicting_txn=9)
        assert err.conflicting_txn == 9
        assert err.reason is AbortReason.VALIDATION_FAILED

    def test_version_not_found_carries_key_and_bound(self):
        err = VersionNotFound("x", 7)
        assert err.key == "x"
        assert err.bound == 7
        assert "<= 7" in str(err)

    def test_abort_reason_values_unique(self):
        values = [reason.value for reason in AbortReason]
        assert len(values) == len(set(values))
