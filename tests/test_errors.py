"""Tests for the error taxonomy."""

import pytest

from repro.errors import (
    CONTENTION_REASONS,
    INFRASTRUCTURE_REASONS,
    NONRETRYABLE_REASONS,
    RETRYABLE_REASONS,
    AbortReason,
    DeadlockError,
    FutureNotReady,
    InvariantViolation,
    ProtocolError,
    QuorumUnavailable,
    ReproError,
    SnapshotTooOld,
    TransactionAborted,
    ValidationError,
    VersionNotFound,
    is_infrastructure,
    is_retryable,
)


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (
            TransactionAborted,
            DeadlockError,
            ValidationError,
            VersionNotFound,
            ProtocolError,
            FutureNotReady,
            InvariantViolation,
        ):
            assert issubclass(cls, ReproError)

    def test_deadlock_and_validation_are_aborts(self):
        assert issubclass(DeadlockError, TransactionAborted)
        assert issubclass(ValidationError, TransactionAborted)
        # ...so one except-clause catches every protocol-initiated abort.
        with pytest.raises(TransactionAborted):
            raise DeadlockError(5, (1, 2, 1))


class TestTransactionAborted:
    def test_message_includes_reason(self):
        err = TransactionAborted(3, AbortReason.TIMESTAMP_REJECTED)
        assert "transaction 3" in str(err)
        assert "timestamp_rejected" in str(err)

    def test_detail_appended(self):
        err = TransactionAborted(3, AbortReason.USER_REQUESTED, detail="why")
        assert str(err).endswith("why")

    def test_caused_by_readonly_flag(self):
        err = TransactionAborted(
            3, AbortReason.TIMESTAMP_REJECTED, caused_by_readonly=True
        )
        assert err.caused_by_readonly


class TestSpecificErrors:
    def test_deadlock_carries_cycle(self):
        err = DeadlockError(2, cycle=(1, 2, 1))
        assert err.cycle == (1, 2, 1)
        assert err.reason is AbortReason.DEADLOCK_VICTIM

    def test_validation_carries_conflict(self):
        err = ValidationError(4, conflicting_txn=9)
        assert err.conflicting_txn == 9
        assert err.reason is AbortReason.VALIDATION_FAILED

    def test_version_not_found_carries_key_and_bound(self):
        err = VersionNotFound("x", 7)
        assert err.key == "x"
        assert err.bound == 7
        assert "<= 7" in str(err)

    def test_abort_reason_values_unique(self):
        values = [reason.value for reason in AbortReason]
        assert len(values) == len(set(values))

    def test_snapshot_too_old_carries_sn_and_cause(self):
        err = SnapshotTooOld(7, sn=3, cause="lease_expired")
        assert err.sn == 3
        assert err.cause == "lease_expired"
        assert err.reason is AbortReason.SNAPSHOT_TOO_OLD
        assert "sn=3" in str(err)
        assert "lease_expired" in str(err)

    def test_snapshot_too_old_defaults_to_memory_pressure(self):
        err = SnapshotTooOld(7, sn=3)
        assert err.cause == "memory_pressure"
        # One except-clause catches it alongside every protocol abort.
        assert isinstance(err, TransactionAborted)

    def test_snapshot_too_old_is_retryable_contention(self):
        err = SnapshotTooOld(7, sn=3)
        assert is_retryable(err)
        # The database shedding memory load must not trip circuit breakers.
        assert not is_infrastructure(err)


class TestClassificationPartitions:
    """Every AbortReason lands in exactly one side of each partition.

    The import-time asserts in repro.errors enforce the same thing, but
    a failed module import points nowhere; these name the stray member.
    """

    def test_retryable_partition_is_exhaustive_and_disjoint(self):
        unclassified = frozenset(AbortReason) - RETRYABLE_REASONS - NONRETRYABLE_REASONS
        assert not unclassified, f"unclassified retryability: {sorted(r.value for r in unclassified)}"
        both = RETRYABLE_REASONS & NONRETRYABLE_REASONS
        assert not both, f"doubly classified: {sorted(r.value for r in both)}"

    def test_cause_partition_is_exhaustive_and_disjoint(self):
        unclassified = frozenset(AbortReason) - INFRASTRUCTURE_REASONS - CONTENTION_REASONS
        assert not unclassified, f"unclassified cause: {sorted(r.value for r in unclassified)}"
        both = INFRASTRUCTURE_REASONS & CONTENTION_REASONS
        assert not both, f"doubly classified: {sorted(r.value for r in both)}"

    def test_snapshot_too_old_membership(self):
        assert AbortReason.SNAPSHOT_TOO_OLD in RETRYABLE_REASONS
        assert AbortReason.SNAPSHOT_TOO_OLD in CONTENTION_REASONS

    def test_quorum_unavailable_membership(self):
        # Retryable (the cluster heals itself; the retry lands on the new
        # primary) and infrastructure (circuit breakers must see it).
        assert AbortReason.QUORUM_UNAVAILABLE in RETRYABLE_REASONS
        assert AbortReason.QUORUM_UNAVAILABLE in INFRASTRUCTURE_REASONS


class TestQuorumUnavailable:
    def test_carries_epoch_and_fencing_flavour(self):
        err = QuorumUnavailable(7, epoch=3, fenced=True)
        assert err.epoch == 3
        assert err.fenced is True
        assert err.reason is AbortReason.QUORUM_UNAVAILABLE
        assert "fenced" in str(err)

    def test_indeterminate_flavour_says_so(self):
        err = QuorumUnavailable(7, epoch=3)
        assert err.fenced is False
        assert "indeterminate" in str(err)
        # One except-clause catches it alongside every protocol abort.
        assert isinstance(err, TransactionAborted)

    def test_retryable_infrastructure(self):
        err = QuorumUnavailable(7, epoch=0, fenced=True)
        assert is_retryable(err)
        assert is_infrastructure(err)
