"""Randomized direct-interleaving driver.

Unlike the simulator (which interleaves at operation-service granularity
under a virtual clock), this driver interleaves *scheduler calls* directly
and adversarially: at every step it picks a random live transaction and a
random legal action, including beginning new transactions while others are
blocked mid-operation.  It explores interleavings the closed-loop simulator
rarely produces — e.g. many writers queued on one lock with readers arriving
between grants — and it keeps every transaction descriptor so tests can
check the paper's lemmas against ground truth.

Respecting the Section 3 transaction model: at most one read and one write
per (transaction, key), reads precede writes on the same key.
"""

from __future__ import annotations

import random

from repro.core.futures import OpFuture
from repro.core.interface import Scheduler
from repro.core.transaction import Transaction


class _Client:
    __slots__ = ("txn", "future", "reads", "writes", "ops_budget")

    def __init__(self, txn: Transaction, ops_budget: int):
        self.txn = txn
        self.future: OpFuture | None = None
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.ops_budget = ops_budget

    @property
    def waiting(self) -> bool:
        return self.future is not None and self.future.pending


class RandomDriver:
    """Adversarial random interleaver over one scheduler."""

    def __init__(
        self,
        scheduler: Scheduler,
        seed: int,
        n_keys: int = 8,
        max_active: int = 6,
        ro_fraction: float = 0.3,
    ):
        self.scheduler = scheduler
        self.rng = random.Random(seed)
        self.keys = [f"k{i}" for i in range(n_keys)]
        self.max_active = max_active
        self.ro_fraction = ro_fraction
        self.active: list[_Client] = []
        #: Every transaction ever begun, with its final descriptor state.
        self.all_txns: list[Transaction] = []

    # -- actions -----------------------------------------------------------------

    def _begin(self) -> None:
        read_only = self.rng.random() < self.ro_fraction
        txn = self.scheduler.begin(read_only=read_only)
        self.all_txns.append(txn)
        self.active.append(_Client(txn, ops_budget=self.rng.randint(1, 6)))

    def _retire(self, client: _Client) -> None:
        self.active.remove(client)

    def _handle_future(self, client: _Client) -> None:
        """Absorb the outcome of the client's last operation."""
        future = client.future
        if future is None or future.pending:
            return
        client.future = None
        if future.failed:
            # Protocol abort (deadlock victim, timestamp rejection,
            # validation failure): the client gives up.
            self.scheduler.abort(client.txn)
            self._retire(client)

    def _issue(self, client: _Client) -> None:
        txn = client.txn
        finish = client.ops_budget <= 0 or self.rng.random() < 0.2
        if finish:
            client.future = self.scheduler.commit(txn)
            self._handle_future(client)
            if client in self.active and client.future is None:
                self._retire(client)
            return
        client.ops_budget -= 1
        if txn.is_read_only:
            candidates = [k for k in self.keys if k not in client.reads]
            if not candidates:
                client.future = self.scheduler.commit(txn)
                self._handle_future(client)
                if client in self.active and client.future is None:
                    self._retire(client)
                return
            key = self.rng.choice(candidates)
            client.reads.add(key)
            client.future = self.scheduler.read(txn, key)
        else:
            do_write = self.rng.random() < 0.5
            if do_write:
                candidates = [k for k in self.keys if k not in client.writes]
            else:
                # Reads may not follow the transaction's own write (model).
                candidates = [
                    k
                    for k in self.keys
                    if k not in client.reads and k not in client.writes
                ]
            if not candidates:
                client.future = self.scheduler.commit(txn)
            elif do_write:
                key = self.rng.choice(candidates)
                client.writes.add(key)
                client.future = self.scheduler.write(txn, key, self.rng.random())
            else:
                key = self.rng.choice(candidates)
                client.reads.add(key)
                client.future = self.scheduler.read(txn, key)
        self._handle_future(client)
        if (
            client in self.active
            and client.future is None
            and client.txn.is_finished
        ):
            self._retire(client)

    # -- main loop ------------------------------------------------------------------

    def step(self) -> None:
        # Absorb any futures resolved by other transactions' progress.
        for client in list(self.active):
            self._handle_future(client)
            if client.txn.is_finished and client in self.active:
                self._retire(client)
        runnable = [c for c in self.active if not c.waiting]
        can_begin = len(self.active) < self.max_active
        if can_begin and (not runnable or self.rng.random() < 0.35):
            self._begin()
            return
        if runnable:
            self._issue(self.rng.choice(runnable))

    def drain(self, limit: int = 10_000) -> None:
        """Finish every remaining transaction."""
        for _ in range(limit):
            for client in list(self.active):
                self._handle_future(client)
                if client.txn.is_finished and client in self.active:
                    self._retire(client)
            if not self.active:
                return
            runnable = [c for c in self.active if not c.waiting]
            if runnable:
                self._issue(self.rng.choice(runnable))
            else:
                # Everyone is blocked: break the jam by aborting one waiter.
                victim = self.rng.choice(self.active)
                self.scheduler.abort(victim.txn)
                self._retire(victim)
        raise AssertionError("drain did not converge")  # pragma: no cover

    def run(self, steps: int = 300) -> None:
        for _ in range(steps):
            self.step()
        self.drain()
