"""Adversarial random-interleaving stress tests for every protocol.

Each run explores a different interleaving of direct scheduler calls; after
the run the full battery of invariants is checked: one-copy serializability,
clean shutdown of every synchronization structure, and — for the VC
protocols — the paper's read-only guarantees.
"""

import pytest

from repro.histories import assert_one_copy_serializable
from repro.protocols.registry import PROTOCOLS, VC_PROTOCOLS, make_scheduler
from tests.stress.driver import RandomDriver

SEEDS = range(6)

#: Protocols safe to drive through the adversarial interleaver.
STRESSABLE = sorted(set(PROTOCOLS) - {"vc-2pl-wal"}) + ["vc-2pl-wal"]


def run_driver(name: str, seed: int, steps: int = 250) -> RandomDriver:
    scheduler = make_scheduler(name)
    driver = RandomDriver(scheduler, seed=seed)
    driver.run(steps)
    return driver


@pytest.mark.parametrize("name", STRESSABLE)
@pytest.mark.parametrize("seed", SEEDS)
def test_history_serializable_under_adversarial_interleaving(name, seed):
    driver = run_driver(name, seed)
    assert_one_copy_serializable(driver.scheduler.history)


@pytest.mark.parametrize("name", STRESSABLE)
def test_synchronization_structures_drain_clean(name):
    driver = run_driver(name, seed=99)
    scheduler = driver.scheduler
    locks = getattr(scheduler, "locks", None)
    if locks is not None:
        assert locks.is_idle(), "locks leaked"
        assert not locks.waits_for.waiters(), "waits-for edges leaked"
    waiting = getattr(scheduler, "_waiting", None)
    if waiting is not None and hasattr(waiting, "is_empty"):
        assert waiting.is_empty(), "parked operations leaked"
    vc = getattr(scheduler, "vc", None)
    if vc is not None:
        assert len(vc) == 0, "VCQueue entries leaked"
        assert vc.lag == 0


@pytest.mark.parametrize("name", VC_PROTOCOLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_vc_read_only_guarantees_under_stress(name, seed):
    driver = run_driver(name, seed)
    counters = driver.scheduler.counters
    assert counters.get("cc.ro") == 0
    assert counters.get("block.ro") == 0
    assert counters.get("abort.rw.caused_by_readonly") == 0
    ro_aborts = counters.get("abort.ro")
    # The driver never aborts read-only transactions except to break jams,
    # which cannot involve them (they never wait): none should be aborted by
    # the protocol itself.
    assert ro_aborts == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_every_committed_value_was_written_by_its_version(seed):
    """Snapshot reads return exactly the value the creator wrote."""
    driver = run_driver("vc-2pl", seed)
    history = driver.scheduler.history.committed_projection()
    written: dict[tuple, float] = {}
    for txn in driver.all_txns:
        if txn.is_read_write and txn.tn is not None and not txn.is_active:
            for key, value in txn.write_set.items():
                written[(key, txn.tn)] = value
    store = driver.scheduler.store
    for key in store.keys():
        for version in store.object(key).versions():
            if version.tn == 0:
                continue
            assert written[(key, version.tn)] == version.value
