"""Smoke tests: every example script runs cleanly and prints its story.

Examples are documentation that executes; a broken one is a broken doc.
Each runs in a subprocess exactly as a reader would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

EXPECTED_SNIPPETS = {
    "quickstart.py": "one-copy serializable",
    "figure_traces.py": "Figure 4",
    "banking_audit.py": "balanced audits",
    "inventory_comparison.py": "vc-2pl",
    "distributed_branches.py": "globally 1SR",
    "crash_recovery.py": "after recovery",
    "adaptive_contention.py": "mode=2pl",
    "order_entry_demo.py": "invariant violations",
    "debugging_tools.py": "digraph MVSG",
    "replica_reads.py": "promoted replica",
    "long_scan.py": "SnapshotTooOld",
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    snippet = EXPECTED_SNIPPETS.get(path.name)
    if snippet is not None:
        assert snippet in result.stdout, (
            f"{path.name} output missing {snippet!r}"
        )


def test_every_example_has_an_expectation():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_SNIPPETS)
