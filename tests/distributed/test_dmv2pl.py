"""Tests for the distributed MV2PL baseline — including the ref [8] anomaly.

The paper's Section 2: the distributed variant of Chan's protocol (a) needs
a-priori knowledge of read sites and (b) "does not guarantee global
serializability of read-only transactions".  Both are demonstrated
executable here; the distributed VC database passes the same scenarios.
"""

import pytest

from repro.distributed import Courier, DistributedMV2PL, DistributedVCDatabase
from repro.errors import ProtocolError
from repro.histories import check_one_copy_serializable
from repro.histories.mvsg import multiversion_serialization_graph


def global_check(db: DistributedMV2PL):
    """Check global 1SR under the protocol's own version order."""
    projected = db.history.committed_projection()
    graph = multiversion_serialization_graph(projected, db.global_version_order())
    return graph.find_cycle()


class TestBasicOperation:
    def test_single_site_roundtrip(self):
        db = DistributedMV2PL(n_sites=2)
        t = db.begin()
        db.write(t, "s1:x", 5).result()
        db.commit(t).result()
        ro = db.begin(read_only=True, read_sites=[1])
        assert db.read(ro, "s1:x").result() == 5
        db.commit(ro).result()

    def test_cross_site_write_and_read(self):
        db = DistributedMV2PL(n_sites=2)
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.write(t, "s2:y", 2).result()
        db.commit(t).result()
        ro = db.begin(read_only=True, read_sites=[1, 2])
        assert db.read(ro, "s1:x").result() == 1
        assert db.read(ro, "s2:y").result() == 2
        db.commit(ro).result()

    def test_ctl_consulted_per_read(self):
        db = DistributedMV2PL(n_sites=1)
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.commit(t).result()
        ro = db.begin(read_only=True, read_sites=[1])
        db.read(ro, "s1:x").result()
        assert db.counters.get("ctl.membership_checks") >= 1
        assert db.counters.get("ctl.copied_entries") >= 1


class TestAPrioriKnowledge:
    def test_read_sites_required(self):
        db = DistributedMV2PL(n_sites=2)
        with pytest.raises(ProtocolError, match="a priori"):
            db.begin(read_only=True)

    def test_undeclared_site_rejected(self):
        db = DistributedMV2PL(n_sites=2)
        ro = db.begin(read_only=True, read_sites=[1])
        with pytest.raises(ProtocolError, match="not declared"):
            db.read(ro, "s2:y")

    def test_vc_database_has_no_such_requirement(self):
        db = DistributedVCDatabase(n_sites=2)
        ro = db.begin(read_only=True)  # no site list anywhere
        assert db.read(ro, "s1:x").done
        assert db.read(ro, "s2:y").done


class TestGlobalSerializabilityAnomaly:
    def _anomaly_schedule(self, db, courier):
        """The torn-read schedule.

        A read-only transaction R fetches site 1's snapshot, then a
        distributed update T commits at both sites, then R fetches site 2's
        snapshot: R sees pre-T state at site 1 and post-T state at site 2.
        """
        t0 = db.begin()
        f1 = db.write(t0, "s1:x", "old")
        f2 = db.write(t0, "s2:y", "old")
        courier.pump()
        f1.result(), f2.result()
        c0 = db.commit(t0)
        courier.pump()
        assert c0.done

        ro = db.begin(read_only=True, read_sites=[1, 2])
        courier.pump(1)  # fetch snapshot from site 1 only
        assert courier.pending() == 1, "site-2 fetch still in flight"

        t1 = db.begin()
        fx = db.write(t1, "s1:x", "new")
        fy = db.write(t1, "s2:y", "new")
        courier.defer(1)  # the slow site-2 fetch falls behind T1's messages
        courier.pump(2)
        fx.result(), fy.result()
        c1 = db.commit(t1)
        courier.defer(1)  # still behind T1's prepare/commit traffic
        courier.pump(4)  # T1 commits at BOTH sites inside R's fetch window
        assert c1.done

        courier.pump()  # R's delayed snapshot fetch (site 2) + reads
        x = db.read(ro, "s1:x")
        y = db.read(ro, "s2:y")
        courier.pump()
        db.commit(ro).result()
        return x.result(), y.result()

    def test_torn_read_occurs_under_dmv2pl(self):
        courier = Courier(manual=True)
        db = DistributedMV2PL(n_sites=2, courier=courier)
        x, y = self._anomaly_schedule(db, courier)
        assert (x, y) == ("old", "new"), "the reader saw half of T1"
        cycle = global_check(db)
        assert cycle is not None, "global history must NOT be 1SR"

    def test_same_schedule_is_safe_under_distributed_vc(self):
        """Point-for-point contrast: the VC database under the same
        interleaving gives the reader an all-or-nothing view."""
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        t0 = db.begin()
        f1, f2 = db.write(t0, "s1:x", "old"), db.write(t0, "s2:y", "old")
        courier.pump()
        f1.result(), f2.result()
        c0 = db.commit(t0)
        courier.pump()
        assert c0.done

        ro = db.begin(read_only=True)  # single global start number

        t1 = db.begin()
        fx, fy = db.write(t1, "s1:x", "new"), db.write(t1, "s2:y", "new")
        courier.pump()
        fx.result(), fy.result()
        c1 = db.commit(t1)
        courier.pump()
        assert c1.done

        x, y = db.read(ro, "s1:x"), db.read(ro, "s2:y")
        courier.pump()
        db.commit(ro).result()
        assert (x.result(), y.result()) == ("old", "old")
        assert check_one_copy_serializable(db.history).serializable

    def test_randomized_runs_quantify_the_gap(self):
        """Random cross-site traffic: dMV2PL occasionally produces torn
        global views; distributed VC never does.  (EXP-J scales this up.)"""
        import random

        def run_dmv2pl(seed):
            rng = random.Random(seed)
            courier = Courier(manual=True)
            db = DistributedMV2PL(n_sites=2, courier=courier)
            outcomes = []
            for i in range(12):
                t = db.begin()
                db.write(t, "s1:a", i)
                db.write(t, "s2:b", i)
                db.commit(t)
                if rng.random() < 0.7:
                    ro = db.begin(read_only=True, read_sites=[1, 2])
                    fa = db.read(ro, "s1:a")
                    fb = db.read(ro, "s2:b")
                    outcomes.append((ro, fa, fb))
                # Deliver a random number of queued messages: interleaving.
                courier.pump(rng.randint(1, 6))
            courier.pump()
            torn = 0
            for ro, fa, fb in outcomes:
                db.commit(ro)
                if fa.done and fb.done and fa.result() != fb.result():
                    torn += 1
            return torn, global_check(db)

        torn_total = 0
        cycles = 0
        for seed in range(12):
            torn, cycle = run_dmv2pl(seed)
            torn_total += torn
            cycles += 1 if cycle is not None else 0
        assert torn_total > 0, "the anomaly should appear across seeds"
        assert cycles > 0, "some global histories must be non-1SR"
