"""Tests for the message courier (delivery modes, channels, reordering)."""

import pytest

from repro.distributed.courier import Courier
from repro.sim.engine import Simulator


class TestImmediateMode:
    def test_dispatch_runs_synchronously(self):
        courier = Courier()
        seen = []
        courier.dispatch(lambda: seen.append(1))
        assert seen == [1]
        assert courier.delivered == 1


class TestManualMode:
    def test_messages_queue_until_pumped(self):
        courier = Courier(manual=True)
        seen = []
        courier.dispatch(lambda: seen.append(1))
        courier.dispatch(lambda: seen.append(2))
        assert seen == []
        assert courier.pending() == 2
        courier.pump(1)
        assert seen == [1]
        courier.pump()
        assert seen == [1, 2]

    def test_pump_runs_newly_enqueued_messages(self):
        courier = Courier(manual=True)
        seen = []

        def first():
            seen.append("a")
            courier.dispatch(lambda: seen.append("b"))

        courier.dispatch(first)
        courier.pump()
        assert seen == ["a", "b"]

    def test_defer_rotates_head_to_tail(self):
        courier = Courier(manual=True)
        seen = []
        courier.dispatch(lambda: seen.append(1))
        courier.dispatch(lambda: seen.append(2))
        courier.defer(1)
        courier.pump()
        assert seen == [2, 1]

    def test_defer_more_than_pending_is_safe(self):
        courier = Courier(manual=True)
        courier.dispatch(lambda: None)
        courier.defer(10)
        assert courier.pending() == 1

    def test_channel_filtered_pump(self):
        courier = Courier(manual=True)
        seen = []
        courier.dispatch(lambda: seen.append("d1"))
        courier.dispatch(lambda: seen.append("s1"), channel="snapshot")
        courier.dispatch(lambda: seen.append("d2"))
        courier.pump(channel="default")
        assert seen == ["d1", "d2"]
        assert courier.pending("snapshot") == 1
        courier.pump(channel="snapshot")
        assert seen == ["d1", "d2", "s1"]

    def test_channel_order_preserved_within_channel(self):
        courier = Courier(manual=True)
        seen = []
        for i in range(3):
            courier.dispatch(lambda i=i: seen.append(i), channel="snapshot")
        courier.pump(1, channel="snapshot")
        courier.pump(channel="snapshot")
        assert seen == [0, 1, 2]

    def test_unmatched_messages_keep_front_position(self):
        courier = Courier(manual=True)
        seen = []
        courier.dispatch(lambda: seen.append("s"), channel="snapshot")
        courier.dispatch(lambda: seen.append("d"))
        courier.pump(channel="default")
        courier.pump()  # unfiltered: snapshot message still deliverable
        assert seen == ["d", "s"]


class TestManualJitter:
    """Manual mode with a latency source: deterministic reordering by
    virtual arrival time (send tick + drawn latency)."""

    def test_constant_latency_keeps_fifo(self):
        courier = Courier(manual=True, latency=7.5)
        seen = []
        for i in range(4):
            courier.dispatch(lambda i=i: seen.append(i))
        courier.pump()
        assert seen == [0, 1, 2, 3], "uniform delay cannot reorder"

    def test_latency_callable_reorders_deliveries(self):
        delays = iter([10.0, 0.0])
        courier = Courier(manual=True, latency=lambda: next(delays))
        order = []
        courier.dispatch(lambda: order.append("slow"))
        courier.dispatch(lambda: order.append("fast"))
        courier.pump()
        assert order == ["fast", "slow"]

    def test_seeded_jitter_is_deterministic(self):
        import random

        def run(seed):
            rng = random.Random(seed)
            courier = Courier(manual=True, latency=lambda: rng.expovariate(0.5))
            order = []
            for i in range(20):
                courier.dispatch(lambda i=i: order.append(i))
            courier.pump()
            return order

        assert run(3) == run(3)
        assert run(3) != run(4), "different seeds draw different arrivals"
        assert sorted(run(3)) == list(range(20)), "reordered, never lost"

    def test_channel_latency_override_slows_one_path(self):
        courier = Courier(
            manual=True, latency=0.0, channel_latency={"snapshot": 100.0}
        )
        seen = []
        courier.dispatch(lambda: seen.append("snap"), channel="snapshot")
        courier.dispatch(lambda: seen.append("data"), channel="data")
        courier.pump()
        assert seen == ["data", "snap"], "the slow channel arrives last"

    def test_negative_latency_clamps_to_send_order(self):
        courier = Courier(manual=True, latency=-5.0)
        seen = []
        courier.dispatch(lambda: seen.append(1))
        courier.dispatch(lambda: seen.append(2))
        courier.pump()
        assert seen == [1, 2]


class TestSimulatedMode:
    def test_latency_schedules_on_the_clock(self):
        sim = Simulator()
        courier = Courier(sim=sim, latency=3.0)
        seen = []
        courier.dispatch(lambda: seen.append(sim.now))
        assert seen == []
        sim.run()
        assert seen == [3.0]

    def test_callable_latency(self):
        sim = Simulator()
        delays = iter([5.0, 1.0])
        courier = Courier(sim=sim, latency=lambda: next(delays))
        order = []
        courier.dispatch(lambda: order.append("slow"))
        courier.dispatch(lambda: order.append("fast"))
        sim.run()
        assert order == ["fast", "slow"], "latency reorders delivery"

    def test_sim_and_manual_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Courier(sim=Simulator(), manual=True)
