"""Tests for the distributed VC database (paper Section 6 / ref [3])."""

import pytest

from repro.distributed import Courier, DistributedVCDatabase
from repro.errors import ProtocolError
from repro.histories import assert_one_copy_serializable


@pytest.fixture
def db():
    return DistributedVCDatabase(n_sites=3)


class TestPlacement:
    def test_explicit_prefix_routing(self, db):
        assert db.site_of_key("s1:x").site_id == 1
        assert db.site_of_key("s3:y").site_id == 3

    def test_hash_routing_is_stable(self, db):
        first = db.site_of_key("unprefixed").site_id
        assert db.site_of_key("unprefixed").site_id == first


class TestReadWriteTransactions:
    def test_single_site_commit(self, db):
        t = db.begin()
        db.write(t, "s1:x", 10).result()
        db.commit(t).result()
        assert t.tn is not None
        r = db.begin()
        assert db.read(r, "s1:x").result() == 10
        db.commit(r).result()

    def test_cross_site_commit_uses_one_number_everywhere(self, db):
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.write(t, "s2:y", 2).result()
        db.write(t, "s3:z", 3).result()
        db.commit(t).result()
        for key, site in (("s1:x", 1), ("s2:y", 2), ("s3:z", 3)):
            version = db.sites[site].store.read_latest_committed(key)
            assert version.tn == t.tn, "same global number at every site"

    def test_number_agreement_takes_max_of_holds(self, db):
        # Pre-advance site 2's counter with local traffic.
        for _ in range(5):
            t = db.begin()
            db.write(t, "s2:local", 0).result()
            db.commit(t).result()
        cross = db.begin()
        db.write(cross, "s1:a", 1).result()
        db.write(cross, "s2:b", 2).result()
        db.commit(cross).result()
        from repro.distributed.gtn import counter_of
        assert counter_of(cross.tn) >= 6, "number reflects the busiest site"

    def test_conflicting_writers_serialize_by_locks(self, db):
        t1 = db.begin()
        db.write(t1, "s1:x", 1).result()
        t2 = db.begin()
        f = db.write(t2, "s1:x", 2)
        assert f.pending
        db.commit(t1).result()
        assert f.done
        db.commit(t2).result()
        assert t2.tn > t1.tn
        assert db.sites[1].store.read_latest_committed("s1:x").value == 2

    def test_cross_site_deadlock_detected(self, db):
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "s1:x", 1).result()
        db.write(t2, "s2:y", 2).result()
        f1 = db.write(t1, "s2:y", 3)
        assert f1.pending
        f2 = db.write(t2, "s1:x", 4)  # cycle spans sites 1 and 2
        assert f2.failed
        db.commit(t1).result()
        assert_one_copy_serializable(db.history)

    def test_abort_releases_everything(self, db):
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.write(t, "s2:y", 2).result()
        db.abort(t)
        assert db.sites[1].locks.is_idle()
        assert db.sites[2].locks.is_idle()
        r = db.begin()
        assert db.read(r, "s1:x").result() is None


class TestGlobalReadOnly:
    def test_no_a_priori_site_knowledge_needed(self, db):
        """Contrast with ref [8]: reads may roam to any site."""
        t = db.begin()
        db.write(t, "s2:y", 7).result()
        db.commit(t).result()
        ro = db.begin(read_only=True, origin_site=1, fresh=True)
        # Nothing was declared at begin; the read still works.
        assert db.read(ro, "s2:y").result() == 7
        db.commit(ro).result()

    def test_ro_takes_no_locks_anywhere(self, db):
        t = db.begin()
        db.write(t, "s1:x", 1).result()  # X lock held at site 1
        ro = db.begin(read_only=True, origin_site=2)
        f = db.read(ro, "s1:x")
        assert f.done, "read-only read ignores the lock"
        assert f.result() is None
        db.commit(t).result()
        db.commit(ro).result()

    def test_ro_snapshot_is_globally_consistent(self, db):
        """The distributed flagship property: a reader never sees half of a
        distributed transaction."""
        t0 = db.begin()
        db.write(t0, "s1:x", "old").result()
        db.write(t0, "s2:y", "old").result()
        db.commit(t0).result()
        ro = db.begin(read_only=True, origin_site=3)
        t1 = db.begin()
        db.write(t1, "s1:x", "new").result()
        db.write(t1, "s2:y", "new").result()
        db.commit(t1).result()
        x = db.read(ro, "s1:x").result()
        y = db.read(ro, "s2:y").result()
        assert (x, y) == ("old", "old"), "all-or-nothing view of t1"
        db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_ro_waits_for_site_visibility_with_delayed_messages(self):
        """With message delays, a reader's start number can outrun a slow
        site's visibility; the read waits on VC state and then proceeds."""
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        t = db.begin()
        fx = db.write(t, "s1:x", 1)
        fy = db.write(t, "s2:y", 2)
        courier.pump()
        fx.result(), fy.result()
        done = db.commit(t)
        courier.pump(2)  # both prepares; decide() ran; commits queued
        courier.pump(1)  # commit applied at site 1 only
        assert done.pending
        ro = db.begin(read_only=True, origin_site=1)
        assert ro.sn >= t.tn, "site 1 already shows t as visible"
        f = db.read(ro, "s2:y")
        courier.pump(1)  # deliver the read to site 2: must wait, not answer
        assert f.pending, "site 2's visibility has not caught up"
        courier.pump()   # deliver t's commit at site 2
        assert f.result() == 2, "now the full update is visible"
        assert done.done
        db.commit(ro).result()
        assert_one_copy_serializable(db.history)

    def test_idle_site_fast_forward(self, db):
        # Site 3 never sees traffic; a reader with a high sn from busy site 1
        # must not hang there.
        for i in range(3):
            t = db.begin()
            db.write(t, "s1:x", i).result()
            db.commit(t).result()
        ro = db.begin(read_only=True, origin_site=1)
        f = db.read(ro, "s3:quiet")
        assert f.done, "idle site fast-forwards its visibility"
        assert f.result() is None

    def test_ro_write_rejected(self, db):
        ro = db.begin(read_only=True)
        with pytest.raises(ProtocolError, match="read-only"):
            db.write(ro, "s1:x", 1)


class TestGlobalSerializability:
    def test_randomized_cross_site_workload_is_globally_1sr(self, db):
        import random

        rng = random.Random(42)
        keys = [f"s{s}:k{i}" for s in (1, 2, 3) for i in range(4)]
        for _ in range(40):
            if rng.random() < 0.4:
                ro = db.begin(read_only=True, origin_site=rng.randint(1, 3))
                for key in rng.sample(keys, 3):
                    db.read(ro, key).result()
                db.commit(ro).result()
            else:
                t = db.begin()
                for key in rng.sample(keys, 2):
                    db.write(t, key, rng.random()).result()
                db.commit(t).result()
        report = assert_one_copy_serializable(db.history)
        assert report.transactions >= 40
