"""Site crash and WAL-replay recovery in the distributed protocols.

Manual couriers stage the adversarial moments precisely: a crash with a
COMMIT in flight, a crash between prepare and decide, duplicated
deliveries racing recovery.  The invariants under test are the ones the
fault drills (``tests/faults/test_drill.py``) assert statistically:
committed writes survive, pre-decision transactions abort cleanly, decided
transactions commit exactly once, and histories stay one-copy
serializable.
"""

import pytest

from repro.distributed import Courier, DistributedMV2PL, DistributedVCDatabase
from repro.errors import AbortReason, ProtocolError, TransactionAborted
from repro.faults import FaultSchedule, FaultSpec, FaultyCourier
from repro.histories import assert_one_copy_serializable
from repro.sim.engine import Simulator


class TestDVCCrashRecovery:
    def test_committed_data_survives_crash_restart(self):
        db = DistributedVCDatabase(n_sites=2)
        t = db.begin()
        db.write(t, "s1:x", 41).result()
        db.write(t, "s2:y", 42).result()
        db.commit(t).result()
        lost = db.crash_restart_site(1)
        assert lost == 0, "everything was forced at commit"
        r = db.begin()
        assert db.read(r, "s1:x").result() == 41
        assert db.read(r, "s2:y").result() == 42
        db.commit(r).result()
        assert_one_copy_serializable(db.history)

    def test_pre_decision_transaction_aborts_on_crash(self):
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        t = db.begin()
        fx = db.write(t, "s1:x", 1)
        fy = db.write(t, "s2:y", 2)
        courier.pump()
        fx.result(), fy.result()
        done = db.commit(t)
        courier.pump(1)  # only site 1's prepare: no decision yet
        db.crash_restart_site(2)
        assert t.state.value == "aborted"
        assert done.failed
        with pytest.raises(TransactionAborted) as exc_info:
            done.result()
        assert exc_info.value.reason is AbortReason.SITE_FAILURE
        courier.pump()  # drain stale messages: all no-ops
        r = db.begin()
        check = db.read(r, "s1:x")
        courier.pump()
        assert check.result() is None, "nothing installed"
        finish = db.commit(r)
        courier.pump()
        finish.result()
        assert_one_copy_serializable(db.history)

    def test_in_doubt_commit_applied_during_recovery(self):
        """A decided transaction whose COMMIT is in flight to a crashing
        site is applied by recovery (presumed commit), and the late
        message delivery is a harmless no-op."""
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        t = db.begin()
        fx = db.write(t, "s1:x", 1)
        fy = db.write(t, "s2:y", 2)
        courier.pump()
        fx.result(), fy.result()
        done = db.commit(t)
        courier.pump(2)  # both prepares; decide() ran; commits queued
        courier.pump(1)  # commit applied at site 1 only
        assert done.pending and t.tn is not None
        db.crash_restart_site(2)
        assert done.done, "recovery applied the in-doubt commit"
        assert db.sites[2].store.read_latest_committed("s2:y").value == 2
        courier.pump()  # the original COMMIT message arrives late: no-op
        r = db.begin(read_only=True, origin_site=2)
        f = db.read(r, "s2:y")
        courier.pump()
        assert f.result() == 2
        db.commit(r).result()
        assert_one_copy_serializable(db.history)

    def test_recovered_counter_stays_above_existing_numbers(self):
        db = DistributedVCDatabase(n_sites=2)
        tns = []
        for i in range(3):
            t = db.begin()
            db.write(t, "s1:x", i).result()
            db.write(t, "s2:y", i).result()
            db.commit(t).result()
            tns.append(t.tn)
        db.crash_restart_site(1)
        t = db.begin()
        db.write(t, "s1:x", 99).result()
        db.commit(t).result()
        assert t.tn > max(tns), "no number reuse after restart"
        assert db.sites[1].store.read_latest_committed("s1:x").value == 99

    def test_lock_waiter_fails_on_crash(self):
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        t1 = db.begin()
        f1 = db.write(t1, "s1:x", 1)
        courier.pump()
        f1.result()
        t2 = db.begin()
        f2 = db.write(t2, "s1:x", 2)
        courier.pump()
        assert f2.pending, "t2 waits behind t1's exclusive lock"
        db.crash_restart_site(1)
        assert f2.failed
        with pytest.raises(TransactionAborted) as exc_info:
            f2.result()
        assert exc_info.value.reason is AbortReason.SITE_FAILURE
        assert t1.state.value == "aborted", "t1 was pre-decision at the site"
        assert t2.state.value == "aborted"

    def test_messages_park_while_site_down_and_replay_on_recovery(self):
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        db.crash_site(1)
        t = db.begin()
        result = db.write(t, "s1:x", 7)
        courier.pump()  # delivery parks at the dead site
        assert result.pending
        db.recover_site(1)
        courier.pump()
        assert result.done
        done = db.commit(t)
        courier.pump()
        done.result()
        assert db.sites[1].store.read_latest_committed("s1:x").value == 7

    def test_recover_requires_crashed_site(self):
        db = DistributedVCDatabase(n_sites=2)
        with pytest.raises(ProtocolError):
            db.recover_site(1)

    def test_duplicated_deliveries_are_idempotent(self):
        """Every message delivered twice: commits still apply exactly once."""
        courier = FaultyCourier(schedule=FaultSchedule(FaultSpec(duplicate=1.0)))
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        for i in range(4):
            t = db.begin()
            db.write(t, "s1:x", i).result()
            db.write(t, "s2:y", i).result()
            db.commit(t).result()
            chain = db.sites[1].store.object("s1:x")
            assert len([v for v in chain.versions() if v.tn == t.tn]) == 1
        assert_one_copy_serializable(db.history)

    def test_prepare_timeout_aborts_stalled_2pc(self):
        sim = Simulator()
        courier = FaultyCourier(
            schedule=FaultSchedule(
                FaultSpec(), seed=0,
                overrides={"2pc": FaultSpec(drop=0.0)},
            ),
            sim=sim,
        )
        db = DistributedVCDatabase(n_sites=2, courier=courier, prepare_timeout=10.0)
        courier.partition  # (FaultyCourier API available; not needed here)

        def client():
            t = db.begin()
            yield db.write(t, "s1:x", 1)
            yield db.write(t, "s2:y", 2)
            courier._held_channels.add("2pc")  # partition the commit path
            try:
                yield db.commit(t)
                raise AssertionError("commit should have timed out")
            except TransactionAborted as exc:
                assert exc.reason is AbortReason.PREPARE_TIMEOUT

        sim.spawn(client())
        sim.run()
        assert sim.all_finished()
        assert db.counters.get("2pc.prepare_timeouts") == 1


class TestVisibilityWaitLiveness:
    def test_parked_reader_fast_forwards_when_queue_drains(self):
        """Drill-found liveness bug: a reader with a start number from a
        busy site parks at a quieter site while its VC queue is non-empty;
        when the queue drains, visibility must fast-forward past the quiet
        site's own idle frontier or the reader wedges forever."""
        courier = Courier(manual=True)
        db = DistributedVCDatabase(n_sites=2, courier=courier)
        for i in range(3):  # push site 2's counter well past site 1's
            t = db.begin()
            db.write(t, "s2:y", i)
            courier.pump()
            done = db.commit(t)
            courier.pump()
            done.result()
        t = db.begin()
        db.write(t, "s1:x", 7)
        courier.pump()
        done = db.commit(t)
        courier.pump(1)  # site 1's prepare: hold registered, queue non-empty
        r = db.begin(read_only=True, origin_site=2)
        assert r.sn > db.sites[1].vc.vtnc
        read = db.read(r, "s1:x")
        courier.pump(1)  # the read parks: site 1 cannot advance yet
        assert read.pending
        courier.pump()  # commit applies; the drained queue must fast-forward
        assert read.result() == 7
        done.result()


class TestDMV2PLCrashRecovery:
    def test_committed_data_survives_crash_restart(self):
        db = DistributedMV2PL(n_sites=2)
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.write(t, "s2:y", 2).result()
        db.commit(t).result()
        lost = db.crash_restart_site(1)
        assert lost == 0
        r = db.begin()
        assert db.read(r, "s1:x").result() == 1
        db.commit(r).result()

    def test_active_transaction_aborts_on_crash(self):
        db = DistributedMV2PL(n_sites=2)
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.crash_restart_site(1)
        assert t.state.value == "aborted"
        with pytest.raises(ProtocolError):
            db.read(t, "s1:x")

    def test_in_doubt_commit_applied_during_recovery(self):
        courier = Courier(manual=True)
        db = DistributedMV2PL(n_sites=2, courier=courier)
        t = db.begin()
        fx = db.write(t, "s1:x", 1)
        fy = db.write(t, "s2:y", 2)
        courier.pump()
        fx.result(), fy.result()
        done = db.commit(t)
        courier.pump(1)  # commit applied at site 1 only
        assert done.pending
        db.crash_restart_site(2)
        assert done.done, "recovery applied the in-doubt local commit"
        assert db.sites[2].store.read_latest_committed("s2:y").value == 2
        courier.pump()  # late COMMIT delivery: no-op

    def test_commit_counter_restarts_above_durable_numbers(self):
        db = DistributedMV2PL(n_sites=2)
        for i in range(3):
            t = db.begin()
            db.write(t, "s1:x", i).result()
            db.commit(t).result()
        before = db.sites[1].commit_counter
        db.crash_restart_site(1)
        assert db.sites[1].commit_counter == before
        t = db.begin()
        db.write(t, "s1:x", 99).result()
        db.commit(t).result()
        chain = db.sites[1].store.object("s1:x")
        tns = [v.tn for v in chain.versions()]
        assert tns == sorted(tns), "no number reuse after restart"
