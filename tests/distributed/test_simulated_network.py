"""Distributed runs under the simulator with random message latencies.

The manual-courier tests pick adversarial interleavings by hand; these runs
let a seeded latency distribution pick them, at scale, and check global
one-copy serializability plus the read-only guarantees end to end.
"""

import pytest

from repro.distributed import Courier, DistributedVCDatabase
from repro.errors import TransactionAborted
from repro.histories import assert_one_copy_serializable
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams


def run_distributed_sim(seed: int, n_sites: int = 3, duration: float = 400.0):
    sim = Simulator()
    streams = RandomStreams(seed)
    latency_rng = streams.stream("latency")
    courier = Courier(sim=sim, latency=lambda: latency_rng.expovariate(1.0))
    db = DistributedVCDatabase(n_sites=n_sites, courier=courier)
    rng = streams.stream("clients")
    keys = [f"s{s}:k{i}" for s in range(1, n_sites + 1) for i in range(4)]
    stats = {"rw_commits": 0, "rw_aborts": 0, "ro_commits": 0}

    def writer_client(_i: int):
        while sim.now < duration:
            yield rng.expovariate(0.3)
            if sim.now >= duration:
                return
            txn = db.begin()
            try:
                for key in rng.sample(keys, 2):
                    value = yield db.read(txn, key)
                    yield db.write(txn, key, (value or 0) + 1)
                yield db.commit(txn)
                stats["rw_commits"] += 1
            except TransactionAborted:
                db.abort(txn)
                stats["rw_aborts"] += 1

    def reader_client(_i: int):
        while sim.now < duration:
            yield rng.expovariate(0.4)
            if sim.now >= duration:
                return
            txn = db.begin(read_only=True, origin_site=rng.randint(1, n_sites))
            values = []
            for key in rng.sample(keys, 4):
                value = yield db.read(txn, key)
                values.append(value)
            yield db.commit(txn)
            stats["ro_commits"] += 1

    for i in range(4):
        sim.spawn(writer_client(i))
    for i in range(3):
        sim.spawn(reader_client(i))
    sim.run()
    return db, stats, sim


@pytest.mark.parametrize("seed", range(4))
def test_global_serializability_under_random_latency(seed):
    db, stats, sim = run_distributed_sim(seed)
    assert stats["rw_commits"] > 20
    assert stats["ro_commits"] > 20
    report = assert_one_copy_serializable(db.history)
    assert report.serializable


def test_read_only_never_takes_locks_in_sim():
    db, stats, _ = run_distributed_sim(seed=11)
    # Reads never appear in any site's lock table or waits-for graph.
    assert db.counters.get("cc.ro") == 0
    for site in db.sites.values():
        assert site.locks.is_idle()


def test_all_processes_finish():
    """No distributed transaction wedges under message delays."""
    db, _stats, sim = run_distributed_sim(seed=5)
    assert sim.all_finished(), [p.name for p in sim.blocked_processes()]


def test_deterministic_under_seed():
    a = run_distributed_sim(seed=7)[1]
    b = run_distributed_sim(seed=7)[1]
    assert a == b
