"""Distributed commits must yield one connected span tree per transaction.

The acceptance bar for the span layer: a 2PC commit that touches several
sites — coordinator bookkeeping, per-site prepare and commit legs, the
courier hops between them — reconstructs as a *single* tree rooted at the
transaction's ``txn`` span, and the critical path through that tree names
both 2PC legs.  Anything disconnected means a context was dropped at a
courier hop.
"""

from repro.distributed.courier import Courier
from repro.distributed.database import DistributedVCDatabase
from repro.distributed.dmv2pl import DistributedMV2PL
from repro.obs.exporters import RingBufferExporter
from repro.obs.instrument import attach_tracer
from repro.obs.profile import critical_path, phase_shares, site_shares
from repro.obs.spans import transaction_trees
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator


def traced_commit(make_db):
    """Run one two-site read-write transaction to commit under tracing."""
    sim = Simulator()
    ring = RingBufferExporter(capacity=65_536)
    tracer = Tracer(exporters=[ring], clock=lambda: sim.now)
    courier = Courier(sim=sim, latency=1.0)
    db = make_db(courier)
    instrumentation = attach_tracer(db, tracer)
    done = {}

    def proc():
        txn = db.begin()
        yield db.write(txn, "s1:a", 1)
        yield db.write(txn, "s2:b", 2)
        yield db.commit(txn)
        done["txn"] = txn

    sim.spawn(proc())
    sim.run()
    instrumentation.detach()
    assert "txn" in done, "transaction did not commit"
    events = [event.to_dict() for event in ring.events()]
    return done["txn"], transaction_trees(events), events


class TestDistributedVC2PC:
    def test_commit_produces_single_connected_tree(self):
        txn, trees, events = traced_commit(
            lambda courier: DistributedVCDatabase(n_sites=3, courier=courier)
        )
        root = trees[txn.txn_id]
        assert root.name == "txn" and root.ok is True
        # Connectedness: every span event of this trace is inside the tree.
        tree_ids = {n.span_id for n in root.walk() if n.span_id > 0}
        trace_ids = {
            e["span"]
            for e in events
            if e["name"] == "span.start" and e.get("trace") == root.trace_id
        }
        assert trace_ids == tree_ids

    def test_tree_spans_coordinator_and_participant_sites(self):
        txn, trees, _ = traced_commit(
            lambda courier: DistributedVCDatabase(n_sites=3, courier=courier)
        )
        root = trees[txn.txn_id]
        sites = {
            n.fields.get("site")
            for n in root.walk()
            if n.fields.get("site") is not None
        }
        assert {1, 2} <= sites  # both written sites ran 2PC legs
        names = {n.name for n in root.walk()}
        assert {"commit", "msg", "2pc.prepare", "2pc.commit"} <= names

    def test_critical_path_includes_prepare_and_commit_legs(self):
        txn, trees, _ = traced_commit(
            lambda courier: DistributedVCDatabase(n_sites=3, courier=courier)
        )
        names = critical_path(trees[txn.txn_id]).span_names()
        assert "2pc.prepare" in names
        assert "2pc.commit" in names
        assert names.index("2pc.prepare") < names.index("2pc.commit")

    def test_phase_and_site_attribution(self):
        txn, trees, _ = traced_commit(
            lambda courier: DistributedVCDatabase(n_sites=3, courier=courier)
        )
        root = trees[txn.txn_id]
        shares = phase_shares(root)
        assert sum(shares.values()) > 0.999
        assert shares.get("network", 0.0) > 0.0  # courier hops cost 1.0 each
        assert set(site_shares(root)) >= {"local"}


class TestDMV2PL2PC:
    def test_commit_produces_single_connected_tree(self):
        txn, trees, events = traced_commit(
            lambda courier: DistributedMV2PL(n_sites=3, courier=courier)
        )
        root = trees[txn.txn_id]
        assert root.name == "txn" and root.ok is True
        tree_ids = {n.span_id for n in root.walk() if n.span_id > 0}
        trace_ids = {
            e["span"]
            for e in events
            if e["name"] == "span.start" and e.get("trace") == root.trace_id
        }
        assert trace_ids == tree_ids

    def test_critical_path_includes_prepare_and_commit_legs(self):
        txn, trees, _ = traced_commit(
            lambda courier: DistributedMV2PL(n_sites=3, courier=courier)
        )
        names = critical_path(trees[txn.txn_id]).span_names()
        # One-phase commit: the forced-WAL durability point is the prepare
        # leg, the install/release step the commit leg — same arrival, so
        # they ride the path as ordered zero-length steps.
        assert "2pc.prepare" in names
        assert "2pc.commit" in names
        assert names.index("2pc.prepare") < names.index("2pc.commit")

    def test_both_written_sites_on_the_tree(self):
        txn, trees, _ = traced_commit(
            lambda courier: DistributedMV2PL(n_sites=3, courier=courier)
        )
        sites = {
            n.fields.get("site")
            for n in trees[txn.txn_id].walk()
            if n.fields.get("site") is not None
        }
        assert {1, 2} <= sites
