"""Property-based tests for distributed version control (hold/adopt/complete).

Randomized 2PC-shaped traffic over several sites: local transactions hold
and complete at one site; distributed transactions hold at many sites, adopt
the max, and complete everywhere.  Invariants checked throughout:

* per-site queues stay sorted and visibility never covers a pending entry;
* a site's visibility only advances;
* after everything completes, each site's visibility covers every number it
  ever saw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.dvc import DistributedVersionControl
from repro.distributed.gtn import counter_of

N_SITES = 3


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_property_random_two_phase_traffic(data):
    sites = {sid: DistributedVersionControl(sid) for sid in range(1, N_SITES + 1)}
    vtnc_floor = {sid: sites[sid].vtnc for sid in sites}
    # In-flight transactions: txn_key -> {site: hold} (pre-decision).
    inflight: dict[int, dict[int, int]] = {}
    decided: dict[int, tuple[int, set[int]]] = {}  # txn -> (final, remaining sites)
    next_txn = [1]
    seen_numbers: dict[int, set[int]] = {sid: set() for sid in sites}

    def check() -> None:
        for sid, vc in sites.items():
            assert vc.vtnc >= vtnc_floor[sid], "visibility regressed"
            vtnc_floor[sid] = vc.vtnc

    for _ in range(40):
        choices = ["begin"]
        if inflight:
            choices.append("decide")
        if decided:
            choices.append("commit_site")
        action = data.draw(st.sampled_from(choices))
        if action == "begin":
            txn = next_txn[0]
            next_txn[0] += 1
            n_parts = data.draw(st.integers(1, N_SITES))
            participants = data.draw(
                st.permutations(list(sites)).map(lambda p: p[:n_parts])
            )
            holds = {}
            for sid in participants:
                holds[sid] = sites[sid].hold(txn)
                seen_numbers[sid].add(holds[sid])
            inflight[txn] = holds
        elif action == "decide":
            txn = data.draw(st.sampled_from(sorted(inflight)))
            holds = inflight.pop(txn)
            final = max(holds.values())
            decided[txn] = (final, set(holds))
            for sid in holds:
                sites[sid].adopt(txn, final)
                seen_numbers[sid].add(final)
        else:
            txn = data.draw(st.sampled_from(sorted(decided)))
            final, remaining = decided[txn]
            sid = data.draw(st.sampled_from(sorted(remaining)))
            sites[sid].complete(txn)
            remaining.discard(sid)
            if not remaining:
                del decided[txn]
        check()

    # Drain everything.
    for txn, holds in list(inflight.items()):
        final = max(holds.values())
        for sid in holds:
            sites[sid].adopt(txn, final)
            seen_numbers[sid].add(final)
            sites[sid].complete(txn)
        del inflight[txn]
    for txn, (final, remaining) in list(decided.items()):
        for sid in list(remaining):
            sites[sid].complete(txn)
        del decided[txn]
    check()
    for sid, vc in sites.items():
        assert vc.queue_length() == 0
        for number in seen_numbers[sid]:
            assert vc.vtnc >= number, (
                f"site {sid} visibility {vc.vtnc} below seen number {number}"
            )


@settings(max_examples=100, deadline=None)
@given(
    local_counts=st.lists(st.integers(0, 5), min_size=3, max_size=3),
    target_counter=st.integers(1, 50),
)
def test_property_fast_forward_never_undermines_future_holds(local_counts, target_counter):
    """After try_advance_to, every future hold exceeds the advanced point."""
    from repro.distributed.gtn import make_gtn

    vc = DistributedVersionControl(site_id=2)
    for i, n in enumerate(local_counts):
        for _ in range(n):
            txn = (i + 1) * 100 + _
            vc.hold(txn)
            vc.complete(txn)
    target = make_gtn(target_counter, 3)
    if vc.try_advance_to(target):
        hold = vc.hold(999_999)
        assert hold > target
        assert hold > vc.vtnc