"""Tests for per-site distributed version control."""

import pytest

from repro.distributed.dvc import DistributedVersionControl
from repro.distributed.gtn import SITE_SPACE, counter_of, make_gtn, site_of
from repro.errors import InvariantViolation, ProtocolError


class TestGTN:
    def test_encoding_round_trip(self):
        g = make_gtn(7, 3)
        assert counter_of(g) == 7
        assert site_of(g) == 3

    def test_order_is_counter_major(self):
        assert make_gtn(2, 1) > make_gtn(1, 1023)
        assert make_gtn(1, 2) > make_gtn(1, 1)

    def test_uniqueness_across_sites(self):
        assert make_gtn(5, 1) != make_gtn(5, 2)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_gtn(1, 0)
        with pytest.raises(ValueError):
            make_gtn(1, SITE_SPACE)
        with pytest.raises(ValueError):
            make_gtn(0, 1)


class TestHoldAdopt:
    def test_hold_reserves_monotone_numbers(self):
        vc = DistributedVersionControl(site_id=1)
        h1 = vc.hold(100)
        h2 = vc.hold(101)
        assert h2 > h1
        assert site_of(h1) == 1

    def test_double_hold_rejected(self):
        vc = DistributedVersionControl(site_id=1)
        vc.hold(100)
        with pytest.raises(ProtocolError, match="already holds"):
            vc.hold(100)

    def test_adopt_same_number_is_noop_reorder(self):
        vc = DistributedVersionControl(site_id=1)
        h = vc.hold(100)
        vc.adopt(100, h)
        vc.complete(100)
        assert vc.vtnc >= h

    def test_adopt_larger_number_moves_entry_back(self):
        vc = DistributedVersionControl(site_id=1)
        vc.hold(100)               # h1 = (1,1)
        h2 = vc.hold(101)          # h2 = (2,1)
        remote = make_gtn(9, 2)
        vc.adopt(100, remote)      # entry for 100 moves behind 101's
        vc.complete(101)
        assert vc.vtnc >= h2, "101 is now the head and completes first"
        vc.complete(100)
        assert vc.vtnc >= remote

    def test_adopt_below_hold_rejected(self):
        vc = DistributedVersionControl(site_id=2)
        vc.hold(100)
        vc.hold(101)
        with pytest.raises(InvariantViolation, match="below the hold"):
            vc.adopt(101, make_gtn(1, 1))

    def test_adopt_advances_lamport_counter(self):
        vc = DistributedVersionControl(site_id=1)
        vc.hold(100)
        vc.adopt(100, make_gtn(50, 3))
        assert counter_of(vc.next_local_number) == 51

    def test_adopt_unknown_rejected(self):
        vc = DistributedVersionControl(site_id=1)
        with pytest.raises(ProtocolError):
            vc.adopt(999, make_gtn(1, 1))


class TestVisibility:
    def test_vtnc_advances_on_completion(self):
        vc = DistributedVersionControl(site_id=1)
        h = vc.hold(100)
        assert vc.vtnc < h
        vc.complete(100)
        assert vc.vtnc >= h

    def test_out_of_order_completion_delayed(self):
        vc = DistributedVersionControl(site_id=1)
        h1 = vc.hold(100)
        vc.hold(101)
        vc.complete(101)
        assert vc.vtnc < h1
        vc.complete(100)
        assert vc.vtnc >= make_gtn(2, 1)

    def test_discard_unblocks(self):
        vc = DistributedVersionControl(site_id=1)
        vc.hold(100)
        h2 = vc.hold(101)
        vc.complete(101)
        vc.discard(100)
        assert vc.vtnc >= h2

    def test_observer_fires_on_advance(self):
        seen = []
        vc = DistributedVersionControl(site_id=1)
        vc.subscribe(seen.append)
        vc.hold(100)
        vc.complete(100)
        assert seen and seen[-1] == vc.vtnc


class TestTryAdvance:
    def test_idle_site_fast_forwards(self):
        vc = DistributedVersionControl(site_id=1)
        target = make_gtn(40, 5)
        assert vc.try_advance_to(target)
        assert vc.vtnc >= target
        # Future holds must exceed the advanced visibility.
        assert vc.hold(100) > target

    def test_busy_site_refuses(self):
        vc = DistributedVersionControl(site_id=1)
        vc.hold(100)
        assert not vc.try_advance_to(make_gtn(40, 5))

    def test_already_visible_is_true(self):
        vc = DistributedVersionControl(site_id=1)
        h = vc.hold(100)
        vc.complete(100)
        assert vc.try_advance_to(h)
