"""Cluster tests: wiring, lag accounting, and promotion via recovery."""

import pytest

from repro.errors import ProtocolError, TransactionAborted
from repro.histories import assert_one_copy_serializable
from repro.replica.cluster import ReplicaCluster


def _commit(cluster, key, value):
    db = cluster.primary
    txn = db.begin()
    db.write(txn, key, value).result()
    db.commit(txn).result()
    return txn.tn


class TestClusterWiring:
    def test_every_commit_reaches_every_replica(self):
        cluster = ReplicaCluster(n_replicas=3)
        for i in range(4):
            _commit(cluster, f"k{i}", i)
        for replica in cluster.replicas.values():
            assert replica.vtnc == cluster.primary.vc.vtnc == 4
            assert cluster.lag_records(replica) == 0

    def test_pick_replica_round_robin(self):
        cluster = ReplicaCluster(n_replicas=3)
        picks = [cluster.pick_replica().replica_id for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_add_replica_catches_up_on_join(self):
        cluster = ReplicaCluster(n_replicas=1)
        _commit(cluster, "x", 1)
        late = cluster.add_replica()
        assert late.vtnc == cluster.primary.vc.vtnc

    def test_lag_txns_ground_truth(self):
        cluster = ReplicaCluster(n_replicas=1)
        _commit(cluster, "x", 1)
        replica = cluster.pick_replica()
        assert cluster.lag_txns(replica) == 0
        assert cluster.max_lag_txns() == 0


class TestFailOver:
    def test_promotes_most_advanced_replica(self):
        cluster = ReplicaCluster(n_replicas=2)
        _commit(cluster, "x", 1)
        old_vtnc = cluster.primary.vc.vtnc
        promoted = cluster.fail_over()
        assert promoted.replica_id not in cluster.replicas
        assert cluster.primary.vc.vtnc == old_vtnc
        assert cluster.epoch == 1
        assert cluster.promotions == 1

    def test_new_primary_continues_the_sequence(self):
        cluster = ReplicaCluster(n_replicas=2)
        _commit(cluster, "x", 1)
        cluster.fail_over()
        tn = _commit(cluster, "x", 2)
        assert tn == 2  # numbering resumes above the recovered prefix
        for replica in cluster.replicas.values():
            assert replica.vtnc == 2  # survivors follow the new primary
        assert_one_copy_serializable(cluster.primary.history)

    def test_survivors_adopt_new_epoch(self):
        cluster = ReplicaCluster(n_replicas=3)
        _commit(cluster, "x", 1)
        cluster.fail_over()
        for replica in cluster.replicas.values():
            assert replica.epoch == cluster.epoch == 1

    def test_in_flight_rw_aborted_with_site_failure(self):
        cluster = ReplicaCluster(n_replicas=1)
        db = cluster.primary
        txn = db.begin()
        db.write(txn, "x", 1).result()
        cluster.fail_over()
        assert not txn.is_active
        with pytest.raises((TransactionAborted, ProtocolError)):
            cluster.primary.read(txn, "x").result()

    def test_explicit_behind_replica_rejected(self):
        cluster = ReplicaCluster(n_replicas=2)
        _commit(cluster, "x", 1)
        # Hold replica 2 back by desubscribing it, then commit more.
        cluster.shipper.remove_replica(2)
        _commit(cluster, "x", 2)
        with pytest.raises(ProtocolError, match="behind"):
            cluster.fail_over(replica_id=2)

    def test_fail_over_requires_a_replica(self):
        cluster = ReplicaCluster(n_replicas=1)
        cluster.fail_over()
        with pytest.raises(ProtocolError, match="at least one"):
            cluster.fail_over()

    def test_unshipped_tail_is_lost_not_corrupting(self):
        # Commits that never reached any replica disappear at fail-over —
        # the async-replication trade — but the survivors stay consistent.
        cluster = ReplicaCluster(n_replicas=2)
        _commit(cluster, "x", 1)
        cluster.shipper.detach()          # simulate a total partition
        cluster.log.unsubscribe_force(cluster._ship_token)
        _commit(cluster, "x", 99)         # durable on the primary only
        cluster.fail_over()
        reader = cluster.primary.begin(read_only=True)
        assert cluster.primary.read(reader, "x").result() == 1
        _commit(cluster, "x", 2)
        for replica in cluster.replicas.values():
            assert replica.vtnc == cluster.primary.vc.vtnc
