"""Circuit breakers across a quorum fail-over: no pinning to the deposed primary.

The QoS breaker and the replication tier meet in one session-side pattern:
a breaker guards the *logical* primary ("the place my commits go"), trips
on the typed infrastructure errors a fail-over produces
(:class:`~repro.errors.QuorumUnavailable`), and its half-open probe must
land on whatever the cluster currently calls primary — re-fetched per
attempt — so a completed promotion closes the breaker instead of leaving
sessions pinned to the deposed incarnation forever.
"""

from repro.distributed.courier import Courier
from repro.errors import QuorumUnavailable, ReproError, is_retryable
from repro.qos.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.replica.cluster import ReplicaCluster
from repro.replica.quorum import ReplicationMode


class Clock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_cluster(n_replicas: int = 2):
    courier = Courier(manual=True)
    cluster = ReplicaCluster(
        n_replicas=n_replicas, courier=courier, mode=ReplicationMode.QUORUM
    )
    return cluster, courier


def probe_commit(cluster, courier, key="probe"):
    """One session attempt against the *current* primary (re-fetched)."""
    db = cluster.primary
    txn = db.begin()
    db.write(txn, key, 1).result()
    future = db.commit(txn)
    courier.pump()
    return future


class TestBreakerAcrossFailover:
    def test_quorum_unavailable_is_breaker_food(self):
        # The fail-over error must be the retryable infrastructure kind the
        # breaker counts — not a contention abort it must ignore.
        error = QuorumUnavailable(1, epoch=0, fenced=True)
        assert is_retryable(error)

    def test_breaker_opens_on_failover_and_probe_lands_on_new_primary(self):
        cluster, courier = make_cluster()
        clock = Clock()
        breaker = CircuitBreaker(
            name="primary", failure_threshold=2, recovery_time=10.0, clock=clock
        )

        # Two in-flight quorum commits; the primary dies before any ack.
        futures = []
        for _ in range(2):
            db = cluster.primary
            txn = db.begin()
            db.write(txn, f"k{txn.txn_id}", 1).result()
            futures.append(db.commit(txn))
        cluster.fail_over(crash_old=True)
        for future in futures:
            assert future.failed
            assert isinstance(future.error, QuorumUnavailable)
            breaker.record_failure()
        assert breaker.state == OPEN

        # While open the session fast-fails instead of hammering a primary
        # that cannot answer.
        assert not breaker.allow()
        assert breaker.fast_fails == 1

        # Recovery elapses: the single half-open probe goes through — and
        # because the session re-fetches cluster.primary, it reaches the
        # *promoted* scheduler, not the deposed one.
        clock.now = 10.0
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        promoted_epoch = cluster.epoch
        future = probe_commit(cluster, courier)
        assert future.done and not future.failed
        breaker.record_success()
        assert breaker.state == CLOSED
        assert cluster.epoch == promoted_epoch, "probe did not disturb the term"

        # The now-closed breaker serves ordinary traffic against the new
        # primary.
        assert breaker.allow()
        assert not probe_commit(cluster, courier).failed

    def test_deposed_primary_cannot_answer_a_probe(self):
        # The partition scenario: the deposed primary survives
        # (crash_old=False) and is never told.  A session pinned to the old
        # handle gets a probe that can never be acknowledged — its segments
        # bounce off the survivors' epoch guards — so the breaker re-opens
        # and only a re-fetching session recovers.
        cluster, courier = make_cluster()
        clock = Clock()
        breaker = CircuitBreaker(
            name="primary", failure_threshold=1, recovery_time=5.0, clock=clock
        )
        old_db = cluster.primary
        cluster.fail_over(crash_old=False)
        survivors = list(cluster.replicas.values())

        breaker.record_failure()  # the fail-over's first broken commit
        assert breaker.state == OPEN
        clock.now = 5.0
        assert breaker.allow()  # half-open probe

        # Pinned session: probes the *deposed* handle.
        txn = old_db.begin()
        old_db.write(txn, "pinned", 1).result()
        try:
            future = old_db.commit(txn)
        except ReproError:
            future = None
        courier.pump()
        if future is not None:
            # The commit entered the deposed pipeline but no valid-epoch
            # ack can ever arrive: the probe hangs (a timeout in real
            # deployments) or fails — it never succeeds.
            assert future.pending or future.failed
            assert any(r.segments_stale > 0 for r in survivors), (
                "the deposed primary's segments must be rejected by epoch"
            )
        breaker.record_failure()  # the session's probe timeout/failure
        assert breaker.state == OPEN
        assert breaker.trips == 2

        # The un-pinned retry: recovery elapses again, the probe re-fetches
        # cluster.primary, and the breaker closes on the promoted term.
        clock.now = 10.0
        assert breaker.allow()
        future = probe_commit(cluster, courier)
        assert future.done and not future.failed
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe_during_failover(self):
        # Concurrency discipline: while one probe is in flight against a
        # cluster mid-fail-over, other sessions keep fast-failing — the
        # promotion is not stampeded the moment recovery_time elapses.
        clock = Clock()
        breaker = CircuitBreaker(
            name="primary", failure_threshold=1, recovery_time=1.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        before = breaker.fast_fails
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.fast_fails == before + 2
