"""Campaign and bench smoke tests (short durations; CI runs the full drill)."""

from repro.replica.bench import run_replica_scaling, run_replica_sync
from repro.replica.campaign import run_replication_campaign


class TestReplicationCampaign:
    def test_seeded_campaign_passes(self):
        report = run_replication_campaign(seed=0, duration=80.0)
        assert report.ok, report.violations
        assert report.phase.rw_commits > 0
        assert report.phase.ro_commits > 0
        assert report.phase.promoted_replica is not None
        assert report.deterministic
        # Faults actually fired — the run exercised the lossy path.
        assert report.faults.get("drops", 0) > 0

    def test_quorum_mode_has_zero_rpo(self):
        # The same lossy campaign under quorum acks: nothing acknowledged
        # may sit above the promoted watermark.
        report = run_replication_campaign(
            seed=0, duration=80.0, mode="quorum", verify_determinism=False
        )
        assert report.ok, report.violations
        assert report.phase.rpo_txns == 0
        assert report.phase.promoted_replica is not None

    def test_async_mode_reports_rpo_as_replication_lag(self):
        report = run_replication_campaign(seed=0, duration=80.0)
        assert report.phase.rpo_txns == report.phase.failover_lag_txns

    def test_campaign_without_promotion(self):
        report = run_replication_campaign(
            seed=1, duration=60.0, promote=False, verify_determinism=False
        )
        assert report.ok, report.violations
        assert report.phase.promoted_replica is None

    def test_as_dict_round_trip(self):
        report = run_replication_campaign(
            seed=2, duration=50.0, verify_determinism=False
        )
        data = report.as_dict()
        assert data["ok"] == report.ok
        assert data["rw_commits"] == report.phase.rw_commits
        assert len(data["final_vtncs"]) == report.n_replicas - 1  # one promoted

    def test_slo_staleness_verdict_and_expected_lag_breach(self):
        report = run_replication_campaign(seed=0, duration=150.0)
        assert report.slo is not None
        assert report.slo["ok"], report.slo["breaches"]
        objectives = report.slo["objectives"]
        # The staleness-bound SLO held online, window by window.
        assert objectives["ro_staleness"]["violations"] == 0
        assert objectives["ro_staleness"]["windows"] > 0
        # The injected partitions spike primary-measured replica lag: an
        # *expected* breach — reported, flight-recorded, not failing.
        lag_breaches = [
            b for b in report.slo["breaches"] if b["objective"] == "replica_lag"
        ]
        assert lag_breaches and all(b["expected"] for b in lag_breaches)
        assert report.deterministic  # verdict equal under seeded replay

    def test_breach_bundle_contains_injected_cause(self):
        """The flight recorder's bundle window must hold the fault events
        that caused the expected replica-lag breach."""
        from repro.obs.slo import FlightRecorder, SLOEngine, replication_objectives
        from repro.replica.campaign import REPLICATION_SPEC, _run_phase

        engine = SLOEngine(
            replication_objectives(max_staleness=8, writers=4),
            window=150.0 / 16.0,
            recorder=FlightRecorder(capacity=16_384),
        )
        phase = _run_phase(
            0,
            duration=150.0,
            n_replicas=3,
            writers=4,
            readers=6,
            spec=REPLICATION_SPEC,
            max_staleness=8,
            promote_at=None,
            engine=engine,
        )
        assert phase.rw_commits > 0
        engine.finish()
        assert engine.expected_breaches
        assert engine.bundles
        bundle = engine.bundles[0]
        assert any(
            name.startswith("fault.") for name in bundle["event_tally"]
        ), bundle["event_tally"]
        # The breach window itself sits inside the bundle's slice.
        breach = bundle["breach"]
        assert bundle["window"][0] <= breach["window"][0]
        assert bundle["window"][1] == breach["window"][1]


class TestReplicaScalingBench:
    def test_ro_scales_rw_flat(self):
        block = run_replica_scaling(seed=0, duration=80.0)
        assert block["ok"], block["violations"]
        assert block["ro_speedup"] >= 2.0
        assert abs(block["rw_ratio"] - 1.0) <= 0.15
        # Comparator safety: the block is not shaped like a protocol entry.
        assert "throughput" not in block


class TestReplicaSyncBench:
    def test_quorum_pays_latency_not_correctness(self):
        block = run_replica_sync(seed=0, duration=150.0)
        assert block["ok"], block["violations"]
        # The quorum p50 carries at least one ship+ack round trip that
        # async never waits for.
        assert block["commit_p50_delta"] >= 2 * block["latency"]
        quorum = block["modes"]["quorum"]
        assert quorum["quorum_fenced"] == 0, "clean network must not fence"
        assert quorum["quorum_indeterminate"] == 0
        # Comparator safety: the block is not shaped like a protocol entry.
        assert "throughput" not in block
