"""Campaign and bench smoke tests (short durations; CI runs the full drill)."""

from repro.replica.bench import run_replica_scaling
from repro.replica.campaign import run_replication_campaign


class TestReplicationCampaign:
    def test_seeded_campaign_passes(self):
        report = run_replication_campaign(seed=0, duration=80.0)
        assert report.ok, report.violations
        assert report.phase.rw_commits > 0
        assert report.phase.ro_commits > 0
        assert report.phase.promoted_replica is not None
        assert report.deterministic
        # Faults actually fired — the run exercised the lossy path.
        assert report.faults.get("drops", 0) > 0

    def test_campaign_without_promotion(self):
        report = run_replication_campaign(
            seed=1, duration=60.0, promote=False, verify_determinism=False
        )
        assert report.ok, report.violations
        assert report.phase.promoted_replica is None

    def test_as_dict_round_trip(self):
        report = run_replication_campaign(
            seed=2, duration=50.0, verify_determinism=False
        )
        data = report.as_dict()
        assert data["ok"] == report.ok
        assert data["rw_commits"] == report.phase.rw_commits
        assert len(data["final_vtncs"]) == report.n_replicas - 1  # one promoted


class TestReplicaScalingBench:
    def test_ro_scales_rw_flat(self):
        block = run_replica_scaling(seed=0, duration=80.0)
        assert block["ok"], block["violations"]
        assert block["ro_speedup"] >= 2.0
        assert abs(block["rw_ratio"] - 1.0) <= 0.15
        # Comparator safety: the block is not shaped like a protocol entry.
        assert "throughput" not in block
