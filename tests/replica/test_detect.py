"""Failure detection: suspicion scores, vote quorums, automatic promotion."""

import pytest

from repro.errors import ProtocolError
from repro.faults.courier import FaultyCourier
from repro.faults.schedule import FaultSchedule
from repro.replica.cluster import ReplicaCluster
from repro.replica.detect import ClusterSupervisor, FailureDetector, HeartbeatConfig
from repro.replica.quorum import ReplicationMode
from repro.sim.engine import Simulator


def sim_cluster(n_replicas=3, mode=ReplicationMode.QUORUM, seed=0):
    sim = Simulator()
    courier = FaultyCourier(schedule=FaultSchedule(seed=seed), sim=sim, latency=0.1)
    cluster = ReplicaCluster(n_replicas=n_replicas, courier=courier, mode=mode)
    return sim, courier, cluster


FAST = HeartbeatConfig(
    interval=1.0, suspect_after=4.0, lease_ttl=3.0, commit_timeout=5.0
)


class TestHeartbeatConfig:
    def test_lease_must_not_outlive_suspicion(self):
        with pytest.raises(ValueError, match="lease_ttl"):
            HeartbeatConfig(suspect_after=5.0, lease_ttl=6.0)

    def test_safety_ordering_accepted_at_equality(self):
        config = HeartbeatConfig(suspect_after=5.0, lease_ttl=5.0)
        assert config.lease_ttl == config.suspect_after


class TestFailureDetector:
    def test_suspicion_grows_linearly_from_last_beat(self):
        detector = FailureDetector(suspect_after=8.0, now=0.0)
        assert detector.suspicion(4.0) == 0.5
        assert not detector.suspects(7.9)
        assert detector.suspects(8.0)

    def test_heartbeat_resets_the_clock(self):
        detector = FailureDetector(suspect_after=8.0, now=0.0)
        detector.on_heartbeat(6.0)
        assert not detector.suspects(13.9)
        assert detector.suspects(14.0)
        assert detector.beats == 1


class TestSupervisor:
    def test_needs_a_simulated_courier(self):
        cluster = ReplicaCluster(n_replicas=1)
        with pytest.raises(ProtocolError, match="simulated"):
            ClusterSupervisor(cluster)

    def test_healthy_cluster_never_fails_over(self):
        sim, courier, cluster = sim_cluster()
        supervisor = ClusterSupervisor(cluster, FAST, until=40.0)
        supervisor.start()
        sim.run()
        assert supervisor.auto_promotions == 0
        assert cluster.epoch == 0
        assert cluster.counters.get("detect.hb_acks") > 0

    def test_vote_quorum_is_full_cluster_majority(self):
        sim, courier, cluster = sim_cluster(n_replicas=3)
        supervisor = ClusterSupervisor(cluster, FAST, until=10.0)
        assert supervisor.vote_quorum() == 3, "majority of 4 members"

    def test_partitioned_primary_is_deposed_automatically(self):
        sim, courier, cluster = sim_cluster()
        supervisor = ClusterSupervisor(cluster, FAST, until=60.0)
        supervisor.start()
        held = []

        def cut():
            for rid in cluster.replicas:
                for channel in (f"hb.{rid}", f"hback.{rid}",
                                f"ship.{rid}", f"ack.{rid}"):
                    courier.partition(channel)
                    held.append(channel)

        def heal(_promoted):
            # The channels model the *old* primary's links; the promoted
            # primary sits on the majority side of the cut, so its links
            # to the survivors come back up.
            for channel in held:
                courier.heal(channel)
            held.clear()

        cluster.on_promote.append(heal)
        sim.call_in(10.0, cut)
        sim.run()
        assert supervisor.auto_promotions == 1
        assert cluster.epoch == 1
        assert cluster.counters.get("detect.suspicions") >= 3
        assert cluster.counters.get("detect.votes") >= 3

    def test_detection_latency_is_bounded(self):
        # Promotion must land within suspect_after + a few heartbeat
        # rounds of the cut — the availability SLO depends on it.
        sim, courier, cluster = sim_cluster()
        supervisor = ClusterSupervisor(cluster, FAST, until=60.0)
        supervisor.start()
        promoted_at = []
        cluster.on_promote.append(lambda r: promoted_at.append(sim.now))

        def cut():
            for rid in cluster.replicas:
                courier.partition(f"hb.{rid}")
                courier.partition(f"hback.{rid}")

        sim.call_in(10.0, cut)
        sim.run()
        assert promoted_at, "no automatic promotion"
        assert promoted_at[0] - 10.0 <= FAST.suspect_after + 3 * FAST.interval

    def test_supervisor_rearms_for_a_second_failover(self):
        sim, courier, cluster = sim_cluster(n_replicas=3)
        supervisor = ClusterSupervisor(cluster, FAST, until=120.0)
        supervisor.start()
        held = []

        def cut_primary_links():
            # The *current* replica set: works for both incarnations.
            for rid in cluster.replicas:
                for channel in (f"hb.{rid}", f"hback.{rid}"):
                    courier.partition(channel)
                    held.append(channel)

        def heal(_promoted):
            for channel in held:
                courier.heal(channel)
            held.clear()

        cluster.on_promote.append(heal)
        sim.call_in(10.0, cut_primary_links)
        sim.call_in(60.0, cut_primary_links)
        sim.run()
        assert supervisor.auto_promotions == 2
        assert cluster.epoch == 2

    def test_stale_epoch_heartbeats_do_not_refresh(self):
        # A frame carrying an older epoch than the replica's must not count
        # as a sign of life — the deposed primary cannot keep itself alive.
        sim, courier, cluster = sim_cluster(n_replicas=2)
        supervisor = ClusterSupervisor(cluster, FAST, until=5.0)
        supervisor.start()
        sim.run()
        rid = next(iter(cluster.replicas))
        detector = supervisor._detectors[rid]
        beats_before = detector.beats
        # Simulate a deposed primary's frame: replica epoch moved ahead.
        cluster.replicas[rid].epoch += 1
        supervisor.active = True
        supervisor._tick()
        sim.run()
        assert supervisor._detectors[rid].beats == beats_before, (
            "stale-epoch frame refreshed the detector"
        )
