"""Availability drill: automatic fail-over, RPO=0, crash-point sweep."""

import json

import pytest

from repro.replica.availability import (
    CRASH_POINTS,
    _run_crash_point,
    run_availability_campaign,
)


@pytest.fixture(scope="module")
def report():
    # One full campaign shared by the assertions below; determinism stays
    # on so the double-run comparison is exercised in the unit suite too.
    return run_availability_campaign(seed=0, duration=120.0)


class TestAvailabilityCampaign:
    def test_campaign_passes(self, report):
        assert report.ok, report.violations
        assert not report.phase.wedged

    def test_deterministic_under_fixed_seed(self, report):
        assert report.deterministic

    def test_failover_is_automatic_and_loses_nothing(self, report):
        phase = report.phase
        assert phase.auto_promotions == 1
        assert phase.rpo_txns == 0, "an acknowledged commit vanished"
        assert phase.rw_commits_post > 0, "writes never resumed"
        assert phase.epoch == 1

    def test_outage_window_is_measured_and_bounded(self, report):
        assert report.phase.outages
        assert max(report.phase.outages) <= report.max_outage

    def test_split_brain_is_fenced(self, report):
        assert report.phase.split_brain_fenced is True
        assert report.phase.stale_segments > 0, (
            "the deposed primary's segments never hit the epoch guard"
        )

    def test_slo_and_witness_ride_along(self, report):
        assert report.slo is not None
        assert report.witness is not None
        assert not report.witness.get("duplicate_commits")

    def test_as_dict_is_json_serializable(self, report):
        payload = report.as_dict()
        round_trip = json.loads(json.dumps(payload))
        assert round_trip["ok"] is True
        assert round_trip["rpo_txns"] == 0
        assert len(round_trip["crash_points"]) == len(CRASH_POINTS)


class TestCrashPointSweep:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_no_acknowledged_write_is_lost(self, point):
        result = _run_crash_point(point)
        assert result.ok
        assert result.lost_acked == 0
        assert result.recovered, "the healed cluster stopped committing"

    def test_inflight_fates_match_the_pipeline_stage(self):
        # Before the commit point there is nothing to lose; after it the
        # client was either told "failed" (never acked — free to retry) or
        # "acked" (and then the commit must be on the promoted timeline).
        expected = {
            "staged": "none",
            "forced": "failed",
            "minority_acked": "failed",
            "quorum_acked": "acked",
            "post_ack_inflight": "acked+failed",
        }
        assert set(expected) == set(CRASH_POINTS)
        for point, fate in expected.items():
            assert _run_crash_point(point).inflight == fate

    def test_quorum_acked_commit_is_on_the_promoted_timeline(self):
        result = _run_crash_point("quorum_acked")
        # Two seed commits plus the quorum-acked one were acknowledged
        # before the crash; all three sit at or below the promoted
        # watermark.  (The post-fail-over recovery commit lands above it.)
        assert result.promoted_vtnc >= 3
        assert 3 in result.acked
