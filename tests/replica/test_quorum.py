"""Quorum-acknowledged commits: gate arithmetic, group acks, lease fencing."""

import pytest

from repro.distributed.courier import Courier
from repro.errors import QuorumUnavailable
from repro.faults.courier import FaultyCourier
from repro.faults.schedule import FaultSchedule
from repro.replica.cluster import ReplicaCluster
from repro.replica.quorum import EpochLease, ReplicationMode
from repro.sim.engine import Simulator


def quorum_cluster(n_replicas=2, courier=None):
    return ReplicaCluster(
        n_replicas=n_replicas,
        courier=courier if courier is not None else Courier(manual=True),
        mode=ReplicationMode.QUORUM,
    )


def start_commit(cluster, key, value):
    db = cluster.primary
    txn = db.begin()
    db.write(txn, key, value).result()
    return txn, db.commit(txn)


class TestEpochLease:
    def test_unarmed_always_valid(self):
        clock = lambda: 1e9  # noqa: E731
        lease = EpochLease(0, ttl=1.0, clock=clock)
        assert lease.valid(majority=2)

    def test_startup_grace_of_one_ttl(self):
        now = [0.0]
        lease = EpochLease(0, ttl=5.0, clock=lambda: now[0])
        lease.arm()
        now[0] = 5.0
        assert lease.valid(majority=2), "within the grace window"
        now[0] = 5.1
        assert not lease.valid(majority=2), "grace over, no contacts"

    def test_fresh_majority_contacts_keep_it_valid(self):
        now = [0.0]
        lease = EpochLease(0, ttl=5.0, clock=lambda: now[0])
        lease.arm()
        now[0] = 10.0
        lease.note_contact(1)  # primary + 1 fresh replica = majority of 3
        assert lease.valid(majority=2)
        now[0] = 15.1  # that contact has now gone stale
        assert not lease.valid(majority=2)

    def test_contacts_must_meet_majority_minus_one(self):
        now = [100.0]
        lease = EpochLease(0, ttl=5.0, clock=lambda: now[0])
        lease.arm()
        now[0] = 200.0
        lease.note_contact(1)
        assert lease.valid(majority=2)
        assert not lease.valid(majority=3), "needs two fresh replicas"
        lease.note_contact(2)
        assert lease.valid(majority=3)


class TestQuorumGate:
    def test_majority_arithmetic(self):
        cluster = quorum_cluster(n_replicas=2)  # members: primary + 2
        assert cluster.gate.members() == 3
        assert cluster.gate.majority() == 2
        cluster.add_replica()
        assert cluster.gate.majority() == 3

    def test_commit_pends_until_majority_ack(self):
        cluster = quorum_cluster(n_replicas=2)
        courier = cluster.courier
        txn, future = start_commit(cluster, "x", 1)
        assert future.pending
        assert cluster.primary.vc.vtnc == 0, "visibility held back too"
        courier.pump(channel="ship.1")
        courier.pump(channel="ack.1")
        assert future.done and not future.failed, "1 replica ack = majority of 3"
        assert cluster.primary.vc.vtnc == txn.tn

    def test_session_effects_deferred_until_ack(self):
        cluster = quorum_cluster(n_replicas=2)
        txn, future = start_commit(cluster, "x", 7)
        reader = cluster.primary.begin(read_only=True)
        assert cluster.primary.read(reader, "x").result() is None, (
            "unacknowledged commit invisible to snapshots"
        )
        cluster.courier.pump()
        reader2 = cluster.primary.begin(read_only=True)
        assert cluster.primary.read(reader2, "x").result() == 7

    def test_group_ack_resolves_a_burst_fifo(self):
        cluster = quorum_cluster(n_replicas=2)
        order = []
        futures = []
        for i in range(3):
            _, future = start_commit(cluster, f"k{i}", i)
            future.add_callback(lambda f, i=i: order.append(i))
            futures.append(future)
        assert all(f.pending for f in futures)
        cluster.courier.pump()  # one drain: every ship + its ack
        assert all(f.done and not f.failed for f in futures)
        assert order == [0, 1, 2], "group ack resolves oldest first"

    def test_immediate_courier_resolves_inside_commit(self):
        cluster = quorum_cluster(n_replicas=2, courier=Courier())
        txn, future = start_commit(cluster, "x", 1)
        assert future.done and not future.failed, (
            "immediate shipping acks before register(): resolve on the spot"
        )

    def test_depose_fails_pending_commits_typed(self):
        cluster = quorum_cluster(n_replicas=2)
        txn, future = start_commit(cluster, "x", 1)
        cluster.fail_over(crash_old=True)
        assert future.failed
        assert isinstance(future.error, QuorumUnavailable)
        assert future.error.reason.value == "quorum_unavailable"


class TestLeaseFencing:
    def sim_cluster(self, n_replicas=2):
        sim = Simulator()
        courier = FaultyCourier(
            schedule=FaultSchedule(seed=0), sim=sim, latency=0.1
        )
        cluster = quorum_cluster(n_replicas=n_replicas, courier=courier)
        return sim, courier, cluster

    def test_lapsed_lease_fences_before_commit_point(self):
        sim, courier, cluster = self.sim_cluster()
        gate = cluster.gate
        gate.lease.ttl = 5.0
        gate.lease.arm()
        # Partition every replica and let the grace window expire.
        for rid in cluster.replicas:
            courier.partition(f"ship.{rid}")
            courier.partition(f"ack.{rid}")
        sim.call_in(6.0, lambda: None)
        sim.run()
        log_before = cluster.log.durable_length()
        txn = cluster.primary.begin()
        cluster.primary.write(txn, "x", 1).result()
        future = cluster.primary.commit(txn)
        assert future.failed
        assert isinstance(future.error, QuorumUnavailable)
        assert future.error.fenced is True
        assert not txn.is_active, "fenced abort is clean and complete"
        assert cluster.log.durable_length() == log_before, (
            "nothing forced: the fence refuses *before* the commit point"
        )
        assert cluster.counters.get("quorum.fenced") == 1

    def test_ack_timeout_is_indeterminate_not_wedged(self):
        sim, courier, cluster = self.sim_cluster()
        gate = cluster.gate
        gate.commit_timeout = 4.0
        for rid in cluster.replicas:
            courier.partition(f"ship.{rid}")
            courier.partition(f"ack.{rid}")
        txn = cluster.primary.begin()
        cluster.primary.write(txn, "x", 9).result()
        future = cluster.primary.commit(txn)
        assert future.pending
        sim.run()  # the commit timeout fires
        assert future.failed
        error = future.error
        assert isinstance(error, QuorumUnavailable)
        assert error.fenced is False
        # finish_local ran: locks released (a new writer acquires "x"
        # without waiting) and the version installed per the primary's own
        # durable log — the commit *is* on it, just never acknowledged.
        txn2 = cluster.primary.begin()
        write = cluster.primary.write(txn2, "x", 10)
        assert write.done, "the indeterminate commit's lock was released"
        reader = cluster.primary.begin(read_only=True)
        assert cluster.primary.read(reader, "x").result() == 9
        assert cluster.counters.get("quorum.indeterminate") == 1

    def test_heartbeat_contact_renews_lease_without_commits(self):
        sim, courier, cluster = self.sim_cluster()
        gate = cluster.gate
        gate.lease.ttl = 5.0
        gate.lease.arm()

        def beat():
            for rid in cluster.replicas:
                gate.note_contact(rid)

        for t in range(1, 20, 2):
            sim.call_in(float(t), beat)
        sim.call_in(19.5, lambda: None)
        sim.run()
        assert gate.writable(), "an idle primary with heartbeats keeps writing"


class TestQuorumRpoZero:
    def test_acked_commits_survive_failover_at_every_progress_point(self):
        # The module promise in one test: anything acknowledged is on the
        # promoted timeline, anything not acknowledged failed typed.
        cluster = quorum_cluster(n_replicas=2)
        courier = cluster.courier
        acked = []
        _, f1 = start_commit(cluster, "a", 1)
        courier.pump()  # fully acknowledged
        f1.add_callback(lambda f: acked.append(1))
        _, f2 = start_commit(cluster, "b", 2)  # in flight, never acked
        cluster.fail_over(crash_old=True)
        promoted_vtnc = cluster.last_failover["promoted_vtnc"]
        assert acked == [1]
        assert promoted_vtnc >= 1, "the acknowledged commit is covered"
        assert f2.failed and isinstance(f2.error, QuorumUnavailable)
        # The healed cluster still commits.
        _, f3 = start_commit(cluster, "c", 3)
        courier.pump()
        assert f3.done and not f3.failed
