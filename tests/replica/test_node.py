"""Replica node tests: idempotent apply, buffering, epochs, the watermark."""

import pytest

from repro.errors import ProtocolError
from repro.replica.node import Replica
from repro.storage.wal import LogRecord, RecordKind


def _txn_records(txn_id, tn, key="x", value=None):
    return [
        LogRecord(RecordKind.WRITE, txn_id, key=key, value=value or tn),
        LogRecord(RecordKind.COMMIT, txn_id, tn=tn),
    ]


class TestReceiveSegment:
    def test_apply_advances_offset_and_watermark(self):
        replica = Replica(1)
        applied, vtnc = replica.receive_segment(0, 0, _txn_records(10, 1))
        assert (applied, vtnc) == (2, 1)
        assert replica.store.read_snapshot("x", 1).value == 1

    def test_duplicate_segment_is_idempotent(self):
        replica = Replica(1)
        records = _txn_records(10, 1)
        replica.receive_segment(0, 0, records)
        chains = [(v.tn, v.value) for v in replica.store.object("x").versions()]
        replica.receive_segment(0, 0, records)  # exact duplicate
        assert replica.applied_offset == 2
        assert replica.vtnc == 1
        assert chains == [
            (v.tn, v.value) for v in replica.store.object("x").versions()
        ]
        # The replica's own log also stays a clean prefix: no double append.
        assert len(replica.log.all_records()) == 2

    def test_overlapping_segment_applies_only_the_new_suffix(self):
        replica = Replica(1)
        first = _txn_records(10, 1)
        second = _txn_records(11, 2)
        replica.receive_segment(0, 0, first)
        replica.receive_segment(0, 0, first + second)  # overlap on re-ship
        assert replica.applied_offset == 4
        assert replica.vtnc == 2

    def test_out_of_order_segment_buffers_until_gap_fills(self):
        replica = Replica(1)
        first = _txn_records(10, 1)
        second = _txn_records(11, 2)
        replica.receive_segment(0, 2, second)  # arrives first
        assert replica.vtnc == 0
        assert replica.segments_buffered == 1
        assert replica.frontier_tn == 2       # staleness is visible locally
        assert replica.staleness_bound == 2
        replica.receive_segment(0, 0, first)  # the gap
        assert replica.vtnc == 2
        assert replica.staleness_bound == 0

    def test_stale_epoch_discarded(self):
        replica = Replica(1)
        replica.adopt_epoch(3)
        applied, vtnc = replica.receive_segment(2, 0, _txn_records(10, 1))
        assert (applied, vtnc) == (0, 0)
        assert replica.segments_stale == 1

    def test_newer_epoch_adopts_and_drops_buffered_tail(self):
        replica = Replica(1)
        replica.receive_segment(0, 2, _txn_records(11, 2))  # buffered, epoch 0
        replica.receive_segment(1, 0, _txn_records(10, 1))  # new primary
        assert replica.epoch == 1
        assert replica.vtnc == 1
        assert replica._pending == {}  # the deposed tail never applies

    def test_abort_record_discards_staged_writes(self):
        replica = Replica(1)
        records = [
            LogRecord(RecordKind.WRITE, 10, key="x", value="ghost"),
            LogRecord(RecordKind.ABORT, 10),
        ]
        replica.receive_segment(0, 0, records)
        assert "x" not in replica.store
        assert replica.vtnc == 0


class TestWatermarkRule:
    def test_watermark_waits_for_contiguous_prefix(self):
        # tn 2 commits in the log before tn 1 (the log itself is in commit
        # order, but build the pathological stream directly): visibility
        # must not pass tn 1 until it applies.
        replica = Replica(1)
        replica.receive_segment(0, 0, _txn_records(11, 2))
        assert replica.vtnc == 0  # tn 2 applied, invisible: tn 1 missing
        replica.receive_segment(0, 2, _txn_records(10, 1))
        assert replica.vtnc == 2  # both drain together

    def test_watermark_monotone_under_duplicates(self):
        replica = Replica(1)
        seen = []
        for _ in range(3):
            replica.receive_segment(0, 0, _txn_records(10, 1))
            seen.append(replica.vtnc)
        assert seen == [1, 1, 1]


class TestReadOnlySurface:
    def _replica_with_data(self):
        replica = Replica(1)
        replica.receive_segment(0, 0, _txn_records(10, 1, value=41))
        return replica

    def test_snapshot_read_at_local_watermark(self):
        replica = self._replica_with_data()
        txn = replica.begin(read_only=True)
        assert txn.sn == replica.vtnc == 1
        assert replica.read(txn, "x").result() == 41
        replica.commit(txn).result()

    def test_never_reads_above_watermark(self):
        replica = self._replica_with_data()
        txn = replica.begin(read_only=True)          # sn = 1
        replica.receive_segment(0, 2, _txn_records(11, 2, value=99))
        assert replica.vtnc == 2                     # watermark moved on
        assert replica.read(txn, "x").result() == 41  # snapshot stays put
        assert all(tn <= txn.sn for tn in txn.read_set.values())

    def test_zero_cc_calls(self):
        replica = self._replica_with_data()
        txn = replica.begin(read_only=True)
        for _ in range(5):
            replica.read(txn, "x").result()
        replica.commit(txn).result()
        assert replica.counters.get("cc.ro") == 0
        assert replica.counters.get("block.ro") == 0

    def test_rw_begin_rejected(self):
        replica = self._replica_with_data()
        with pytest.raises(ProtocolError, match="read-only"):
            replica.begin()

    def test_write_rejected(self):
        replica = self._replica_with_data()
        txn = replica.begin(read_only=True)
        with pytest.raises(ProtocolError, match="read-only"):
            replica.write(txn, "x", 1)
