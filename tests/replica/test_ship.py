"""Shipping-layer tests: the force hook, offsets, catch-up, epoch guards."""

from repro.distributed.courier import Courier
from repro.replica.node import Replica
from repro.replica.ship import LogShipper, ShippedLog
from repro.storage.wal import LogRecord, RecordKind


def _commit(log, txn_id, tn, key="x", value=None):
    log.append(LogRecord(RecordKind.WRITE, txn_id, key=key, value=value or tn))
    log.append(LogRecord(RecordKind.COMMIT, txn_id, tn=tn))
    log.force()


class TestShippedLog:
    def test_force_notifies_after_boundary_moves(self):
        log = ShippedLog()
        seen = []
        log.subscribe_force(lambda: seen.append(log.durable_length()))
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        assert seen == []  # append alone is volatile
        log.force()
        assert seen == [1]  # the subscriber saw the new durable frontier

    def test_unsubscribe(self):
        log = ShippedLog()
        calls = []
        fn = lambda: calls.append(1)  # noqa: E731
        token = log.subscribe_force(fn)
        log.force()
        log.unsubscribe_force(token)
        log.force()
        assert calls == [1]

    def test_unsubscribe_unknown_token_is_noop(self):
        log = ShippedLog()
        calls = []
        log.subscribe_force(lambda: calls.append(1))
        log.unsubscribe_force(999)
        log.force()
        assert calls == [1]

    def test_identical_bound_methods_unsubscribe_independently(self):
        # The regression that motivated token handles: two subscriptions of
        # the same bound method compare equal (`a.m == a.m` is True for
        # fresh bound-method objects), so an equality-based unsubscribe
        # would deregister *both*.  Tokens keep them independent.
        class Listener:
            def __init__(self):
                self.calls = 0

            def on_force(self):
                self.calls += 1

        log = ShippedLog()
        listener = Listener()
        assert listener.on_force == listener.on_force  # the equality trap
        first = log.subscribe_force(listener.on_force)
        second = log.subscribe_force(listener.on_force)
        assert first != second
        log.force()
        assert listener.calls == 2
        log.unsubscribe_force(first)
        log.force()
        assert listener.calls == 3  # the second subscription survived

    def test_partial_force_notifies_too(self):
        log = ShippedLog()
        calls = []
        log.subscribe_force(lambda: calls.append(log.durable_length()))
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        log.append(LogRecord(RecordKind.COMMIT, 1, tn=1))
        log.partial_force(1, tear_last=False)
        assert calls == [1]


class TestLogShipper:
    def _wired(self):
        log = ShippedLog()
        shipper = LogShipper(log, Courier())
        log.subscribe_force(shipper.ship)
        replica = Replica(1)
        shipper.add_replica(replica)
        return log, shipper, replica

    def test_ships_on_every_force(self):
        log, shipper, replica = self._wired()
        _commit(log, txn_id=10, tn=1)
        _commit(log, txn_id=11, tn=2)
        assert replica.applied_offset == 4
        assert replica.vtnc == 2
        assert shipper.acked_offset[1] == 4
        assert shipper.lag_records(1) == 0

    def test_late_subscriber_catches_up_from_zero(self):
        log = ShippedLog()
        shipper = LogShipper(log, Courier())
        log.subscribe_force(shipper.ship)
        _commit(log, txn_id=10, tn=1)
        replica = Replica(7)
        shipper.add_replica(replica)  # add_replica catch-up covers history
        assert replica.vtnc == 1

    def test_stale_ack_from_old_epoch_ignored(self):
        log, shipper, replica = self._wired()
        _commit(log, txn_id=10, tn=1)
        acked = shipper.acked_offset[1]
        shipper.on_ack(1, epoch=shipper.epoch - 1, applied_offset=99, vtnc=99)
        assert shipper.acked_offset[1] == acked
        assert shipper.acked_vtnc[1] != 99

    def test_ack_for_removed_replica_ignored(self):
        log, shipper, replica = self._wired()
        _commit(log, txn_id=10, tn=1)
        shipper.remove_replica(1)
        shipper.on_ack(1, epoch=shipper.epoch, applied_offset=5, vtnc=5)
        assert 1 not in shipper.acked_offset

    def test_catch_up_reships_unacked(self):
        # A courier that silently swallows one delivery: the replica misses
        # a segment, and only catch_up (from the acked offset) re-covers it.
        class DroppingCourier(Courier):
            def __init__(self):
                super().__init__()
                self.drop_next = 0

            def dispatch(self, fn, channel="default"):
                if channel.startswith("ship.") and self.drop_next:
                    self.drop_next -= 1
                    return
                super().dispatch(fn, channel=channel)

        log = ShippedLog()
        courier = DroppingCourier()
        shipper = LogShipper(log, courier)
        log.subscribe_force(shipper.ship)
        replica = Replica(1)
        shipper.add_replica(replica)
        courier.drop_next = 1
        _commit(log, txn_id=10, tn=1)   # lost on the wire
        assert replica.vtnc == 0
        assert shipper.lag_records(1) == 2
        shipper.catch_up(1)
        assert replica.vtnc == 1
        assert shipper.lag_records(1) == 0

    def test_detach_stops_shipping(self):
        log, shipper, replica = self._wired()
        shipper.detach()
        _commit(log, txn_id=10, tn=1)
        assert replica.applied_offset == 0
        assert shipper.replica_ids() == []
