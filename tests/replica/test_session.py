"""Session routing tests: RW to the primary, RO to replicas, staleness QoS."""

import pytest

from repro.errors import Overloaded, ReplicaLagging, is_retryable
from repro.qos import AdmissionController
from repro.replica.cluster import ReplicaCluster
from repro.replica.session import ReplicatedDatabase


def _loaded_db(**kwargs):
    db = ReplicatedDatabase(n_replicas=2, **kwargs)
    with db.transaction() as txn:
        txn.write("x", 41)
    return db


class TestRouting:
    def test_snapshot_served_from_replica(self):
        db = _loaded_db()
        with db.snapshot() as snap:
            assert snap.read("x") == 41
            assert snap.txn.meta["replica.id"] in db.cluster.replicas
        assert db.cluster.counters.get("replica.ro.served") == 1

    def test_rw_routed_to_primary(self):
        db = _loaded_db()
        with db.transaction() as txn:
            txn.write("x", 42)
        assert db.cluster.primary.vc.vtnc == 2

    def test_primary_fallback_with_no_replicas(self):
        db = ReplicatedDatabase(n_replicas=0)
        with db.transaction() as txn:
            txn.write("x", 1)
        with db.snapshot() as snap:
            assert snap.read("x") == 1
        assert db.cluster.counters.get("replica.ro.primary_fallback") == 1

    def test_session_follows_promotion(self):
        db = _loaded_db()
        db.cluster.fail_over()
        with db.transaction() as txn:   # binds to the *current* primary
            txn.write("x", 42)
        with db.snapshot() as snap:
            assert snap.read("x") == 42


class TestReadOnlyNeverDegrades:
    """The paper's fast-path guarantee, preserved across the replica tier."""

    def test_ro_begin_acquires_no_locks(self):
        db = _loaded_db()
        primary_blocks = db.cluster.primary.locks.blocks
        for _ in range(5):
            with db.snapshot() as snap:
                snap.read("x")
        assert db.cluster.primary.locks.is_idle()
        assert db.cluster.primary.locks.blocks == primary_blocks
        for replica in db.cluster.replicas.values():
            assert replica.counters.get("cc.ro") == 0
            assert replica.counters.get("block.ro") == 0

    def test_ro_begin_bypasses_saturated_admission(self):
        db = _loaded_db(admission=AdmissionController(capacity=1, queue_limit=0))
        hog = db.cluster.primary.begin()  # takes the only token
        with pytest.raises(Overloaded):
            db.cluster.primary.begin()    # RW sheds...
        with db.snapshot() as snap:       # ...RO does not
            assert snap.read("x") == 41
        db.cluster.primary.abort(hog)


class TestStalenessPolicies:
    def _lagging_db(self, **kwargs):
        db = _loaded_db(**kwargs)
        # Desubscribe the replicas so further commits open a lag window.
        db.cluster.log.unsubscribe_force(db.cluster._ship_token)
        for _ in range(5):
            with db.transaction() as txn:
                txn.write("x", 100)
        return db

    def test_redirect_serves_from_primary(self):
        db = self._lagging_db(max_staleness=2, stale_policy="redirect")
        with db.snapshot() as snap:
            assert snap.read("x") == 100  # fresh: the primary answered
        assert db.cluster.counters.get("replica.ro.redirect") == 1

    def test_stale_serves_from_replica_marked(self):
        db = self._lagging_db(max_staleness=2, stale_policy="stale")
        with db.snapshot() as snap:
            assert snap.read("x") == 41   # stale but snapshot-consistent
            assert snap.txn.meta["replica.stale"] is True
            assert snap.txn.meta["replica.lag"] == 5
        assert db.cluster.counters.get("replica.ro.stale") == 1

    def test_reject_raises_retryable(self):
        db = self._lagging_db(max_staleness=2, stale_policy="reject")
        with pytest.raises(ReplicaLagging) as info:
            db.snapshot()
        assert is_retryable(info.value)
        assert db.cluster.counters.get("replica.ro.reject") == 1

    def test_per_call_override(self):
        db = self._lagging_db(max_staleness=2, stale_policy="redirect")
        with db.snapshot(stale_policy="stale") as snap:
            assert snap.read("x") == 41

    def test_within_bound_served_from_replica(self):
        db = _loaded_db(max_staleness=2, stale_policy="reject")
        with db.snapshot() as snap:   # lag is 0: no policy fires
            assert snap.read("x") == 41
        assert db.cluster.counters.get("replica.ro.served") == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="stale_policy"):
            ReplicatedDatabase(n_replicas=1, stale_policy="block")
        db = _loaded_db()
        with pytest.raises(ValueError, match="stale_policy"):
            db.snapshot(stale_policy="wait")
