"""Tests for the introspection tools."""

from repro.histories import History, check_one_copy_serializable
from repro.protocols import VC2PLScheduler, VCTOScheduler
from repro.tools import describe_vc, dump_version_chains, mvsg_dot, timeline


def build_run():
    db = VC2PLScheduler()
    w = db.begin()
    db.write(w, "x", 1).result()
    db.commit(w).result()
    ro = db.begin(read_only=True)
    db.read(ro, "x").result()
    db.commit(ro).result()
    return db


class TestMVSGDot:
    def test_renders_nodes_and_edges(self):
        db = build_run()
        dot = mvsg_dot(db.history)
        assert dot.startswith("digraph MVSG")
        assert '"T1"' in dot
        assert '"RO#' in dot
        assert "->" in dot

    def test_initial_txn_is_diamond(self):
        history = History.parse("r1[x_0] c1")
        dot = mvsg_dot(history)
        assert '"T0 (init)" [shape=diamond];' in dot

    def test_cycle_highlighting(self):
        history = History.parse("r1[x_0] r2[y_0] w1[y_1] w2[x_2] c1 c2")
        report = check_one_copy_serializable(history)
        assert not report.serializable
        dot = mvsg_dot(history, highlight_cycle=report.cycle)
        assert "color=red" in dot

    def test_valid_graphviz_structure(self):
        dot = mvsg_dot(build_run().history)
        assert dot.count("{") == dot.count("}") == 1


class TestTimeline:
    def test_rows_per_transaction(self):
        db = build_run()
        text = timeline(db.recorder.live)
        lines = text.splitlines()
        assert lines[0].startswith("txn")
        assert any(line.startswith("T") for line in lines[1:])
        assert "C" in text

    def test_read_write_cells(self):
        db = VCTOScheduler()
        t = db.begin()
        db.write(t, "k", 1).result()
        db.commit(t).result()
        text = timeline(db.recorder.live)
        assert "w·k" in text

    def test_truncation_notice(self):
        db = VCTOScheduler()
        for i in range(30):
            t = db.begin()
            db.write(t, f"k{i}", i).result()
            db.commit(t).result()
        text = timeline(db.recorder.live, max_events=5)
        assert "more events" in text


class TestDumps:
    def test_version_chain_dump(self):
        db = build_run()
        text = dump_version_chains(db.store)
        assert "x: 0=None -> 1=1" in text

    def test_pending_flagged(self):
        db = VCTOScheduler()
        t = db.begin()
        db.write(t, "x", 9).result()
        text = dump_version_chains(db.store)
        assert "1*=9" in text
        db.commit(t).result()

    def test_empty_store(self):
        from repro.storage.mvstore import MVStore

        assert dump_version_chains(MVStore()) == "(empty store)"

    def test_describe_vc(self):
        db = VCTOScheduler()
        t1 = db.begin()
        t2 = db.begin()
        db.commit(t2).result()
        text = describe_vc(db.vc)
        assert "tnc=3" in text
        assert "vtnc=0" in text
        assert "done" in text
        db.commit(t1).result()
