"""Tests for the single-version baseline store."""

from repro.storage.svstore import SVStore


class TestSVStore:
    def test_unknown_key_reads_initial(self):
        store = SVStore(initial_value=0)
        assert store.read("x") == (0, 0)

    def test_apply_and_read(self):
        store = SVStore()
        store.apply("x", "hello", writer_tn=3)
        assert store.read("x") == ("hello", 3)
        assert "x" in store
        assert len(store) == 1

    def test_overwrite_updates_attribution(self):
        store = SVStore()
        store.apply("x", 1, writer_tn=1)
        store.apply("x", 2, writer_tn=2)
        assert store.read("x") == (2, 2)

    def test_preload_attributes_to_t0(self):
        store = SVStore()
        store.preload({"a": 10})
        assert store.read("a") == (10, 0)
        assert set(store.keys()) == {"a"}
