"""Tests for the eager and budgeted garbage-collection strategies."""

import pytest

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.storage.gc_strategies import STRATEGIES, BudgetedCollector, EagerCollector
from repro.storage.mvstore import MVStore


def commit_version(store, vc, key, value):
    txn = Transaction()
    vc.vc_register(txn)
    store.install(key, txn.tn, value)
    vc.vc_complete(txn)
    return txn.tn


class TestEagerCollector:
    def test_collects_automatically_on_advance(self):
        store, vc = MVStore(), VersionControl()
        gc = EagerCollector(store, vc, stride=1)
        for i in range(5):
            commit_version(store, vc, "x", i)
        assert gc.passes >= 4, "each advance past the stride triggered a sweep"
        assert len(store.object("x")) <= 2

    def test_stride_batches_sweeps(self):
        store, vc = MVStore(), VersionControl()
        gc = EagerCollector(store, vc, stride=10)
        for i in range(9):
            commit_version(store, vc, "x", i)
        assert gc.passes == 0
        commit_version(store, vc, "x", 9)
        assert gc.passes == 1

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            EagerCollector(MVStore(), VersionControl(), stride=0)

    def test_respects_active_reader_horizon(self):
        store, vc = MVStore(), VersionControl()
        gc = EagerCollector(store, vc, stride=1)
        commit_version(store, vc, "x", "old")
        reader = Transaction.__new__(Transaction)  # bare descriptor
        reader.__init__()
        reader.sn = vc.vc_start()
        gc.registry.register(reader)
        for i in range(5):
            commit_version(store, vc, "x", i)
        assert store.read_snapshot("x", reader.sn).value == "old"


class TestBudgetedCollector:
    def test_budget_bounds_per_pass_work(self):
        store, vc = MVStore(), VersionControl()
        gc = BudgetedCollector(store, vc, budget=2)
        for k in range(6):
            for i in range(3):
                commit_version(store, vc, f"k{k}", i)
        before = store.version_count()
        gc.collect()
        after_one = store.version_count()
        assert before - after_one <= 2 * 3, "at most 2 objects pruned"
        for _ in range(5):
            gc.collect()
        assert store.version_count() < after_one, "round-robin reaches the rest"

    def test_cursor_wraps(self):
        store, vc = MVStore(), VersionControl()
        gc = BudgetedCollector(store, vc, budget=100)
        for k in range(3):
            commit_version(store, vc, f"k{k}", 1)
        gc.collect()
        assert gc._cursor == 0, "full cycle wraps the cursor"

    def test_empty_store(self):
        gc = BudgetedCollector(MVStore(), VersionControl(), budget=4)
        assert gc.collect() == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetedCollector(MVStore(), VersionControl(), budget=0)


class TestRegistryOfStrategies:
    def test_all_strategies_constructible(self):
        for name, factory in STRATEGIES.items():
            collector = factory(MVStore(), VersionControl())
            assert collector.horizon() == 0, name
