"""Tests for per-object version chains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, VersionNotFound
from repro.storage.versioned_object import VersionedObject


def chain(*tns, key="x"):
    obj = VersionedObject(key, initial_value="v0")
    for tn in tns:
        obj.install(tn, f"v{tn}")
    return obj


class TestInitialState:
    def test_starts_with_initial_version(self):
        obj = VersionedObject("x", initial_value=10)
        assert len(obj) == 1
        v = obj.latest()
        assert v.tn == 0
        assert v.value == 10
        assert not v.pending

    def test_default_initial_value_none(self):
        assert VersionedObject("x").latest().value is None


class TestInstall:
    def test_append_in_order(self):
        obj = chain(1, 2, 5)
        assert [v.tn for v in obj.versions()] == [0, 1, 2, 5]

    def test_out_of_order_insert(self):
        obj = chain(5)
        obj.install(3, "v3")
        assert [v.tn for v in obj.versions()] == [0, 3, 5]

    def test_duplicate_version_rejected(self):
        obj = chain(1)
        with pytest.raises(ProtocolError, match="already has version 1"):
            obj.install(1, "again")

    def test_pending_install(self):
        obj = VersionedObject("x")
        v = obj.install(2, "v2", pending=True, creator_txn_id=99)
        assert v.pending
        assert v.creator_txn_id == 99


class TestReads:
    def test_latest_committed_skips_pending(self):
        obj = chain(1)
        obj.install(2, "v2", pending=True)
        assert obj.latest().tn == 2
        assert obj.latest_committed().tn == 1

    def test_version_leq_exact(self):
        obj = chain(1, 3, 7)
        assert obj.version_leq(3).tn == 3

    def test_version_leq_between(self):
        obj = chain(1, 3, 7)
        assert obj.version_leq(5).tn == 3

    def test_version_leq_includes_pending(self):
        obj = chain(1)
        obj.install(2, "v2", pending=True)
        assert obj.version_leq(10).tn == 2

    def test_committed_version_leq_skips_pending(self):
        obj = chain(1)
        obj.install(2, "v2", pending=True)
        assert obj.committed_version_leq(10).tn == 1

    def test_version_leq_below_everything_raises(self):
        obj = VersionedObject("x")
        obj.prune_older_than(0)
        obj.install(5, "v5")
        obj.prune_older_than(5)
        with pytest.raises(VersionNotFound):
            obj.version_leq(3)

    def test_infinity_bound_reads_latest(self):
        obj = chain(1, 2)
        assert obj.version_leq(float("inf")).tn == 2


class TestPendingLifecycle:
    def test_commit_pending(self):
        obj = VersionedObject("x")
        obj.install(2, "v2", pending=True)
        v = obj.commit_pending(2)
        assert not v.pending

    def test_commit_missing_pending_rejected(self):
        obj = chain(2)
        with pytest.raises(ProtocolError, match="no pending version"):
            obj.commit_pending(2)

    def test_remove_aborted_version(self):
        obj = VersionedObject("x")
        obj.install(2, "v2", pending=True)
        obj.remove(2)
        assert obj.find(2) is None
        assert len(obj) == 1

    def test_remove_missing_rejected(self):
        obj = VersionedObject("x")
        with pytest.raises(ProtocolError, match="no version 9"):
            obj.remove(9)


class TestReadTimestamps:
    def test_note_read_updates_version_rts(self):
        obj = chain(1)
        v = obj.version_leq(1)
        obj.note_read(v, 5)
        assert v.r_ts == 5
        obj.note_read(v, 3)  # smaller: no change
        assert v.r_ts == 5

    def test_note_read_on_latest_raises_object_rts(self):
        obj = chain(1, 2)
        obj.note_read(obj.latest(), 9)
        assert obj.max_r_ts == 9

    def test_note_read_on_old_version_leaves_object_rts(self):
        obj = chain(1, 2)
        obj.note_read(obj.version_leq(1), 9)
        assert obj.max_r_ts == 0


class TestPrune:
    def test_prune_keeps_horizon_version(self):
        obj = chain(1, 2, 3)
        discarded = obj.prune_older_than(2)
        assert discarded == 2  # versions 0 and 1
        assert [v.tn for v in obj.versions()] == [2, 3]

    def test_prune_between_versions(self):
        obj = chain(2, 6)
        assert obj.prune_older_than(4) == 1  # keeps 2 (serves sn in [2,5]), 6
        assert [v.tn for v in obj.versions()] == [2, 6]

    def test_prune_noop_when_nothing_older(self):
        obj = chain(3)
        assert obj.prune_older_than(0) == 0
        assert len(obj) == 2

    def test_prune_never_empties_chain(self):
        obj = chain(1)
        obj.prune_older_than(100)
        assert len(obj) == 1


@settings(max_examples=150, deadline=None)
@given(
    tns=st.lists(st.integers(1, 100), unique=True, min_size=1, max_size=20),
    bound=st.integers(0, 100),
)
def test_property_version_leq_is_max_below_bound(tns, bound):
    obj = VersionedObject("x")
    for tn in tns:
        obj.install(tn, tn)
    expect = max((t for t in tns + [0] if t <= bound), default=None)
    assert obj.version_leq(bound).tn == expect


@settings(max_examples=150, deadline=None)
@given(
    tns=st.lists(st.integers(1, 50), unique=True, min_size=1, max_size=15),
    horizon=st.integers(0, 50),
    probe=st.integers(0, 50),
)
def test_property_prune_preserves_reads_at_or_above_horizon(tns, horizon, probe):
    """After pruning at `horizon`, any snapshot read with sn >= horizon
    returns the same version as before pruning."""
    obj = VersionedObject("x")
    for tn in tns:
        obj.install(tn, tn)
    sn = max(horizon, probe)
    before = obj.version_leq(sn).tn
    obj.prune_older_than(horizon)
    assert obj.version_leq(sn).tn == before


class TestPruneNeverTouchesPending:
    def test_pending_version_blocks_collection_past_it(self):
        obj = VersionedObject("x", initial_value=0)
        obj.install(1, "a")
        obj.install(2, "b", pending=True)   # undecided writer
        obj.install(3, "c")
        # Even with a (bogus) horizon above everything, the pending version
        # and everything after it must survive; only versions strictly
        # before it are candidates.
        obj.prune_older_than(10)
        tns = [v.tn for v in obj.versions()]
        assert 2 in tns and 3 in tns
        assert obj.find(2).pending

    def test_committed_prefix_before_pending_still_collectable(self):
        obj = VersionedObject("x", initial_value=0)
        obj.install(1, "a")
        obj.install(2, "b")
        obj.install(3, "c", pending=True)
        discarded = obj.prune_older_than(2)
        assert discarded == 2  # versions 0 and 1 go; 2 serves the horizon
        assert [v.tn for v in obj.versions()] == [2, 3]


class TestPruneUnreachable:
    def tns(self, obj):
        return [v.tn for v in obj.versions()]

    def test_no_pins_keeps_only_the_visible_version(self):
        obj = chain(1, 2, 3, 4)
        discarded, interior = obj.prune_unreachable(4, [])
        assert discarded == 4
        assert interior == 0  # horizon == visible: nothing is interior
        assert self.tns(obj) == [4]

    def test_each_pin_retains_exactly_its_version(self):
        obj = chain(2, 4, 6, 8)
        # sn=3 reads v2, sn=5 reads v4; visible=8 pins v8; v0 and v6 go.
        discarded, interior = obj.prune_unreachable(8, [3, 5])
        assert self.tns(obj) == [2, 4, 8]
        assert discarded == 2
        # v6 sits above the horizon (3): interior reclamation.
        assert interior == 1

    def test_two_pins_sharing_a_version_retain_it_once(self):
        obj = chain(2, 9)
        # Both sn=3 and sn=7 resolve to v2.
        obj.prune_unreachable(9, [3, 7])
        assert self.tns(obj) == [2, 9]

    def test_pin_equal_to_version_tn_retains_it(self):
        obj = chain(3, 5)
        obj.prune_unreachable(5, [3])
        assert self.tns(obj) == [3, 5]

    def test_versions_above_visible_always_survive(self):
        obj = chain(1, 5, 9)
        obj.prune_unreachable(5, [])
        assert self.tns(obj) == [5, 9]

    def test_pending_versions_always_survive(self):
        obj = VersionedObject("x", initial_value=0)
        obj.install(1, "a")
        obj.install(2, "b", pending=True)
        obj.install(3, "c")
        obj.prune_unreachable(3, [])
        tns = self.tns(obj)
        assert 2 in tns and 3 in tns
        assert obj.find(2).pending

    def test_interior_counts_only_above_the_horizon(self):
        obj = chain(1, 2, 3, 4, 5)
        # Pin at sn=2: horizon 2.  Reclaimed: v0, v1 (prefix — a horizon
        # pruner also drops them) and v3, v4 (interior).
        discarded, interior = obj.prune_unreachable(5, [2])
        assert self.tns(obj) == [2, 5]
        assert discarded == 4
        assert interior == 2

    def test_single_version_chain_is_untouched(self):
        obj = VersionedObject("x", initial_value=0)
        assert obj.prune_unreachable(10, []) == (0, 0)
        assert self.tns(obj) == [0]

    @given(
        tns=st.lists(st.integers(min_value=1, max_value=30), unique=True, min_size=1),
        pins=st.lists(st.integers(min_value=0, max_value=30), unique=True),
        visible_gap=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_live_snapshot_still_reads_the_same_version(
        self, tns, pins, visible_gap
    ):
        obj = chain(*sorted(tns))
        visible = max(tns) + visible_gap
        pins = sorted(p for p in pins if p <= visible)
        expected = {sn: obj.version_leq(sn).tn for sn in pins + [visible]}
        obj.prune_unreachable(visible, pins)
        for sn, tn in expected.items():
            assert obj.version_leq(sn).tn == tn
