"""Torn-tail, partial-force, and mid-log corruption semantics of the WAL.

The contract under test (see ``validate_durable``): a torn or malformed
record at the *tail* of the durable prefix is the expected trace of a crash
during ``force()`` — recovery treats it as the durable boundary and drops
it.  The same damage anywhere *before* the tail cannot be explained by a
crash, so recovery refuses with :class:`CorruptLogError` rather than
silently skipping records (which could drop committed writes).

The crash-at-every-point sweep at the bottom is the satellite guarantee:
for a committed workload's log cut after *every* record, recovery yields
exactly the prefix-consistent state — each transaction all-or-nothing,
decided solely by whether its COMMIT record made it into the durable
prefix.
"""

import pytest

from repro.errors import CorruptLogError, ReproError
from repro.protocols.recoverable import RecoverableVC2PLScheduler
from repro.storage.wal import (
    LogRecord,
    RecordKind,
    WriteAheadLog,
    recover,
    validate_durable,
)


def _log_with(*records):
    log = WriteAheadLog()
    for record in records:
        log.append(record)
    return log


W = lambda txn, key, value: LogRecord(RecordKind.WRITE, txn, key=key, value=value)
C = lambda txn, tn: LogRecord(RecordKind.COMMIT, txn, tn=tn)


class TestPartialForce:
    def test_only_requested_records_become_durable(self):
        log = _log_with(W(1, "x", 1), C(1, 1), W(2, "y", 2))
        made = log.partial_force(2, tear_last=False)
        assert made == 2
        assert len(log.durable_records()) == 2
        assert log.torn_indices() == set()

    def test_made_count_clamps_to_volatile_suffix(self):
        log = _log_with(W(1, "x", 1))
        assert log.partial_force(10, tear_last=False) == 1
        assert log.partial_force(5) == 0, "nothing volatile remains"
        assert log.partial_force(-3) == 0

    def test_tear_marks_last_flushed_record(self):
        log = _log_with(W(1, "x", 1), C(1, 1), W(2, "y", 2))
        log.partial_force(2, tear_last=True)
        assert log.torn_indices() == {1}

    def test_crash_after_partial_force_loses_only_unflushed(self):
        log = _log_with(W(1, "x", 1), C(1, 1), W(2, "y", 2))
        log.partial_force(2, tear_last=True)
        assert log.crash() == 1


class TestTornTail:
    def test_torn_tail_is_the_durable_boundary(self):
        log = _log_with(W(1, "x", 1), C(1, 1), W(2, "y", 2))
        log.partial_force(3, tear_last=True)  # WRITE(y) lands torn
        log.crash()
        assert validate_durable(log) == log.durable_records()[:2]
        store, _vc = recover(log)
        assert store.read_latest_committed("x").value == 1
        assert "y" not in store

    def test_torn_commit_record_uncommits_the_transaction(self):
        log = _log_with(W(1, "x", 1), C(1, 1))
        log.partial_force(2, tear_last=True)  # the COMMIT itself is torn
        log.crash()
        store, vc = recover(log)
        assert "x" not in store, "no durable COMMIT, no versions"
        assert vc.tnc == 1

    def test_malformed_tail_record_is_dropped_like_a_torn_one(self):
        log = _log_with(W(1, "x", 1), C(1, 1), C(2, None))  # tn=None: garbage
        log.force()
        store, _vc = recover(log)
        assert store.read_latest_committed("x").value == 1


class TestCorruptMidLog:
    def test_malformed_record_before_tail_raises(self):
        log = _log_with(W(1, "x", 1), C(1, None), W(2, "y", 2), C(2, 2))
        log.force()
        with pytest.raises(CorruptLogError) as exc_info:
            recover(log)
        assert exc_info.value.index == 1
        assert isinstance(exc_info.value, ReproError)

    def test_torn_record_before_tail_raises(self):
        log = _log_with(W(1, "x", 1), C(1, 1), W(2, "y", 2))
        log.partial_force(2, tear_last=True)  # torn at index 1...
        log.force()  # ...but a later force proves the medium kept writing
        with pytest.raises(CorruptLogError) as exc_info:
            validate_durable(log)
        assert exc_info.value.index == 1

    def test_foreign_object_in_log_raises(self):
        log = _log_with(W(1, "x", 1))
        log.append("not a record at all")
        log.append(C(1, 1))
        log.force()
        with pytest.raises(CorruptLogError) as exc_info:
            recover(log)
        assert exc_info.value.index == 1

    def test_corruption_past_durable_boundary_is_invisible(self):
        log = _log_with(W(1, "x", 1), C(1, 1))
        log.force()
        log.append(C(2, None))  # volatile garbage: a crash erases it
        log.crash()
        store, _vc = recover(log)
        assert store.read_latest_committed("x").value == 1


# --- crash-at-every-point sweep -------------------------------------------

N_TXNS = 6


def _workload_records():
    """The WAL of a small committed workload (every record durable)."""
    db = RecoverableVC2PLScheduler()
    for i in range(N_TXNS):
        t = db.begin()
        db.write(t, "acc", i).result()
        db.write(t, f"side{i % 2}", i * 10).result()
        db.commit(t).result()
    return db.log.all_records()


_RECORDS = _workload_records()


def _expected_state(records):
    """Prefix-consistent expectation: latest value per key from the
    transactions whose COMMIT record lies within ``records``."""
    writes, committed = {}, {}
    for record in records:
        if record.kind is RecordKind.WRITE:
            writes.setdefault(record.txn_id, []).append((record.key, record.value))
        elif record.kind is RecordKind.COMMIT:
            committed[record.txn_id] = record.tn
    latest = {}
    for txn_id, _tn in sorted(committed.items(), key=lambda item: item[1]):
        for key, value in writes.get(txn_id, ()):
            latest[key] = value
    return latest, (max(committed.values()) if committed else 0)


@pytest.mark.parametrize("cut", range(len(_RECORDS) + 1))
def test_crash_at_every_point_recovers_committed_prefix(cut):
    log = WriteAheadLog()
    for record in _RECORDS[:cut]:
        log.append(record)
    log.force()
    for record in _RECORDS[cut:]:
        log.append(record)  # reaches the log but never stable storage
    lost = log.crash()
    assert lost == len(_RECORDS) - cut

    store, vc = recover(log)
    latest, max_tn = _expected_state(_RECORDS[:cut])
    assert set(store.keys()) == set(latest), "only committed writes survive"
    for key, value in latest.items():
        assert store.read_latest_committed(key).value == value
    assert vc.tnc == max_tn + 1, "numbering resumes above the durable frontier"
    assert vc.vtnc == max_tn, "every recovered transaction is fully visible"


@pytest.mark.parametrize("cut", range(1, len(_RECORDS) + 1))
def test_crash_mid_force_at_every_point_tears_the_tail(cut):
    """Same sweep, but the crash interrupts the force itself: the last
    flushed record lands torn, so the durable boundary is one record
    earlier than the cut."""
    log = WriteAheadLog()
    for record in _RECORDS[:cut]:
        log.append(record)
    log.partial_force(cut, tear_last=True)
    log.crash()

    store, vc = recover(log)
    latest, max_tn = _expected_state(_RECORDS[: cut - 1])
    assert set(store.keys()) == set(latest)
    for key, value in latest.items():
        assert store.read_latest_committed(key).value == value
    assert vc.tnc == max_tn + 1
