"""Tests for garbage collection (paper Section 6 rule, bounded)."""

import pytest

from repro.core.transaction import Transaction, TxnClass
from repro.core.version_control import VersionControl
from repro.errors import ProtocolError, SnapshotTooOld
from repro.storage.gc import GarbageCollector, ReadOnlyRegistry
from repro.storage.mvstore import MVStore


def ro(sn):
    t = Transaction(TxnClass.READ_ONLY)
    t.sn = sn
    return t


class TestRegistry:
    def test_register_and_min(self):
        reg = ReadOnlyRegistry()
        assert reg.min_active_sn() is None
        reg.register(ro(5))
        reg.register(ro(3))
        assert reg.min_active_sn() == 3
        assert reg.active_count() == 2

    def test_shared_start_numbers_are_multiset(self):
        reg = ReadOnlyRegistry()
        a, b = ro(4), ro(4)
        reg.register(a)
        reg.register(b)
        reg.deregister(a)
        assert reg.min_active_sn() == 4
        reg.deregister(b)
        assert reg.min_active_sn() is None

    def test_register_without_sn_rejected(self):
        reg = ReadOnlyRegistry()
        with pytest.raises(ProtocolError, match="no start number"):
            reg.register(Transaction(TxnClass.READ_ONLY))

    def test_deregister_unknown_rejected(self):
        reg = ReadOnlyRegistry()
        with pytest.raises(ProtocolError, match="holds no snapshot lease"):
            reg.deregister(ro(1))

    def test_deregister_unknown_reports_multiset_state(self):
        reg = ReadOnlyRegistry()
        reg.register(ro(4))
        reg.register(ro(4))
        reg.register(ro(7))
        with pytest.raises(ProtocolError, match=r"\{4: 2, 7: 1\}"):
            reg.deregister(ro(1))


class TestHorizon:
    def build(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        return store, vc, gc

    def complete_n(self, vc, n):
        for _ in range(n):
            t = Transaction()
            vc.vc_register(t)
            vc.vc_complete(t)

    def test_horizon_is_vtnc_without_readers(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 4)
        assert gc.horizon() == 4

    def test_horizon_lowered_by_old_reader(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 4)
        gc.registry.register(ro(2))
        assert gc.horizon() == 2

    def test_reader_above_vtnc_does_not_raise_horizon(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 2)
        gc.registry.register(ro(10))  # cannot happen in practice, but safe
        assert gc.horizon() == 2


class TestCollect:
    def test_collect_discards_unreachable_versions(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        for tn in (1, 2, 3, 4):
            t = Transaction()
            vc.vc_register(t)
            store.install("x", tn, tn)
            vc.vc_complete(t)
        # vtnc == 4 and no active readers: only version 4 remains reachable.
        discarded = gc.collect()
        assert discarded == 4
        assert gc.total_discarded == 4
        assert gc.passes == 1
        assert store.read_snapshot("x", 4).value == 4

    def test_active_reader_protects_its_snapshot(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        reader = None
        for tn in (1, 2, 3):
            t = Transaction()
            vc.vc_register(t)
            store.install("x", tn, tn)
            vc.vc_complete(t)
            if tn == 1:
                reader = ro(vc.vc_start())  # sn = 1
                gc.registry.register(reader)
        gc.collect()
        # Reader's snapshot (version 1) must survive; only v0 collectable.
        assert store.read_snapshot("x", reader.sn).value == 1

    def test_collect_never_discards_at_or_above_vtnc(self):
        """Paper: never discard versions as young as or younger than vtnc."""
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        t1, t2 = Transaction(), Transaction()
        vc.vc_register(t1)
        vc.vc_register(t2)
        store.install("x", 1, "a")
        store.install("x", 2, "b")
        vc.vc_complete(t1)  # vtnc = 1; t2 still active
        gc.collect()
        assert store.read_snapshot("x", 1).value == "a"
        assert store.read_snapshot("x", 2).value == "b"


class TestLeaseLifecycle:
    def test_double_register_rejected(self):
        reg = ReadOnlyRegistry()
        t = ro(3)
        reg.register(t)
        with pytest.raises(ProtocolError, match="already holds a snapshot lease"):
            reg.register(t)

    def test_interleaved_deregister_on_shared_sn(self):
        # Three leases at sn=5, one at sn=2; releases interleave and the
        # multiset must stay exact at every step.
        reg = ReadOnlyRegistry()
        a, b, c, d = ro(5), ro(5), ro(2), ro(5)
        for t in (a, b, c, d):
            reg.register(t)
        assert reg.snapshot_counts() == {2: 1, 5: 3}
        reg.deregister(b)
        assert reg.snapshot_counts() == {2: 1, 5: 2}
        reg.deregister(c)
        assert reg.min_active_sn() == 5
        reg.deregister(a)
        reg.deregister(d)
        assert reg.snapshot_counts() == {}
        assert reg.min_active_sn() is None

    def test_deregister_twice_rejected(self):
        reg = ReadOnlyRegistry()
        t = ro(4)
        reg.register(t)
        reg.deregister(t)
        with pytest.raises(ProtocolError, match="holds no snapshot lease"):
            reg.deregister(t)

    def test_renew_pushes_expiry(self):
        now = [0.0]
        reg = ReadOnlyRegistry(ttl=10.0, clock=lambda: now[0])
        t = ro(1)
        lease = reg.register(t)
        assert lease.expires_at == 10.0
        now[0] = 7.0
        reg.renew(t)
        assert lease.expires_at == 17.0
        assert lease.renewals == 1

    def test_no_ttl_means_no_expiry(self):
        reg = ReadOnlyRegistry()  # ttl=None: the original multiset behavior
        lease = reg.register(ro(1))
        assert lease.expires_at == float("inf")
        assert reg.expire_due(1e9) == []

    def test_zero_or_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ReadOnlyRegistry(ttl=0)
        with pytest.raises(ValueError):
            ReadOnlyRegistry(ttl=-1.0)

    def test_expire_due_revokes_overdue_only(self):
        now = [0.0]
        reg = ReadOnlyRegistry(ttl=10.0, clock=lambda: now[0])
        stale, fresh = ro(1), ro(2)
        reg.register(stale)
        now[0] = 5.0
        reg.register(fresh)  # expires at 15
        expired = reg.expire_due(12.0)
        assert [lease.txn_id for lease in expired] == [stale.txn_id]
        assert expired[0].revoke_cause == "lease_expired"
        assert reg.active_sns() == [2]
        assert reg.revoked_counts == {"lease_expired": 1}

    def test_revoke_oldest_orders_by_sn_then_registration(self):
        reg = ReadOnlyRegistry()
        first_at_5, second_at_5, at_3 = ro(5), ro(5), ro(3)
        reg.register(first_at_5)
        reg.register(second_at_5)
        reg.register(at_3)
        victims = reg.revoke_oldest(2)
        assert [v.txn_id for v in victims] == [at_3.txn_id, first_at_5.txn_id]
        assert all(v.revoke_cause == "memory_pressure" for v in victims)
        assert reg.active_sns() == [5]
        assert reg.lease_count() == 3  # revoked leases linger until deregister

    def test_check_and_renew_raise_after_revocation(self):
        reg = ReadOnlyRegistry()
        t = ro(4)
        reg.register(t)
        reg.revoke_oldest(1)
        with pytest.raises(SnapshotTooOld) as exc_info:
            reg.check(t)
        assert exc_info.value.sn == 4
        assert exc_info.value.cause == "memory_pressure"
        with pytest.raises(SnapshotTooOld):
            reg.renew(t)

    def test_revoked_lease_deregisters_quietly(self):
        # The abort path cleans up a revoked session without a second error.
        reg = ReadOnlyRegistry()
        t = ro(4)
        reg.register(t)
        reg.revoke_oldest(1)
        reg.deregister(t)
        assert reg.lease_count() == 0
        assert reg.snapshot_counts() == {}

    def test_revocation_releases_exactly_one_pin_of_shared_sn(self):
        reg = ReadOnlyRegistry()
        a, b = ro(6), ro(6)
        reg.register(a)
        reg.register(b)
        reg.revoke_oldest(1)
        assert reg.snapshot_counts() == {6: 1}
        assert reg.active_count() == 1


class TestBoundedCollect:
    def hammer(self, store, vc, key, n):
        """Commit n serial writers to key; versions get tn 1..n."""
        for _ in range(n):
            t = Transaction()
            vc.vc_register(t)
            store.install(key, t.tn, t.tn)
            vc.vc_complete(t)

    def test_every_sn_pinning_a_different_version_is_retained(self):
        # Adversarial: registered readers at every historical sn, each
        # resolving to a different version of the same chain.  Nothing the
        # pin set needs may go; nothing else above may stay.
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        readers = []
        for _ in range(6):
            t = Transaction()
            vc.vc_register(t)
            store.install("x", t.tn, t.tn)
            vc.vc_complete(t)
            r = ro(vc.vc_start())
            gc.registry.register(r)
            readers.append(r)
        gc.collect()
        for r in readers:
            assert store.read_snapshot("x", r.sn).value == r.sn
        # All six versions distinct-pinned: only the key's implicit initial
        # version (tn=0, below every pin) is reclaimable.
        assert gc.total_discarded == 1

    def test_interior_versions_between_pins_are_reclaimed(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        self.hammer(store, vc, "x", 2)
        old = ro(vc.vc_start())  # sn=2
        gc.registry.register(old)
        self.hammer(store, vc, "x", 10)  # versions 3..12 behind the pin
        discarded = gc.collect()
        # Retained: version 2 (the pin) and version 12 (vtnc).  Discarded:
        # the implicit v0, v1, and 3..11 — the latter nine are interior,
        # versions a horizon-only pruner would have kept.
        assert discarded == 11
        assert gc.interior_discarded == 9
        assert store.read_snapshot("x", old.sn).value == 2
        assert store.read_snapshot("x", vc.vtnc).value == 12

    def test_revocation_unblocks_reclamation(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        self.hammer(store, vc, "x", 1)
        pin = ro(vc.vc_start())
        gc.registry.register(pin)
        self.hammer(store, vc, "x", 5)
        gc.collect()
        assert store.read_snapshot("x", pin.sn).value == 1
        before, _ = store.chain_stats()
        gc.registry.revoke_oldest(1)
        gc.collect()
        after, _ = store.chain_stats()
        assert after < before
        assert store.read_snapshot("x", vc.vtnc).value == 6

    def test_unbounded_flag_reproduces_horizon_rule(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc, bounded=False)
        self.hammer(store, vc, "x", 2)
        pin = ro(vc.vc_start())  # sn=2 pins the horizon
        gc.registry.register(pin)
        self.hammer(store, vc, "x", 10)
        gc.collect()
        # Horizon = 2: only v0 and v1 go; the whole suffix 2..12 stays.
        live, longest = store.chain_stats()
        assert (live, longest) == (11, 11)
        assert gc.total_discarded == 2
        assert gc.interior_discarded == 0

    def test_scan_cost_per_reclaimed_is_bounded(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        for round_no in range(20):
            self.hammer(store, vc, "x", 5)
            gc.collect()
        # Amortized O(1): each sweep walks ~chain-length versions and the
        # chain stays short, so examined/reclaimed stays a small constant.
        assert gc.scan_cost_per_reclaimed() < 4.0
