"""Tests for garbage collection (paper Section 6 rule)."""

import pytest

from repro.core.transaction import Transaction, TxnClass
from repro.core.version_control import VersionControl
from repro.errors import ProtocolError
from repro.storage.gc import GarbageCollector, ReadOnlyRegistry
from repro.storage.mvstore import MVStore


def ro(sn):
    t = Transaction(TxnClass.READ_ONLY)
    t.sn = sn
    return t


class TestRegistry:
    def test_register_and_min(self):
        reg = ReadOnlyRegistry()
        assert reg.min_active_sn() is None
        reg.register(ro(5))
        reg.register(ro(3))
        assert reg.min_active_sn() == 3
        assert reg.active_count() == 2

    def test_shared_start_numbers_are_multiset(self):
        reg = ReadOnlyRegistry()
        a, b = ro(4), ro(4)
        reg.register(a)
        reg.register(b)
        reg.deregister(a)
        assert reg.min_active_sn() == 4
        reg.deregister(b)
        assert reg.min_active_sn() is None

    def test_register_without_sn_rejected(self):
        reg = ReadOnlyRegistry()
        with pytest.raises(ProtocolError, match="no start number"):
            reg.register(Transaction(TxnClass.READ_ONLY))

    def test_deregister_unknown_rejected(self):
        reg = ReadOnlyRegistry()
        with pytest.raises(ProtocolError, match="not registered"):
            reg.deregister(ro(1))


class TestHorizon:
    def build(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        return store, vc, gc

    def complete_n(self, vc, n):
        for _ in range(n):
            t = Transaction()
            vc.vc_register(t)
            vc.vc_complete(t)

    def test_horizon_is_vtnc_without_readers(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 4)
        assert gc.horizon() == 4

    def test_horizon_lowered_by_old_reader(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 4)
        gc.registry.register(ro(2))
        assert gc.horizon() == 2

    def test_reader_above_vtnc_does_not_raise_horizon(self):
        store, vc, gc = self.build()
        self.complete_n(vc, 2)
        gc.registry.register(ro(10))  # cannot happen in practice, but safe
        assert gc.horizon() == 2


class TestCollect:
    def test_collect_discards_unreachable_versions(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        for tn in (1, 2, 3, 4):
            t = Transaction()
            vc.vc_register(t)
            store.install("x", tn, tn)
            vc.vc_complete(t)
        # vtnc == 4 and no active readers: only version 4 remains reachable.
        discarded = gc.collect()
        assert discarded == 4
        assert gc.total_discarded == 4
        assert gc.passes == 1
        assert store.read_snapshot("x", 4).value == 4

    def test_active_reader_protects_its_snapshot(self):
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        reader = None
        for tn in (1, 2, 3):
            t = Transaction()
            vc.vc_register(t)
            store.install("x", tn, tn)
            vc.vc_complete(t)
            if tn == 1:
                reader = ro(vc.vc_start())  # sn = 1
                gc.registry.register(reader)
        gc.collect()
        # Reader's snapshot (version 1) must survive; only v0 collectable.
        assert store.read_snapshot("x", reader.sn).value == 1

    def test_collect_never_discards_at_or_above_vtnc(self):
        """Paper: never discard versions as young as or younger than vtnc."""
        store = MVStore()
        vc = VersionControl()
        gc = GarbageCollector(store, vc)
        t1, t2 = Transaction(), Transaction()
        vc.vc_register(t1)
        vc.vc_register(t2)
        store.install("x", 1, "a")
        store.install("x", 2, "b")
        vc.vc_complete(t1)  # vtnc = 1; t2 still active
        gc.collect()
        assert store.read_snapshot("x", 1).value == "a"
        assert store.read_snapshot("x", 2).value == "b"
