"""Tests for write-ahead logging, crash injection, and recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.recoverable import RecoverableVC2PLScheduler
from repro.histories import assert_one_copy_serializable
from repro.storage.wal import (
    LogRecord,
    RecordKind,
    WriteAheadLog,
    install_committed,
    recover,
    redo_summary,
)


class TestWriteAheadLog:
    def test_append_is_volatile_until_force(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        assert log.durable_records() == []
        log.force()
        assert len(log.durable_records()) == 1

    def test_crash_drops_volatile_suffix(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        log.force()
        log.append(LogRecord(RecordKind.WRITE, 2, key="y", value=2))
        lost = log.crash()
        assert lost == 1
        assert len(log.all_records()) == 1

    def test_forces_counted(self):
        log = WriteAheadLog()
        log.force()
        log.force()
        assert log.forces == 2

    def test_redo_summary(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        log.append(LogRecord(RecordKind.COMMIT, 1, tn=1))
        assert redo_summary(log.all_records()) == {"write": 1, "commit": 1}


class TestRecoverFunction:
    def test_empty_log_recovers_empty_state(self):
        store, vc = recover(WriteAheadLog())
        assert len(store) == 0
        assert vc.tnc == 1

    def test_committed_writes_replayed_in_tn_order(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 10, key="x", value="a"))
        log.append(LogRecord(RecordKind.COMMIT, 10, tn=1))
        log.append(LogRecord(RecordKind.WRITE, 11, key="x", value="b"))
        log.append(LogRecord(RecordKind.COMMIT, 11, tn=2))
        log.force()
        store, vc = recover(log)
        assert store.read_snapshot("x", 2).value == "b"
        assert store.read_snapshot("x", 1).value == "a"
        assert vc.tnc == 3
        assert vc.vtnc == 2

    def test_uncommitted_writes_ignored(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 10, key="x", value="ghost"))
        log.force()
        store, _vc = recover(log)
        assert "x" not in store

    def test_aborted_transactions_ignored(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 10, key="x", value="ghost"))
        log.append(LogRecord(RecordKind.ABORT, 10))
        log.force()
        store, _vc = recover(log)
        assert "x" not in store


class TestRecoverableScheduler:
    def test_commit_survives_crash(self):
        db = RecoverableVC2PLScheduler()
        t = db.begin()
        db.write(t, "x", 42).result()
        db.commit(t).result()
        db.crash()
        db2 = db.recovered()
        r = db2.begin(read_only=True)
        assert db2.read(r, "x").result() == 42

    def test_uncommitted_work_vanishes(self):
        db = RecoverableVC2PLScheduler()
        t = db.begin()
        db.write(t, "x", 42).result()   # staged + logged, never committed
        lost = db.crash()
        assert lost >= 1
        db2 = db.recovered()
        r = db2.begin(read_only=True)
        assert db2.read(r, "x").result() is None

    def test_numbering_resumes_above_recovered_tn(self):
        db = RecoverableVC2PLScheduler()
        for value in (1, 2, 3):
            t = db.begin()
            db.write(t, "x", value).result()
            db.commit(t).result()
        db.crash()
        db2 = db.recovered()
        t = db2.begin()
        db2.write(t, "x", 4).result()
        db2.commit(t).result()
        assert t.tn == 4
        chain = [v.tn for v in db2.store.object("x").versions()]
        assert chain == [0, 1, 2, 3, 4]  # implicit initial version + replayed

    def test_aborted_txn_never_resurfaces(self):
        db = RecoverableVC2PLScheduler()
        t = db.begin()
        db.write(t, "x", 13).result()
        db.abort(t)
        good = db.begin()
        db.write(good, "x", 7).result()
        db.commit(good).result()
        db.crash()
        db2 = db.recovered()
        r = db2.begin(read_only=True)
        assert db2.read(r, "x").result() == 7

    def test_one_force_per_commit(self):
        db = RecoverableVC2PLScheduler()
        for i in range(5):
            t = db.begin()
            db.write(t, f"k{i}", i).result()
            db.commit(t).result()
        assert db.log.forces == 5

    def test_recovered_history_continues_serializable(self):
        db = RecoverableVC2PLScheduler()
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        db.crash()
        db2 = db.recovered()
        t2 = db2.begin()
        v = db2.read(t2, "x").result()
        db2.write(t2, "x", v + 1).result()
        db2.commit(t2).result()
        assert_one_copy_serializable(db2.history)


@settings(max_examples=60, deadline=None)
@given(
    crash_after=st.integers(min_value=0, max_value=10),
    values=st.lists(st.integers(0, 100), min_size=1, max_size=10),
)
def test_property_crash_anywhere_is_all_or_nothing(crash_after, values):
    """Inject a crash after the Nth committed transaction; recovery must
    reflect exactly the committed prefix, nothing more, nothing less."""
    db = RecoverableVC2PLScheduler()
    committed = []
    for i, value in enumerate(values):
        t = db.begin()
        db.write(t, "acc", value).result()
        db.write(t, f"side{i}", value).result()
        if len(committed) >= crash_after:
            break
        db.commit(t).result()
        committed.append(value)
    db.crash()
    db2 = db.recovered()
    r = db2.begin(read_only=True)
    expected = committed[-1] if committed else None
    assert db2.read(r, "acc").result() == expected
    assert db2.vc.vtnc == len(committed)


def _chains(store):
    return {
        key: [(v.tn, v.value) for v in store.object(key).versions()]
        for key in store.keys()
    }


class TestIdempotentApply:
    """Replaying the same durable prefix twice must change nothing.

    Log shipping (repro.replica) re-sends unacknowledged suffixes after
    drops and partitions, so the apply path — the same
    :func:`install_committed` recovery uses — must tolerate a record being
    applied at the same log position more than once.
    """

    def _loaded_log(self):
        db = RecoverableVC2PLScheduler()
        for i in range(5):
            t = db.begin()
            db.write(t, f"k{i % 2}", i).result()
            db.commit(t).result()
        return db.log

    def test_recover_twice_identical_chains_and_counters(self):
        log = self._loaded_log()
        store1, vc1 = recover(log)
        store2, vc2 = recover(log)
        assert _chains(store1) == _chains(store2)
        assert (vc1.tnc, vc1.vtnc) == (vc2.tnc, vc2.vtnc)

    def test_install_committed_twice_is_idempotent(self):
        store, _vc = recover(self._loaded_log())
        before = _chains(store)
        install_committed(store, 5, [("k0", 4)])  # tn 5 wrote k0=4 already
        assert _chains(store) == before

    def test_double_apply_of_durable_suffix(self):
        log = self._loaded_log()
        store, _vc = recover(log)
        baseline = _chains(store)
        # Re-apply the whole durable prefix, exactly as a replica would on a
        # duplicated shipment: stage writes, install on commit.
        staged: dict[int, list] = {}
        for record in log.durable_suffix(0):
            if record.kind is RecordKind.WRITE:
                staged.setdefault(record.txn_id, []).append(
                    (record.key, record.value)
                )
            elif record.kind is RecordKind.COMMIT:
                install_committed(store, record.tn, staged.pop(record.txn_id, ()))
        assert _chains(store) == baseline

    def test_durable_suffix_bounds(self):
        log = WriteAheadLog()
        log.append(LogRecord(RecordKind.WRITE, 1, key="x", value=1))
        log.force()
        log.append(LogRecord(RecordKind.WRITE, 2, key="y", value=2))
        assert log.durable_length() == 1
        assert len(log.durable_suffix(0)) == 1  # volatile tail excluded
        assert log.durable_suffix(1) == []
        with pytest.raises(ValueError):
            log.durable_suffix(-1)


class TestCheckpointing:
    def _loaded_db(self, commits=6):
        db = RecoverableVC2PLScheduler()
        for i in range(commits):
            t = db.begin()
            db.write(t, f"k{i % 3}", i).result()
            db.commit(t).result()
        return db

    def test_checkpoint_truncates_log(self):
        db = self._loaded_db()
        before = len(db.log)
        dropped = db.checkpoint()
        assert dropped == before
        assert len(db.log) == 1  # just the checkpoint record

    def test_recovery_from_checkpoint_restores_versions(self):
        db = self._loaded_db()
        db.checkpoint()
        db.crash()
        db2 = db.recovered()
        r = db2.begin(read_only=True)
        assert db2.read(r, "k0").result() == 3
        assert db2.read(r, "k2").result() == 5
        # Old snapshots survive too: version chains were checkpointed whole.
        assert db2.store.read_snapshot("k0", 1).value == 0

    def test_numbering_resumes_after_checkpoint_recovery(self):
        db = self._loaded_db(commits=4)
        db.checkpoint()
        db.crash()
        db2 = db.recovered()
        t = db2.begin()
        db2.write(t, "k0", 99).result()
        db2.commit(t).result()
        assert t.tn == 5

    def test_commits_after_checkpoint_replay(self):
        db = self._loaded_db(commits=3)
        db.checkpoint()
        t = db.begin()
        db.write(t, "post", "yes").result()
        db.commit(t).result()
        db.crash()
        db2 = db.recovered()
        r = db2.begin(read_only=True)
        assert db2.read(r, "post").result() == "yes"
        assert db2.read(r, "k0").result() == 0

    def test_checkpoint_composes_with_gc(self):
        db = self._loaded_db(commits=9)
        db.gc.collect()  # discard unreachable old versions
        db.checkpoint()
        db.crash()
        db2 = db.recovered()

        def nonzero_versions(store):
            return sum(
                1
                for key in store.keys()
                for v in store.object(key).versions()
                if v.tn != 0
            )

        # The collected versions stay collected after recovery (recovery
        # re-creates the implicit initial version per object, nothing else).
        assert nonzero_versions(db2.store) == nonzero_versions(db.store)
        r = db2.begin(read_only=True)
        assert db2.read(r, "k0").result() == 6

    def test_checkpoint_with_inflight_rw_rejected(self):
        db = self._loaded_db(commits=1)
        t = db.begin()
        db.write(t, "x", 1).result()
        with pytest.raises(Exception, match="in-flight"):
            db.checkpoint()
        db.abort(t)

    def test_checkpoint_without_truncation(self):
        db = self._loaded_db(commits=2)
        before = len(db.log)
        dropped = db.checkpoint(truncate=False)
        assert dropped == 0
        assert len(db.log) == before + 1
