"""Tests for the multiversion store facade."""

import pytest

from repro.errors import ProtocolError
from repro.storage.mvstore import MVStore


class TestObjects:
    def test_objects_spring_into_existence(self):
        store = MVStore()
        assert "x" not in store
        obj = store.object("x")
        assert "x" in store
        assert store.object("x") is obj
        assert len(store) == 1

    def test_preload(self):
        store = MVStore()
        store.preload({"a": 1, "b": 2})
        assert store.read_snapshot("a", 0).value == 1
        assert set(store.keys()) == {"a", "b"}

    def test_preload_duplicate_rejected(self):
        store = MVStore()
        store.preload({"a": 1})
        with pytest.raises(KeyError):
            store.preload({"a": 2})

    def test_custom_initial_value(self):
        store = MVStore(initial_value=0)
        assert store.read_snapshot("anything", 0).value == 0


class TestReadsAndWrites:
    def test_install_and_snapshot(self):
        store = MVStore()
        store.install("x", 1, "one")
        store.install("x", 2, "two")
        assert store.read_snapshot("x", 1).value == "one"
        assert store.read_snapshot("x", 2).value == "two"

    def test_latest_committed_ignores_pending(self):
        store = MVStore()
        store.install("x", 1, "one")
        store.place_pending("x", 2, "two")
        assert store.read_latest_committed("x").tn == 1
        assert store.version_leq("x", 5).tn == 2

    def test_pending_lifecycle(self):
        store = MVStore()
        store.place_pending("x", 1, "one", creator_txn_id=42)
        assert store.version_leq("x", 1).creator_txn_id == 42
        store.commit_pending("x", 1)
        assert store.read_latest_committed("x").tn == 1

    def test_discard_pending(self):
        store = MVStore()
        store.place_pending("x", 1, "gone")
        store.discard_pending("x", 1)
        assert store.read_latest_committed("x").tn == 0

    def test_double_install_rejected(self):
        store = MVStore()
        store.install("x", 1, "a")
        with pytest.raises(ProtocolError):
            store.install("x", 1, "b")


class TestMaintenance:
    def test_version_count(self):
        store = MVStore()
        store.install("x", 1, "a")
        store.install("y", 1, "b")
        store.install("y", 2, "c")
        assert store.version_count() == 5  # 2 initial + 3 installed

    def test_prune_across_objects(self):
        store = MVStore()
        for tn in (1, 2, 3):
            store.install("x", tn, tn)
        store.install("y", 1, 1)
        discarded = store.prune(2)
        assert discarded == 3  # x loses v0,v1; y loses v0
        assert store.gc_discarded == 3

    def test_dump(self):
        store = MVStore()
        store.install("x", 1, "a")
        assert store.dump() == {"x": [(0, None), (1, "a")]}


class TestChainStatsUnderSweep:
    """chain_stats stays coherent while sweeps interleave with installs.

    The cooperative execution model serializes the actual calls, but the
    budgeted collector interleaves *partial* sweeps (prune_some) with
    installs — these pin down the gauge invariants the SLO signals rely on:
    counts are never negative, always consistent with version_count, and
    within one sweep cycle (no installs) the footprint is monotone
    non-increasing.
    """

    def test_stats_consistent_across_interleaved_partial_sweeps(self):
        store = MVStore()
        keys = [f"k{i}" for i in range(5)]
        tn = 0
        cursor = 0
        for round_no in range(30):
            for key in keys:
                tn += 1
                store.install(key, tn, tn)
            visible = tn
            # A partial sweep touches 2 objects, then more installs land.
            discarded, cursor = store.prune_some(
                visible, 2, cursor, pins=[], visible=visible
            )
            live, longest = store.chain_stats()
            assert discarded >= 0
            assert live >= len(store) >= 1
            assert longest >= 1
            assert live == store.version_count()

    def test_footprint_monotone_within_a_quiescent_sweep_cycle(self):
        store = MVStore()
        keys = [f"k{i}" for i in range(6)]
        tn = 0
        for _ in range(10):
            for key in keys:
                tn += 1
                store.install(key, tn, tn)
        visible = tn
        cursor = 0
        live_before, longest_before = store.chain_stats()
        for _ in range(len(keys)):  # one full cycle, one object at a time
            _, cursor = store.prune_some(visible, 1, cursor, pins=[], visible=visible)
            live, longest = store.chain_stats()
            assert live <= live_before
            assert longest <= longest_before
            live_before, longest_before = live, longest
        assert cursor == 0  # wrapped exactly once
        # Fully swept: one retained version per chain.
        assert store.chain_stats() == (len(keys), 1)

    def test_sweep_never_drops_below_one_version_per_chain(self):
        store = MVStore()
        for tn in (1, 2, 3):
            store.install("x", tn, tn)
        store.prune_versions(3, [])
        live, longest = store.chain_stats()
        assert (live, longest) == (1, 1)
        # Repeat sweeps are idempotent — no underflow, no negative counts.
        assert store.prune_versions(3, []) == (0, 0, 1)
        assert store.chain_stats() == (1, 1)
