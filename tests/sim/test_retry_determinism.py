"""Deterministic retry jitter: same master seed, same retry schedule.

The QoS backoff draws its jitter from a named
:class:`~repro.sim.random_streams.RandomStreams` stream — the same
mechanism every other randomized component uses — so a whole run's retry
timing replays bit-for-bit from the master seed, and independent
components (couriers, clients, retry loops) never perturb each other's
draws.
"""

from repro.qos.retry import BackoffPolicy
from repro.sim.random_streams import RandomStreams


class TestRetryScheduleDeterminism:
    def test_same_master_seed_identical_schedules(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, cap=30.0, jitter=0.5)
        runs = []
        for _ in range(3):
            streams = RandomStreams(1234)
            runs.append(policy.schedule(10, streams.stream("session.retry")))
        assert runs[0] == runs[1] == runs[2]

    def test_streams_are_independent(self):
        """Draining an unrelated stream must not shift the retry jitter."""
        policy = BackoffPolicy()
        quiet = RandomStreams(7)
        noisy = RandomStreams(7)
        for _ in range(1000):
            noisy.stream("courier.latency").random()
        assert policy.schedule(6, quiet.stream("session.retry")) == policy.schedule(
            6, noisy.stream("session.retry")
        )

    def test_different_stream_names_differ(self):
        policy = BackoffPolicy()
        streams = RandomStreams(7)
        a = policy.schedule(6, streams.stream("client-1.retry"))
        b = policy.schedule(6, streams.stream("client-2.retry"))
        assert a != b

    def test_schedule_is_monotone_in_expectation(self):
        """Un-jittered delays grow exponentially to the cap."""
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=16.0, jitter=0.0)
        rng = RandomStreams(0).stream("x")
        assert policy.schedule(6, rng) == [1.0, 2.0, 4.0, 8.0, 16.0, 16.0]
