"""Tests for the discrete-event simulation engine."""

import pytest

from repro.core.futures import OpFuture
from repro.sim.engine import SimError, Simulator, run_processes


class TestEventLoop:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(5, lambda: seen.append("b"))
        sim.call_at(1, lambda: seen.append("a"))
        sim.call_at(9, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 9

    def test_same_time_fifo(self):
        sim = Simulator()
        seen = []
        sim.call_at(1, lambda: seen.append(1))
        sim.call_at(1, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.call_at(5, lambda: None)
        sim.run()
        with pytest.raises(SimError, match="in the past"):
            sim.call_at(1, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.call_at(1, lambda: seen.append(1))
        sim.call_at(10, lambda: seen.append(10))
        sim.run(until=5)
        assert seen == [1]
        assert sim.now == 5
        sim.run()
        assert seen == [1, 10]


class TestProcesses:
    def test_delay_yields_advance_time(self):
        sim = Simulator()
        marks = []

        def proc():
            yield 3
            marks.append(sim.now)
            yield 2.5
            marks.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert marks == [3, 5.5]

    def test_future_yield_suspends_until_resolved(self):
        sim = Simulator()
        future = OpFuture("op")
        got = []

        def waiter():
            value = yield future
            got.append((sim.now, value))

        def resolver():
            yield 7
            future.resolve("done")

        sim.spawn(waiter())
        sim.spawn(resolver())
        sim.run()
        assert got == [(7, "done")]

    def test_failed_future_throws_into_process(self):
        sim = Simulator()
        future = OpFuture("op")
        caught = []

        def waiter():
            try:
                yield future
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield 1
            future.fail(RuntimeError("boom"))

        sim.spawn(waiter())
        sim.spawn(failer())
        sim.run()
        assert caught == ["boom"]

    def test_process_return_value_captured(self):
        sim = Simulator()

        def proc():
            yield 1
            return 42

        p = sim.spawn(proc())
        sim.run()
        assert p.finished
        assert p.result == 42

    def test_unhandled_process_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield 1
            raise ValueError("oops")

        p = sim.spawn(bad())
        with pytest.raises(ValueError, match="oops"):
            sim.run()
        assert p.error is not None

    def test_invalid_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn(bad())
        with pytest.raises(SimError, match="expected a delay or an OpFuture"):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def bad():
            yield -1

        sim.spawn(bad())
        with pytest.raises(SimError, match="negative"):
            sim.run()

    def test_blocked_process_detected_at_drain(self):
        sim = Simulator()
        never = OpFuture("never")

        def stuck():
            yield never

        sim.spawn(stuck(), name="stuck")
        sim.run()
        blocked = sim.blocked_processes()
        assert [p.name for p in blocked] == ["stuck"]
        assert not sim.all_finished()


class TestDeterminism:
    def test_identical_runs_produce_identical_fingerprints(self):
        def build():
            sim = Simulator()
            futures = [OpFuture(str(i)) for i in range(3)]

            def producer():
                for i, f in enumerate(futures):
                    yield 2
                    f.resolve(i)

            def consumer(f):
                value = yield f
                yield value + 0.5

            sim.spawn(producer())
            for f in futures:
                sim.spawn(consumer(f))
            sim.run()
            return sim.now, sim.events_dispatched

        assert build() == build()

    def test_run_processes_helper(self):
        def p():
            yield 2

        sim = run_processes([p(), p()])
        assert sim.all_finished()
        assert sim.now == 2
