"""Tests for random streams, zipf generation, and stat collectors."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random_streams import RandomStreams, ZipfGenerator
from repro.sim.stats import Summary, TimeWeighted


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(1).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(1)
        sequence_with = [streams.stream("a").random() for _ in range(5)]
        fresh = RandomStreams(1)
        fresh.stream("b").random()  # extra consumer must not perturb "a"
        sequence_without = [fresh.stream("a").random() for _ in range(5)]
        assert sequence_with == sequence_without

    def test_different_names_differ(self):
        streams = RandomStreams(1)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_stream_identity_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")


class TestZipf:
    def test_theta_zero_is_roughly_uniform(self):
        gen = ZipfGenerator(10, 0.0, random.Random(7))
        draws = [gen.draw() for _ in range(10_000)]
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 700 and max(counts) < 1300

    def test_high_theta_skews_to_low_indices(self):
        gen = ZipfGenerator(100, 1.2, random.Random(7))
        draws = [gen.draw() for _ in range(5_000)]
        head_share = sum(1 for d in draws if d < 10) / len(draws)
        assert head_share > 0.5, "top 10% of keys should dominate"

    def test_draws_in_range(self):
        gen = ZipfGenerator(5, 0.9, random.Random(1))
        assert all(0 <= gen.draw() < 5 for _ in range(1_000))

    def test_single_key(self):
        gen = ZipfGenerator(1, 2.0, random.Random(1))
        assert gen.draw() == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 0.5, random.Random(1))
        with pytest.raises(ValueError):
            ZipfGenerator(5, -0.1, random.Random(1))


class TestSummary:
    def test_empty_summary_zeroes(self):
        s = Summary()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.p95 == 0.0

    def test_mean_and_extremes(self):
        s = Summary()
        for v in (1, 2, 3, 4):
            s.add(v)
        assert s.mean == 2.5
        assert s.minimum == 1
        assert s.maximum == 4

    def test_quantiles(self):
        s = Summary()
        for v in range(1, 101):
            s.add(v)
        assert s.p50 == 50
        assert s.p95 == 95
        assert s.p99 == 99

    def test_quantile_bounds_checked(self):
        s = Summary()
        s.add(1)
        with pytest.raises(ValueError):
            s.quantile(1.5)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_variance_matches_two_pass(self, values):
        s = Summary()
        for v in values:
            s.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert math.isclose(s.variance, var, rel_tol=1e-6, abs_tol=1e-6)
        assert math.isclose(s.stdev, math.sqrt(var), rel_tol=1e-6, abs_tol=1e-6)


class TestTimeWeighted:
    def test_constant_value(self):
        tw = TimeWeighted(0.0, 5.0)
        tw.update(10.0, 5.0)
        assert tw.average(10.0) == 5.0

    def test_step_function(self):
        tw = TimeWeighted(0.0, 0.0)
        tw.update(5.0, 10.0)   # 0 for [0,5)
        tw.update(10.0, 0.0)   # 10 for [5,10)
        assert tw.average(10.0) == 5.0
        assert tw.maximum == 10.0

    def test_time_backward_rejected(self):
        tw = TimeWeighted(0.0, 0.0)
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(3.0, 1.0)

    def test_zero_span_returns_current(self):
        tw = TimeWeighted(0.0, 7.0)
        assert tw.average(0.0) == 7.0
