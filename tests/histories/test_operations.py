"""Tests for the Section 3 model: operations, histories, reads-from."""

import pytest

from repro.histories.operations import (
    History,
    Op,
    OpKind,
    abort,
    begin,
    commit,
    read,
    write,
)


class TestOpConstruction:
    def test_shorthand_read(self):
        op = read(2, "x", 1)
        assert op == Op(OpKind.READ, 2, "x", 1)

    def test_write_defaults_version_to_txn(self):
        assert write(3, "y").version == 3

    def test_str_forms(self):
        assert str(read(2, "x", 1)) == "r2[x_1]"
        assert str(write(1, "x")) == "w1[x_1]"
        assert str(commit(4)) == "c4"
        assert str(abort(5)) == "a5"
        assert str(Op(OpKind.READ, 2, "x", None)) == "r2[x]"

    def test_conflicts_single_version(self):
        r = Op(OpKind.READ, 1, "x")
        w = Op(OpKind.WRITE, 2, "x")
        assert r.conflicts_with(w)
        assert w.conflicts_with(r)
        assert not r.conflicts_with(Op(OpKind.READ, 2, "x"))
        assert not w.conflicts_with(Op(OpKind.WRITE, 2, "y"))
        assert not w.conflicts_with(Op(OpKind.WRITE, 2, "x"))  # same txn


class TestParse:
    def test_round_trip_multiversion(self):
        text = "b1 w1[x_1] c1 b2 r2[x_1] c2"
        h = History.parse(text)
        assert str(h) == text

    def test_parse_single_version(self):
        h = History.parse("r1[x] w2[x] c1 c2")
        ops = list(h)
        assert ops[0].version is None

    def test_parse_key_with_underscore_version(self):
        h = History.parse("r10[acct_7_3]")
        op = h.ops[0]
        assert op.key == "acct_7"
        assert op.version == 3


class TestQueries:
    def test_transactions_and_committed(self):
        h = History.parse("w1[x_1] c1 w2[x_2] a2 w3[x_3]")
        assert h.transactions() == {1, 2, 3}
        assert h.committed() == {1}
        assert h.aborted() == {2}

    def test_committed_projection_drops_aborted_and_inflight(self):
        h = History.parse("w1[x_1] c1 w2[x_2] a2 w3[x_3]")
        proj = h.committed_projection()
        assert proj.transactions() == {1}

    def test_reads_from(self):
        h = History.parse("w1[x_1] c1 r2[x_1] r2[y_0] c2")
        assert h.reads_from() == {(2, 1, "x"), (2, 0, "y")}

    def test_reads_from_requires_versions(self):
        h = History.parse("r1[x] c1")
        with pytest.raises(ValueError):
            h.reads_from()

    def test_writers_of_in_order(self):
        h = History.parse("w2[x_2] w1[x_1] w3[y_3]")
        assert h.writers_of("x") == [2, 1]
        assert h.writers_of("y") == [3]

    def test_keys(self):
        h = History.parse("w1[x_1] r1[y_0] c1")
        assert h.keys() == {"x", "y"}


class TestValidate:
    def test_valid_history_passes(self):
        History.parse("b1 r1[x_0] w1[x_1] c1").validate()

    def test_duplicate_read_rejected(self):
        with pytest.raises(ValueError, match="duplicate read"):
            History.parse("r1[x_0] r1[x_0]").validate()

    def test_duplicate_write_rejected(self):
        with pytest.raises(ValueError, match="duplicate write"):
            History.parse("w1[x_1] w1[x_1]").validate()

    def test_read_after_write_rejected(self):
        with pytest.raises(ValueError, match="read after write"):
            History.parse("w1[x_1] r1[x_1]").validate()

    def test_operation_after_commit_rejected(self):
        with pytest.raises(ValueError, match="after transaction"):
            History.parse("c1 r1[x_0]").validate()

    def test_write_must_create_own_version(self):
        with pytest.raises(ValueError, match="must create version"):
            History.parse("w1[x_2]").validate()
