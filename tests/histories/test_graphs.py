"""Tests for the digraph utilities, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histories.graphs import Digraph


def build(edges, nodes=()):
    g = Digraph()
    for n in nodes:
        g.add_node(n)
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestBasics:
    def test_nodes_and_edges(self):
        g = build([(1, 2), (2, 3)], nodes=[4])
        assert set(g.nodes()) == {1, 2, 3, 4}
        assert set(g.edges()) == {(1, 2), (2, 3)}
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert 4 in g
        assert len(g) == 4

    def test_successors(self):
        g = build([(1, 2), (1, 3)])
        assert g.successors(1) == {2, 3}


class TestCycles:
    def test_acyclic_graph(self):
        g = build([(1, 2), (2, 3), (1, 3)])
        assert g.is_acyclic()
        assert g.find_cycle() is None

    def test_simple_cycle_found(self):
        g = build([(1, 2), (2, 1)])
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2}

    def test_self_loop_is_cycle(self):
        g = build([(1, 1)])
        assert not g.is_acyclic()

    def test_long_cycle(self):
        n = 500
        g = build([(i, i + 1) for i in range(n)] + [(n, 0)])
        cycle = g.find_cycle()
        assert cycle is not None
        assert len(set(cycle)) == n + 1

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        g = build([(i, i + 1) for i in range(n)])
        assert g.is_acyclic()

    def test_cycle_in_disconnected_component(self):
        g = build([(1, 2), (10, 11), (11, 12), (12, 10)])
        cycle = g.find_cycle()
        assert set(cycle) == {10, 11, 12}


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = build([(3, 1), (1, 2)])
        order = g.topological_order()
        assert order.index(3) < order.index(1) < order.index(2)

    def test_tie_break_deterministic(self):
        g = build([], nodes=[5, 3, 1, 4])
        assert g.topological_order(tie_break=lambda n: n) == [1, 3, 4, 5]

    def test_cycle_raises(self):
        g = build([(1, 2), (2, 1)])
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()


@settings(max_examples=200, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
    )
)
def test_property_acyclicity_matches_networkx(edges):
    ours = build(edges)
    theirs = nx.DiGraph()
    theirs.add_nodes_from(ours.nodes())
    theirs.add_edges_from(edges)
    assert ours.is_acyclic() == nx.is_directed_acyclic_graph(theirs)


@settings(max_examples=100, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=40
    )
)
def test_property_topological_order_is_valid(edges):
    ours = build(edges)
    if not ours.is_acyclic():
        return
    order = ours.topological_order()
    pos = {n: i for i, n in enumerate(order)}
    assert len(order) == len(ours)
    for u, v in ours.edges():
        assert pos[u] < pos[v]
