"""Tests for the scheduler-to-history bridge."""

import pytest

from repro.core.transaction import Transaction, TxnClass
from repro.histories.operations import OpKind
from repro.histories.recorder import RO_ID_OFFSET, HistoryRecorder


def rw_txn(tn=None):
    t = Transaction()
    t.tn = tn
    return t


def ro_txn(sn=0):
    t = Transaction(TxnClass.READ_ONLY)
    t.sn = sn
    return t


class TestIdentity:
    def test_read_write_identity_is_tn(self):
        assert HistoryRecorder.identity(rw_txn(tn=7)) == 7

    def test_read_only_identity_is_offset_id(self):
        t = ro_txn()
        assert HistoryRecorder.identity(t) == RO_ID_OFFSET + t.txn_id

    def test_unnumbered_read_write_rejected(self):
        with pytest.raises(ValueError, match="no tn"):
            HistoryRecorder.identity(rw_txn())

    def test_tn_in_read_only_range_rejected(self):
        # A tn at or above RO_ID_OFFSET would alias a read-only node and
        # silently misattribute the writer's operations in every checker.
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="RO_ID_OFFSET"):
            HistoryRecorder.identity(rw_txn(tn=RO_ID_OFFSET))
        with pytest.raises(ProtocolError, match="refusing to alias"):
            HistoryRecorder.identity(rw_txn(tn=RO_ID_OFFSET + 5))
        # The guard is exclusive: the last legal tn still records.
        assert HistoryRecorder.identity(rw_txn(tn=RO_ID_OFFSET - 1)) == RO_ID_OFFSET - 1

    def test_commit_of_aliasing_tn_raises_loudly(self):
        from repro.errors import ProtocolError

        rec = HistoryRecorder()
        t = rw_txn()
        rec.record_begin(t)
        rec.record_write(t, "x")
        t.tn = RO_ID_OFFSET + 1
        with pytest.raises(ProtocolError):
            rec.record_commit(t)


class TestBufferingAndFlush:
    def test_operations_flushed_under_tn_at_commit(self):
        rec = HistoryRecorder()
        t = rw_txn()
        rec.record_begin(t)
        rec.record_read(t, "x", 0)
        rec.record_write(t, "x")
        t.tn = 3  # assigned late, as under 2PL
        rec.record_commit(t)
        h = rec.history
        assert str(h) == "b3 r3[x_0] w3[x_3] c3"

    def test_own_write_read_fixed_up(self):
        rec = HistoryRecorder()
        t = rw_txn()
        rec.record_write(t, "x")
        rec.record_read(t, "x", None)  # own staged write
        t.tn = 5
        rec.record_commit(t)
        reads = [op for op in rec.history if op.kind is OpKind.READ]
        assert reads[0].version == 5

    def test_aborted_unnumbered_txn_gets_negative_identity(self):
        rec = HistoryRecorder()
        t = rw_txn()
        rec.record_read(t, "x", 0)
        rec.record_abort(t)
        idents = {op.txn for op in rec.history}
        assert all(i < 0 for i in idents)
        assert rec.history.committed() == set()

    def test_aborted_numbered_txn_keeps_tn(self):
        rec = HistoryRecorder()
        t = rw_txn(tn=4)
        rec.record_write(t, "x")
        rec.record_abort(t)
        assert {op.txn for op in rec.history} == {4}

    def test_read_only_commit(self):
        rec = HistoryRecorder()
        t = ro_txn()
        rec.record_begin(t)
        rec.record_read(t, "x", 2)
        rec.record_commit(t)
        ident = RO_ID_OFFSET + t.txn_id
        assert rec.history.committed() == {ident}
        assert (ident, 2, "x") in rec.history.reads_from()

    def test_full_history_includes_in_flight(self):
        rec = HistoryRecorder()
        t = rw_txn()
        rec.record_read(t, "x", 0)
        assert len(rec.history) == 0
        full = rec.full_history()
        assert len(full) == 2  # begin + read under pseudo identity
        assert full.committed() == set()

    def test_distinct_ro_txns_do_not_collide(self):
        rec = HistoryRecorder()
        a, b = ro_txn(), ro_txn()
        rec.record_read(a, "x", 0)
        rec.record_read(b, "x", 0)
        rec.record_commit(a)
        rec.record_commit(b)
        assert len(rec.history.committed()) == 2
