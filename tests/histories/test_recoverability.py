"""Tests for read-strictness checking over the live trace."""

import pytest

from repro.histories.recoverability import check_read_strictness
from repro.protocols.registry import PROTOCOLS, make_scheduler
from tests.stress.driver import RandomDriver


class TestChecker:
    def test_empty_trace_is_strict(self):
        report = check_read_strictness([])
        assert report.strict
        assert report.reads_checked == 0

    def test_read_after_commit_is_strict(self):
        live = [
            ("w", 1, "x", None, None),
            ("c", 1, None, None, 5),
            ("r", 2, "x", 5, None),
            ("c", 2, None, None, 6),
        ]
        report = check_read_strictness(live)
        assert report.strict
        assert report.reads_checked == 1

    def test_dirty_read_detected(self):
        live = [
            ("w", 1, "x", None, None),
            ("r", 2, "x", 5, None),      # reads version 5 before its commit
            ("c", 1, None, None, 5),
            ("c", 2, None, None, 6),
        ]
        report = check_read_strictness(live)
        assert not report.strict
        assert report.violations == [(2, "x", 5)]

    def test_initial_version_reads_exempt(self):
        live = [("r", 1, "x", 0, None)]
        assert check_read_strictness(live).strict

    def test_own_staged_write_exempt(self):
        live = [("r", 1, "x", None, None)]
        assert check_read_strictness(live).strict

    def test_own_pending_version_exempt(self):
        """TO transactions read their own pending (uncommitted) versions."""
        live = [
            ("w", 1, "x", None, None),
            ("r", 1, "x", 7, None),      # own version, committed later as 7
            ("c", 1, None, None, 7),
        ]
        assert check_read_strictness(live).strict


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
@pytest.mark.parametrize("seed", range(3))
def test_every_protocol_is_read_strict(name, seed):
    """The paper's model assumption, verified on adversarial interleavings:
    no protocol ever serves a read from an uncommitted version."""
    scheduler = make_scheduler(name)
    driver = RandomDriver(scheduler, seed=seed)
    driver.run(250)
    report = check_read_strictness(scheduler.recorder.live)
    assert report.strict, report.violations
    assert report.reads_checked > 0
