"""Tests for SG(H), MVSG(H), the 1SR checker and the brute-force oracle.

Includes the textbook examples from Bernstein-Hadzilacos-Goodman that the
paper's Section 3 summarizes, plus property-based cross-checks between the
MVSG verdict and exhaustive enumeration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histories import (
    exists_acyclic_version_order,
    History,
    NotSerializable,
    assert_one_copy_serializable,
    brute_force_one_copy_serializable,
    check_one_copy_serializable,
    is_conflict_serializable,
    is_one_copy_serializable,
    multiversion_serialization_graph,
    one_copy_serial_order,
    serialization_graph,
    version_order_by_number,
    witness_serial_orders,
)


class TestSingleVersionSG:
    def test_serial_history_is_serializable(self):
        h = History.parse("r1[x] w1[x] c1 r2[x] w2[x] c2")
        assert is_conflict_serializable(h)

    def test_classic_nonserializable_interleaving(self):
        # Lost update: r1 r2 w1 w2.
        h = History.parse("r1[x] r2[x] w1[x] c1 w2[x] c2")
        assert not is_conflict_serializable(h)

    def test_aborted_transactions_do_not_count(self):
        h = History.parse("r1[x] r2[x] w1[x] c1 w2[x] a2")
        assert is_conflict_serializable(h)

    def test_sg_edges(self):
        h = History.parse("w1[x] c1 r2[x] c2")
        g = serialization_graph(h)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)


class TestMVSG:
    def test_serial_mv_history(self):
        h = History.parse("w1[x_1] c1 r2[x_1] w2[y_2] c2")
        assert is_one_copy_serializable(h)

    def test_snapshot_read_of_old_version_is_serializable(self):
        # T3 reads the pre-T2 version of x after T2 committed: legal, T3
        # serializes before T2.
        h = History.parse("w1[x_1] c1 w2[x_2] c2 r3[x_1] c3")
        assert is_one_copy_serializable(h)
        order = one_copy_serial_order(h)
        assert order.index(3) < order.index(2)
        assert order.index(1) < order.index(3)

    def test_inconsistent_mixed_snapshot_rejected(self):
        # T3 reads x before T2's write but y after it: not 1SR.
        h = History.parse(
            "w1[x_1] w1[y_1] c1 w2[x_2] w2[y_2] c2 r3[x_1] r3[y_2] c3"
        )
        assert not is_one_copy_serializable(h)

    def test_write_skew_style_cycle(self):
        # T1 reads x_0 writes y; T2 reads y_0 writes x: each reads the other's
        # overwritten version -> MVSG cycle.
        h = History.parse("r1[x_0] r2[y_0] w1[y_1] w2[x_2] c1 c2")
        assert not is_one_copy_serializable(h)

    def test_initial_versions_attributed_to_t0(self):
        h = History.parse("r1[x_0] c1 w2[x_2] c2")
        g = multiversion_serialization_graph(h)
        assert 0 in g  # T0 participates
        assert is_one_copy_serializable(h)

    def test_version_order_by_number(self):
        h = History.parse("w2[x_2] c2 w1[x_1] c1 r3[x_0] c3")
        order = version_order_by_number(h)
        assert order["x"] == [0, 1, 2]

    def test_reader_of_stale_version_before_later_writer(self):
        # r3[x_1] with x_1 << x_2 forces T3 -> T2.
        h = History.parse("w1[x_1] c1 w2[x_2] c2 r3[x_1] c3")
        g = multiversion_serialization_graph(h)
        assert g.has_edge(3, 2)


class TestChecker:
    def test_report_on_serializable(self):
        h = History.parse("w1[x_1] c1 r2[x_1] c2")
        report = check_one_copy_serializable(h)
        assert report.serializable
        assert report.transactions == 2
        assert report.witness_order.index(1) < report.witness_order.index(2)
        assert report.cycle == []

    def test_report_on_nonserializable_has_cycle(self):
        h = History.parse("r1[x_0] r2[y_0] w1[y_1] w2[x_2] c1 c2")
        report = check_one_copy_serializable(h)
        assert not report.serializable
        assert len(report.cycle) >= 3
        assert report.cycle[0] == report.cycle[-1]

    def test_assert_raises_with_cycle(self):
        h = History.parse("r1[x_0] r2[y_0] w1[y_1] w2[x_2] c1 c2")
        with pytest.raises(NotSerializable, match="MVSG cycle"):
            assert_one_copy_serializable(h)

    def test_assert_returns_report_when_fine(self):
        h = History.parse("w1[x_1] c1")
        assert assert_one_copy_serializable(h).serializable


class TestBruteForce:
    def test_agrees_on_serializable(self):
        h = History.parse("w1[x_1] c1 w2[x_2] c2 r3[x_1] c3")
        assert brute_force_one_copy_serializable(h)

    def test_agrees_on_nonserializable(self):
        h = History.parse(
            "w1[x_1] w1[y_1] c1 w2[x_2] w2[y_2] c2 r3[x_1] r3[y_2] c3"
        )
        assert not brute_force_one_copy_serializable(h)

    def test_witness_orders(self):
        h = History.parse("w1[x_1] c1 r2[x_1] c2")
        orders = witness_serial_orders(h)
        assert (1, 2) in orders

    def test_cap_enforced(self):
        h = History.parse(" ".join(f"w{i}[k{i}_{i}] c{i}" for i in range(1, 12)))
        with pytest.raises(ValueError, match="cap"):
            brute_force_one_copy_serializable(h)


# -- randomized cross-check ----------------------------------------------------

@st.composite
def small_mv_history(draw):
    """Random *plausible* MV histories over <= 5 txns and 3 keys.

    Each transaction reads a random committed-so-far version of some keys and
    writes its own version of others; commit order is the id order.  The
    result is sometimes 1SR and sometimes not — both verdicts must agree
    between the MVSG checker and brute force.
    """
    n = draw(st.integers(min_value=1, max_value=5))
    keys = ["x", "y", "z"]
    written: dict[str, list[int]] = {key: [0] for key in keys}
    ops = []
    for txn in range(1, n + 1):
        for key in keys:
            action = draw(st.sampled_from(["skip", "read", "write", "rw"]))
            if action in ("read", "rw"):
                version = draw(st.sampled_from(written[key]))
                ops.append(f"r{txn}[{key}_{version}]")
            if action in ("write", "rw"):
                ops.append(f"w{txn}[{key}_{txn}]")
                written[key].append(txn)
        ops.append(f"c{txn}")
    return History.parse(" ".join(ops))


@settings(max_examples=300, deadline=None)
@given(history=small_mv_history())
def test_property_mvsg_soundness_and_exact_characterization(history):
    """Three-way cross-check of the serializability machinery.

    * Soundness of the fast checker: acyclic MVSG under the version-number
      order implies a serial witness exists (the classic theorem).  The
      converse can fail for arbitrary histories — a blind writer may be
      serializable only under a different version order — which is why the
      exact characterization is checked separately.
    * Exactness of the any-order search: *some* version order yields an
      acyclic MVSG iff brute-force enumeration finds an equivalent serial
      single-version execution (Bernstein–Goodman).
    """
    fast = is_one_copy_serializable(history)
    slow = brute_force_one_copy_serializable(history)
    if fast:
        assert slow, f"MVSG says 1SR, brute force disagrees: {history}"
    try:
        exact = exists_acyclic_version_order(history, max_orders=500_000)
    except ValueError:
        return  # version-order space too large for this example; skip
    assert exact == slow, f"any-order MVSG search disagrees with enumeration: {history}"
