"""Consistent-hash ring edge cases: degenerate, stable, deterministic."""

import random

from repro.shard.ring import HashRing


class TestDegenerateSingleShard:
    def test_every_key_routes_to_the_only_shard(self):
        ring = HashRing(1)
        rng = random.Random(0)
        for _ in range(500):
            key = f"k{rng.randrange(10**9)}"
            assert ring.shard_of(key) == 1

    def test_prefix_pin_is_moot_on_one_shard(self):
        ring = HashRing(1)
        assert ring.shard_of("s1:x") == 1
        # An out-of-range pin falls back to hashing — still shard 1.
        assert ring.shard_of("s7:x") == 1


class TestExplicitPlacement:
    def test_prefix_pins_to_named_shard(self):
        ring = HashRing(4)
        for sid in range(1, 5):
            assert ring.shard_of(f"s{sid}:anything") == sid

    def test_out_of_range_prefix_falls_through_to_hashing(self):
        ring = HashRing(2)
        assert ring.shard_of("s9:x") in (1, 2)

    def test_non_numeric_prefix_is_just_a_key(self):
        ring = HashRing(4)
        assert 1 <= ring.shard_of("snot:a:pin") <= 4
        assert 1 <= ring.shard_of("s:empty") <= 4


class TestDeterminism:
    def test_two_rings_agree_on_seeded_keys(self):
        # Placement is a pure function of (key, n_shards): two processes
        # (or the drill's double run) must agree without coordination.
        a, b = HashRing(4), HashRing(4)
        rng = random.Random(42)
        keys = [f"key-{rng.randrange(10**9)}" for _ in range(1000)]
        assert a.assignment(keys) == b.assignment(keys)

    def test_placement_independent_of_query_order(self):
        ring = HashRing(3)
        keys = [f"k{i}" for i in range(200)]
        forward = {k: ring.shard_of(k) for k in keys}
        backward = {k: ring.shard_of(k) for k in reversed(keys)}
        assert forward == backward


class TestStability:
    def test_same_size_rings_move_nothing(self):
        keys = [f"k{i}" for i in range(500)]
        assert HashRing(4).moved_fraction(HashRing(4), keys) == 0.0

    def test_growing_the_ring_moves_a_minority(self):
        # Consistent hashing's contrast with ``hash % N``: growing 4 -> 5
        # remaps only the arcs the new shard claims (~1/5), not everything.
        rng = random.Random(7)
        keys = [f"key-{rng.randrange(10**9)}" for _ in range(2000)]
        moved = HashRing(4).moved_fraction(HashRing(5), keys)
        assert 0.0 < moved < 0.45, moved

    def test_modulo_hashing_would_move_a_majority(self):
        # The baseline the ring beats: ``crc32 % N`` reshuffles most keys.
        import zlib

        rng = random.Random(7)
        keys = [f"key-{rng.randrange(10**9)}" for _ in range(2000)]
        moved = sum(
            1
            for k in keys
            if zlib.crc32(k.encode()) % 4 != zlib.crc32(k.encode()) % 5
        ) / len(keys)
        assert moved > 0.45, moved

    def test_adding_keys_never_moves_existing_ones(self):
        ring = HashRing(3)
        first = ring.assignment(f"k{i}" for i in range(100))
        # "Add" 900 more keys (pure function: nothing to invalidate).
        ring.assignment(f"k{i}" for i in range(1000))
        assert ring.assignment(f"k{i}" for i in range(100)) == first


class TestBalance:
    def test_vnodes_spread_the_keyspace(self):
        ring = HashRing(4)
        rng = random.Random(1)
        keys = [f"key-{rng.randrange(10**9)}" for _ in range(4000)]
        counts = {sid: 0 for sid in range(1, 5)}
        for key in keys:
            counts[ring.shard_of(key)] += 1
        for sid, n in counts.items():
            share = n / len(keys)
            assert 0.12 <= share <= 0.40, (sid, share)
