"""ShardedDatabase: fast path, cross-shard 2PC, snapshot vectors, fail-over."""

import pytest

from repro.distributed import Courier
from repro.distributed.gtn import counter_of
from repro.histories import assert_one_copy_serializable
from repro.shard import ShardedDatabase


@pytest.fixture
def db():
    return ShardedDatabase(n_shards=3)


class TestFastPath:
    def test_single_shard_commit_skips_2pc(self, db):
        t = db.begin()
        db.write(t, "s2:x", 10).result()
        db.commit(t).result()
        assert db.counters.get("shard.fast_commits") == 1
        assert db.counters.get("shard.cross_commits") == 0
        r = db.begin()
        assert db.read(r, "s2:x").result() == 10
        db.commit(r).result()

    def test_fast_commits_leave_no_xlog(self, db):
        for i in range(5):
            t = db.begin()
            db.write(t, f"s1:k{i}", i).result()
            db.commit(t).result()
        assert db.xlog_sizes() == {1: 0, 2: 0, 3: 0}

    def test_shards_advance_independently(self, db):
        # Traffic on shard 1 alone moves only shard 1's watermark.
        before = db.watermarks()
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.commit(t).result()
        after = db.watermarks()
        assert after[1] > before[1]
        assert after[2] == before[2] and after[3] == before[3]


class TestCrossShard2PC:
    def test_cross_commit_installs_one_number_everywhere(self, db):
        t = db.begin()
        db.write(t, "s1:a", 1).result()
        db.write(t, "s3:b", 2).result()
        db.commit(t).result()
        assert db.counters.get("shard.cross_commits") == 1
        for key, sid in (("s1:a", 1), ("s3:b", 2)):
            version = db.sites[sid if key == "s1:a" else 3].store.read_latest_committed(key)
            assert version.tn == t.tn

    def test_cross_commit_appends_to_both_xlogs(self, db):
        t = db.begin()
        db.write(t, "s1:a", 1).result()
        db.write(t, "s2:b", 2).result()
        db.commit(t).result()
        entry = (t.tn, (1, 2))
        assert entry in db.sites[1].xlog
        assert entry in db.sites[2].xlog
        assert db.sites[3].xlog == []

    def test_xlog_prunes_once_every_watermark_passes(self, db):
        t = db.begin()
        db.write(t, "s1:a", 1).result()
        db.write(t, "s2:b", 2).result()
        db.commit(t).result()
        # Shard 3's watermark is still below t.tn -> the global floor
        # keeps the entry alive through a read-only begin...
        db.commit(db.begin(read_only=True)).result()
        assert db.xlog_sizes()[1] == 1
        # ...until shard 3 also passes it.
        t3 = db.begin()
        db.write(t3, "s3:c", 3).result()
        db.commit(t3).result()
        db.commit(db.begin(read_only=True)).result()
        assert db.xlog_sizes() == {1: 0, 2: 0, 3: 0}


class TestSnapshotVectors:
    def test_vector_begin_pins_one_component_per_shard(self, db):
        ro = db.begin(read_only=True)
        vector = ro.meta["shard.vector"]
        assert sorted(vector) == [1, 2, 3]
        assert ro.sn == max(vector.values())
        assert db.snapshot_audit(ro) == []
        db.commit(ro).result()

    def test_quiescent_vector_reads_see_all_commits(self, db):
        for sid in (1, 2, 3):
            t = db.begin()
            db.write(t, f"s{sid}:x", sid * 10).result()
            db.commit(t).result()
        ro = db.begin(read_only=True)
        for sid in (1, 2, 3):
            assert db.read(ro, f"s{sid}:x").result() == sid * 10
        db.commit(ro).result()
        assert db.counters.get("shard.ro_blocked") == 0

    def test_mid_flight_cross_commit_is_excluded_atomically(self):
        # Stage the tear precisely: deliver the cross-shard COMMIT at
        # shard 1 but leave shard 2's queued.  A vector begun in that
        # window must exclude the commit *everywhere* (sweep), not raise.
        courier = Courier(manual=True)
        db = ShardedDatabase(n_shards=2, courier=courier, checked=True)
        seed = db.begin()
        fa = db.write(seed, "s1:a", 0)
        fb = db.write(seed, "s2:b", 0)
        courier.pump()
        fa.result(), fb.result()
        done = db.commit(seed)
        courier.pump()
        done.result()

        cross = db.begin()
        fa = db.write(cross, "s1:a", 1)
        fb = db.write(cross, "s2:b", 1)
        courier.pump()
        fa.result(), fb.result()
        done = db.commit(cross)
        courier.pump(2)  # both prepares -> decision reached, commits queued
        courier.pump(1)  # COMMIT applied at shard 1 only: the torn window
        assert db.sites[1].vc.vtnc >= cross.tn > db.sites[2].vc.vtnc

        ro = db.begin(read_only=True)  # checked=True: would raise on a tear
        vector = ro.meta["shard.vector"]
        assert vector[1] < cross.tn, "the sweep excluded the torn commit"
        assert db.snapshot_audit(ro) == []
        assert db.counters.get("shard.vector_lowered") == 1
        read = db.read(ro, "s1:a")
        courier.pump(channel="read.s1")
        assert read.result() == 0, "pre-commit value: the cut is atomic"
        db.commit(ro).result()

        courier.pump()  # drain shard 2's commit
        done.result()
        fresh = db.begin(read_only=True)
        for key, expect in (("s1:a", 1), ("s2:b", 1)):
            read = db.read(fresh, key)
            courier.pump(channel=f"read.s{key[1]}")
            assert read.result() == expect
        db.commit(fresh).result()
        assert_one_copy_serializable(db.history)

    def test_staleness_counts_sweep_cost_in_commit_ticks(self, db):
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.commit(t).result()
        ro = db.begin(read_only=True)
        assert ro.meta["shard.staleness"] == 0, "quiescent vector is fresh"
        db.commit(ro).result()


class TestFailOver:
    def test_committed_data_survives_fail_over(self, db):
        t = db.begin()
        db.write(t, "s2:x", 42).result()
        db.commit(t).result()
        lost = db.fail_over_shard(2)
        assert lost == 0, "everything was forced at commit"
        assert db.sites[2].epoch == 1
        # The fast-forwarded (idle) frontier is not durable, but every
        # committed number must be at or below the recovered watermark.
        assert db.watermarks()[2] >= t.tn
        r = db.begin()
        assert db.read(r, "s2:x").result() == 42
        db.commit(r).result()

    def test_fail_over_rebuilds_the_xlog_from_the_wal(self, db):
        t = db.begin()
        db.write(t, "s1:a", 1).result()
        db.write(t, "s2:b", 2).result()
        db.commit(t).result()
        entry = (t.tn, (1, 2))
        db.fail_over_shard(1)
        assert entry in db.sites[1].xlog, "the durable twin was replayed"
        ro = db.begin(read_only=True)
        assert db.snapshot_audit(ro) == []
        db.commit(ro).result()

    def test_other_shards_keep_committing_after_a_fail_over(self, db):
        db.fail_over_shard(3)
        for sid in (1, 2):
            t = db.begin()
            db.write(t, f"s{sid}:x", sid).result()
            db.commit(t).result()
        assert db.counters.get("shard.fast_commits") == 2
        assert_one_copy_serializable(db.history)


class TestReplicaChains:
    def test_markers_carry_the_watermark_to_replicas(self):
        db = ShardedDatabase(n_shards=2, replicas_per_shard=1)
        t = db.begin()
        db.write(t, "s1:x", 7).result()
        db.commit(t).result()
        node = db.sites[1]
        for replica in node.replicas.values():
            assert replica.vtnc == node.vc.vtnc
        # Shard 2 saw no traffic; its replica sits at the initial mark.
        node2 = db.sites[2]
        for replica in node2.replicas.values():
            assert replica.vtnc == node2.vc.vtnc

    def test_fail_over_bumps_the_epoch_on_the_chain(self):
        db = ShardedDatabase(n_shards=2, replicas_per_shard=2)
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.commit(t).result()
        db.fail_over_shard(1)
        node = db.sites[1]
        assert node.shipper is not None and node.shipper.epoch == 1
        for replica in node.replicas.values():
            assert replica.epoch == 1
            # Replica watermarks are monotone; the recovered primary may
            # sit below the fast-forwarded frontier the markers shipped,
            # but never above it — and both cover every committed number.
            assert replica.vtnc >= node.vc.vtnc
            assert replica.vtnc >= t.tn


class TestDegenerateSingleShard:
    def test_one_shard_behaves_like_the_centralized_database(self):
        # The same scripted workload on a 1-shard cluster and on the
        # centralized scheduler: identical values, identical commit
        # counters (GTNs normalized via counter_of).
        from repro.protocols.registry import make_scheduler

        sharded = ShardedDatabase(n_shards=1)
        central = make_scheduler("vc-2pl")
        sharded_tns, central_tns = [], []
        for db, tns in ((sharded, sharded_tns), (central, central_tns)):
            for i in range(4):
                t = db.begin()
                db.write(t, "k", i).result()
                db.write(t, f"other{i}", i * i).result()
                db.commit(t).result()
                tns.append(t.tn)
            ro = db.begin(read_only=True)
            assert db.read(ro, "k").result() == 3
            db.commit(ro).result()
        assert [counter_of(tn) for tn in sharded_tns] == central_tns
        assert sharded.counters.get("shard.fast_commits") == 4
        assert sharded.counters.get("shard.cross_commits") == 0
        assert_one_copy_serializable(sharded.history)

    def test_one_shard_vector_is_a_scalar(self):
        db = ShardedDatabase(n_shards=1)
        t = db.begin()
        db.write(t, "x", 1).result()
        db.commit(t).result()
        ro = db.begin(read_only=True)
        assert list(ro.meta["shard.vector"]) == [1]
        assert ro.sn == db.watermarks()[1]
        assert ro.meta["shard.staleness"] == 0
        db.commit(ro).result()
