"""Shard campaign and bench smoke tests (short durations; CI runs the drill)."""

from repro.shard.bench import run_shard_scaling
from repro.shard.campaign import run_shard_campaign


class TestShardCampaign:
    def test_seeded_campaign_passes_all_certifications(self):
        report = run_shard_campaign(seed=0, duration=80.0)
        assert report.ok, report.violations
        # Every path under test actually ran.
        assert report.phase.rw_commits > 0
        assert report.phase.cross_commits > 0
        assert report.phase.ro_sessions > 0
        assert report.phase.fast_commits > 0
        # Certification 2: no session ever saw a torn vector.
        assert report.phase.audits_failed == 0
        assert report.phase.vector_inconsistent == 0
        # Certification 3: byte-identical double run.
        assert report.deterministic
        # Certification 4: exactly one fail-over; survivors kept working.
        assert report.phase.failovers == 1
        assert report.phase.survivor_commits_during > 0
        assert report.phase.failed_commits_post > 0
        failed = report.phase.outages_per_shard[report.fail_shard]
        assert failed and max(failed) <= report.max_outage
        for sid, windows in report.phase.outages_per_shard.items():
            if sid != report.fail_shard:
                assert windows == (), "fail-over isolation broken"
        # Hard zeros.
        assert report.phase.ro_blocked == 0
        assert report.phase.replica_lag == 0

    def test_witness_certifies_across_the_failover(self):
        # The online witness consumes the same stream (per-site visibility
        # floors from dvc.advance): no gate violations, no false
        # duplicates from the shards' independent GTN counters.
        report = run_shard_campaign(seed=1, duration=80.0)
        assert report.ok, report.violations
        assert report.witness is not None
        assert report.witness["duplicate_commits"] == 0
        assert report.phase.serializable

    def test_slo_profile_rides_the_run(self):
        report = run_shard_campaign(seed=0, duration=80.0)
        assert report.slo is not None
        assert report.slo["ok"], report.slo["breaches"]
        objectives = report.slo["objectives"]
        assert objectives["vector_consistency"]["violations"] == 0
        assert objectives["ro_blocked"]["violations"] == 0
        # The injected fail-over is an *expected* breach, never a failure.
        for breach in report.slo["breaches"]:
            if breach["objective"] in ("shard_failover", "shard_outage"):
                assert breach["expected"]

    def test_as_dict_round_trip(self):
        report = run_shard_campaign(
            seed=2, duration=60.0, verify_determinism=False
        )
        data = report.as_dict()
        assert data["ok"] == report.ok
        assert data["rw_commits"] == report.phase.rw_commits
        assert data["failovers"] == report.phase.failovers
        assert len(data["watermarks"]) == report.n_shards


class TestShardScalingBench:
    def test_rw_scales_with_shard_count(self):
        block = run_shard_scaling(seed=0, duration=80.0)
        assert block["ok"], block["violations"]
        assert block["speedups"]["2"] >= 1.7
        assert block["speedups"]["4"] >= 3.0
        # The zero-coordination claim, read side: no vector read stalled.
        for point in block["scaling"].values():
            assert point["ro_blocked"] == 0
        # Comparator safety: the block is not shaped like a protocol entry.
        assert "throughput" not in block
