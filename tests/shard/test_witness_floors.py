"""Per-site visibility floors: the witness over multi-primary streams.

A sharded run has N independent GTN counters, so the global commit stream
is not tn-monotone — a single-stream sealing floor would let a lagging
shard's commit land below the sealed frontier and be miscounted as a
duplicate.  The ``dvc.advance`` bridge publishes every site's
``vtnc``/``tnc`` and the witness takes *minimum-over-sites* floors, which
these tests pin down.
"""

from repro.obs import RingBufferExporter, Tracer, attach_tracer
from repro.obs.pipeline import ObsPipeline
from repro.obs.witness import WitnessEngine
from repro.shard import ShardedDatabase
from repro.sim.engine import Simulator


class TestDvcAdvanceBridge:
    def test_every_shard_announces_itself_at_attach(self):
        db = ShardedDatabase(n_shards=3)
        ring = RingBufferExporter()
        handle = attach_tracer(db, Tracer(exporters=[ring]))
        sites = {
            e.fields["site"] for e in ring.events() if e.name == "dvc.advance"
        }
        assert sites == {1, 2, 3}
        handle.detach()

    def test_advances_carry_site_vtnc_and_tnc(self):
        db = ShardedDatabase(n_shards=2)
        ring = RingBufferExporter()
        handle = attach_tracer(db, Tracer(exporters=[ring]))
        t = db.begin()
        db.write(t, "s2:x", 1).result()
        db.commit(t).result()
        advances = [
            e for e in ring.events()
            if e.name == "dvc.advance" and e.fields["site"] == 2
        ]
        assert advances[-1].fields["vtnc"] >= t.tn
        assert advances[-1].fields["tnc"] >= t.tn
        handle.detach()

    def test_detach_unsubscribes_the_site_observers(self):
        db = ShardedDatabase(n_shards=2)
        ring = RingBufferExporter()
        handle = attach_tracer(db, Tracer(exporters=[ring]))
        handle.detach()
        before = len(ring.events())
        t = db.begin()
        db.write(t, "s1:x", 1).result()
        db.commit(t).result()
        assert len(ring.events()) == before, "no events after detach"


class TestWitnessOverShardedStreams:
    def _run_mixed_workload(self, db):
        # Skew the counters: shard 1 commits many times before shard 2's
        # first commit, so shard 2's numbers land far below shard 1's —
        # the stream a single monotone floor would misjudge.
        for i in range(6):
            t = db.begin()
            db.write(t, "s1:hot", i).result()
            db.commit(t).result()
        t = db.begin()
        db.write(t, "s2:cold", 0).result()
        db.commit(t).result()
        cross = db.begin()
        db.write(cross, "s1:hot", 99).result()
        db.write(cross, "s2:cold", 99).result()
        db.commit(cross).result()
        ro = db.begin(read_only=True)
        db.read(ro, "s1:hot").result()
        db.commit(ro).result()

    def test_no_false_duplicates_from_independent_counters(self):
        sim = Simulator()
        witness = WitnessEngine(seal=True)
        db = ShardedDatabase(n_shards=2)
        pipeline = ObsPipeline(sim=sim, witness=witness)
        pipeline.attach(db)
        self._run_mixed_workload(db)
        pipeline.close()
        report = witness.report()
        assert report["duplicate_commits"] == 0
        assert witness.gate_violations() == []

    def test_floors_follow_a_failover_reattach(self):
        sim = Simulator()
        witness = WitnessEngine(seal=True)
        db = ShardedDatabase(n_shards=2, replicas_per_shard=1)
        pipeline = ObsPipeline(sim=sim, witness=witness)
        pipeline.attach(db)
        self._run_mixed_workload(db)
        db.fail_over_shard(2)
        # Recovery replaced shard 2's VC object; the campaign re-attaches
        # so the bridge follows the new incarnation.
        pipeline.detach()
        pipeline.attach(db)
        t = db.begin()
        db.write(t, "s2:cold", 7).result()
        db.commit(t).result()
        pipeline.close()
        report = witness.report()
        assert report["duplicate_commits"] == 0
        assert witness.gate_violations() == []
