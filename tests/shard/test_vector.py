"""Snapshot-vector sweep: the posterior rule's fixpoint, unit by unit."""

from repro.shard.vector import sweep_consistent_vector, torn_entries


class TestConsistentVectorsPassThrough:
    def test_no_cross_shard_traffic_is_already_consistent(self):
        raw = {1: 10, 2: 7, 3: 3}
        vector, lowered = sweep_consistent_vector(raw, {1: [], 2: [], 3: []})
        assert vector == raw
        assert lowered == 0

    def test_fully_visible_entry_does_not_lower(self):
        raw = {1: 10, 2: 10}
        xlogs = {1: [(8, (1, 2))], 2: [(8, (1, 2))]}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == raw and lowered == 0

    def test_fully_invisible_entry_does_not_lower(self):
        raw = {1: 5, 2: 5}
        xlogs = {1: [(8, (1, 2))], 2: [(8, (1, 2))]}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == raw and lowered == 0


class TestTearLowering:
    def test_torn_entry_lowers_the_including_component(self):
        # T committed at tn=8 on shards 1 and 2; shard 2's watermark has
        # not reached it yet -> exclude T everywhere: v1 drops to 7.
        raw = {1: 10, 2: 5}
        xlogs = {1: [(8, (1, 2))], 2: []}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == {1: 7, 2: 5}
        assert lowered == 1
        assert torn_entries(vector, xlogs) == []

    def test_duplicate_entries_across_xlogs_count_once(self):
        # The same commit appears in every participant's xlog; the sweep
        # must dedupe or one tear would be lowered twice.
        raw = {1: 10, 2: 5}
        xlogs = {1: [(8, (1, 2))], 2: [(8, (1, 2))]}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == {1: 7, 2: 5}
        assert lowered == 1

    def test_cascading_fixpoint(self):
        # Excluding the tn=10 commit drops v1 to 9, which newly tears the
        # tn=8 commit on (1, 3) -> v1 must keep falling to 7.
        raw = {1: 12, 2: 5, 3: 5}
        xlogs = {1: [(10, (1, 2)), (8, (1, 3))], 2: [], 3: []}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == {1: 7, 2: 5, 3: 5}
        assert torn_entries(vector, xlogs) == []

    def test_sweep_never_raises_a_component(self):
        raw = {1: 20, 2: 3, 3: 15}
        xlogs = {
            1: [(18, (1, 3)), (9, (1, 2))],
            2: [(9, (1, 2))],
            3: [(18, (1, 3)), (12, (2, 3))],
        }
        vector, _ = sweep_consistent_vector(raw, xlogs)
        assert all(vector[sid] <= raw[sid] for sid in raw)
        assert torn_entries(vector, xlogs) == []

    def test_participants_outside_the_vector_are_ignored(self):
        # A shard can be absent (e.g. a partial vector in a unit test);
        # entries touching it only constrain the components present.
        raw = {1: 10}
        xlogs = {1: [(8, (1, 2))]}
        vector, lowered = sweep_consistent_vector(raw, xlogs)
        assert vector == {1: 10} and lowered == 0


class TestTornAudit:
    def test_reports_each_torn_entry(self):
        vector = {1: 10, 2: 5}
        xlogs = {1: [(8, (1, 2)), (3, (1, 2))], 2: []}
        assert torn_entries(vector, xlogs) == [(8, (1, 2))]

    def test_consistent_vector_audits_clean(self):
        vector = {1: 7, 2: 7}
        xlogs = {1: [(5, (1, 2))], 2: [(5, (1, 2))]}
        assert torn_entries(vector, xlogs) == []
