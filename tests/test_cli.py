"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Commands" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vc-2pl" in out
        assert "mvto-reed" in out

    def test_demo_default(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "history 1SR: True" in out
        assert "read-only CC ops: 0" in out

    @pytest.mark.parametrize("protocol", ["vc-to", "vc-occ", "mvto-reed"])
    def test_demo_other_protocols(self, protocol, capsys):
        assert main(["demo", protocol]) == 0
        assert "history 1SR: True" in capsys.readouterr().out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck", "vc-to"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_report_single_experiment(self, capsys):
        assert main(["report", "EXP-J"]) == 0
        out = capsys.readouterr().out
        assert "EXP-J" in out
        assert "dvc-2pl" in out

    def test_report_unknown_id(self, capsys):
        assert main(["report", "EXP-Z"]) == 2

    def test_drill(self, capsys):
        args = ["drill", "--seeds", "1", "--duration", "100", "--protocol", "dvc"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_drill_with_slo_watchdogs(self, capsys):
        args = [
            "drill", "--seeds", "1", "--duration", "100",
            "--protocol", "dvc", "--slo",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "slo=ok" in out
        assert "0 failed" in out

    def test_drill_memory_campaign(self, capsys):
        args = [
            "drill", "--campaign", "memory",
            "--seeds", "1", "--duration", "200",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "memory campaign" in out
        assert "slo=ok" in out
        assert "0 failed" in out

    def test_watch_replays_a_drill_trace(self, tmp_path, capsys):
        trace = tmp_path / "drill.jsonl"
        args = [
            "drill", "--seeds", "1", "--duration", "100",
            "--protocol", "dvc", "--trace", str(trace),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(["watch", str(trace), "--profile", "faults"]) == 0
        assert "slo verdict: ok" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        out = capsys.readouterr().out
        assert "drill" in out
        assert "watch" in out
