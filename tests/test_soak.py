"""Soak tests: long closed-loop runs with everything turned on.

One order of magnitude beyond the regular test durations, with garbage
collection and failure injection active simultaneously — the configuration
most likely to surface interaction bugs between the subsystems.
"""

import pytest

from repro.bench.runner import SimConfig, run_simulation
from repro.protocols.registry import VC_PROTOCOLS, make_scheduler
from repro.workload.mixes import balanced

SOAK = SimConfig(
    duration=2_500.0,
    n_clients=10,
    gc_period=40.0,
    user_abort_probability=0.03,
)


@pytest.mark.parametrize("name", VC_PROTOCOLS)
def test_soak_vc_protocols(name):
    scheduler = make_scheduler(name)
    metrics = run_simulation(scheduler, balanced(seed=99, ro_fraction=0.4), SOAK)
    assert metrics.commits > 1_500, "meaningful volume"
    assert metrics.serializable is True
    assert metrics.gc_discarded > 100, "collector actually worked"
    assert metrics.aborts_ro == 0
    assert metrics.counter("cc.ro") == 0
    assert scheduler.vc.lag == 0, "everything drained"


def test_soak_adaptive_with_everything_on():
    scheduler = make_scheduler("vc-adaptive")
    metrics = run_simulation(scheduler, balanced(seed=7, zipf_theta=1.1), SOAK)
    assert metrics.serializable is True
    assert metrics.commits > 1_500


def test_soak_recoverable_with_periodic_checkpoints():
    """Run, checkpoint, crash, recover, run again — three generations."""
    scheduler = make_scheduler("vc-2pl-wal")
    total_commits = 0
    config = SimConfig(duration=600.0, n_clients=8, gc_period=50.0)
    for generation in range(3):
        metrics = run_simulation(scheduler, balanced(seed=generation), config)
        assert metrics.serializable is True
        total_commits += metrics.commits
        scheduler.checkpoint()
        scheduler.crash()
        scheduler = scheduler.recovered()
    assert total_commits > 1_000
    assert len(scheduler.log) == 1, "log bounded by checkpoints"
