"""Tests for the VersionControl module (paper Figure 1).

Includes the FIG1 scripted trace, the two counter properties, and
hypothesis-driven randomized completion orders.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.errors import InvariantViolation, ProtocolError


def fresh_txn():
    return Transaction()


class TestCounters:
    def test_initial_state(self):
        vc = VersionControl()
        assert vc.tnc == 1
        assert vc.vtnc == 0
        assert vc.lag == 0

    def test_custom_first_tn(self):
        vc = VersionControl(first_tn=100)
        assert vc.tnc == 100
        assert vc.vtnc == 99

    def test_first_tn_must_be_positive(self):
        with pytest.raises(ValueError):
            VersionControl(first_tn=0)

    def test_vtnc_below_tnc_always(self):
        vc = VersionControl()
        txns = [fresh_txn() for _ in range(5)]
        for t in txns:
            vc.vc_register(t)
            assert vc.vtnc < vc.tnc
        for t in txns:
            vc.vc_complete(t)
            assert vc.vtnc < vc.tnc


class TestRegister:
    def test_assigns_sequential_numbers(self):
        vc = VersionControl()
        t1, t2, t3 = fresh_txn(), fresh_txn(), fresh_txn()
        assert vc.vc_register(t1) == 1
        assert vc.vc_register(t2) == 2
        assert vc.vc_register(t3) == 3
        assert vc.tnc == 4

    def test_register_twice_rejected(self):
        vc = VersionControl()
        t = fresh_txn()
        vc.vc_register(t)
        with pytest.raises(ProtocolError, match="twice"):
            vc.vc_register(t)

    def test_unsupported_status_rejected(self):
        vc = VersionControl()
        with pytest.raises(ProtocolError, match="status"):
            vc.vc_register(fresh_txn(), status="complete")

    def test_registration_does_not_advance_visibility(self):
        vc = VersionControl()
        vc.vc_register(fresh_txn())
        assert vc.vtnc == 0
        assert vc.lag == 1


class TestComplete:
    def test_in_order_completion_advances_immediately(self):
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t1)
        assert vc.vtnc == 1
        vc.vc_complete(t2)
        assert vc.vtnc == 2

    def test_out_of_order_completion_delays_visibility(self):
        """The paper's motivating case: T2 finishes while T1 is active."""
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)  # tn=1
        vc.vc_register(t2)  # tn=2
        vc.vc_complete(t2)
        assert vc.vtnc == 0, "T2's updates must stay invisible behind active T1"
        vc.vc_complete(t1)
        assert vc.vtnc == 2, "completing T1 releases both"

    def test_long_delayed_chain(self):
        vc = VersionControl()
        txns = [fresh_txn() for _ in range(10)]
        for t in txns:
            vc.vc_register(t)
        for t in txns[1:]:
            vc.vc_complete(t)
        assert vc.vtnc == 0
        vc.vc_complete(txns[0])
        assert vc.vtnc == 10

    def test_complete_unregistered_rejected(self):
        vc = VersionControl()
        with pytest.raises(ProtocolError, match="not registered"):
            vc.vc_complete(fresh_txn())

    def test_complete_twice_rejected(self):
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t2)  # still queued behind t1
        with pytest.raises(ProtocolError, match="twice"):
            vc.vc_complete(t2)


class TestDiscard:
    def test_discard_unblocks_younger_completions(self):
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t2)
        assert vc.vtnc == 0
        vc.vc_discard(t1)  # t1 aborts
        assert vc.vtnc == 2, "visibility is delayed only for unaborted transactions"

    def test_discard_unregistered_rejected(self):
        vc = VersionControl()
        with pytest.raises(ProtocolError, match="discard"):
            vc.vc_discard(fresh_txn())

    def test_discard_tail_entry(self):
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_discard(t2)
        assert vc.vtnc == 0
        vc.vc_complete(t1)
        assert vc.vtnc == 2, "vtnc may jump across the discarded number"

    def test_discard_sole_entry_makes_everything_visible(self):
        vc = VersionControl()
        t = fresh_txn()
        vc.vc_register(t)
        vc.vc_discard(t)
        assert vc.vtnc == vc.tnc - 1
        assert vc.lag == 0


class TestVCStart:
    def test_start_returns_vtnc(self):
        vc = VersionControl()
        assert vc.vc_start() == 0
        t = fresh_txn()
        vc.vc_register(t)
        vc.vc_complete(t)
        assert vc.vc_start() == 1

    def test_start_never_exposes_active_transactions(self):
        vc = VersionControl()
        t1 = fresh_txn()
        vc.vc_register(t1)
        sn = vc.vc_start()
        assert sn < t1.tn


class TestQueueIntrospection:
    def test_queue_snapshot_order(self):
        vc = VersionControl()
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t2)
        snap = vc.queue_snapshot()
        assert snap == [(t1.txn_id, 1, False), (t2.txn_id, 2, True)]
        assert len(vc) == 2

    def test_observer_events(self):
        events = []
        vc = VersionControl()
        vc.subscribe(lambda ev, n: events.append((ev, n)))
        t1, t2 = fresh_txn(), fresh_txn()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t2)
        vc.vc_complete(t1)
        assert events == [
            ("register", 1),
            ("register", 2),
            ("advance", 1),
            ("advance", 2),
        ]

    def test_unsubscribe_stops_delivery(self):
        events = []
        observer = lambda ev, n: events.append((ev, n))  # noqa: E731
        vc = VersionControl()
        vc.subscribe(observer)
        t1 = fresh_txn()
        vc.vc_register(t1)
        vc.unsubscribe(observer)
        t2 = fresh_txn()
        vc.vc_register(t2)
        vc.vc_complete(t1)
        vc.vc_complete(t2)
        assert events == [("register", 1)]

    def test_unsubscribe_removes_by_identity(self):
        hits = []
        first = lambda ev, n: hits.append("first")  # noqa: E731
        second = lambda ev, n: hits.append("second")  # noqa: E731
        vc = VersionControl()
        vc.subscribe(first)
        vc.subscribe(second)
        vc.unsubscribe(first)
        vc.vc_register(fresh_txn())
        assert hits == ["second"]

    def test_unsubscribe_unknown_observer_rejected(self):
        vc = VersionControl()
        with pytest.raises(ValueError):
            vc.unsubscribe(lambda ev, n: None)

    def test_unsubscribe_twice_rejected(self):
        observer = lambda ev, n: None  # noqa: E731
        vc = VersionControl()
        vc.subscribe(observer)
        vc.unsubscribe(observer)
        with pytest.raises(ValueError):
            vc.unsubscribe(observer)


class TestBookkeepingPruning:
    """Regression: the completion-record sets must stay bounded — and the
    prune must not degrade into an O(set) scan on every entry call."""

    def test_completed_set_bounded_over_many_sequential_txns(self):
        vc = VersionControl()
        for _ in range(3000):
            t = fresh_txn()
            vc.vc_register(t)
            vc.vc_complete(t)
        assert len(vc._completed_tns) <= 1025
        assert vc.bookkeeping_prunes >= 2

    def test_discard_heavy_workload_stays_bounded(self):
        vc = VersionControl()
        for i in range(3000):
            t = fresh_txn()
            vc.vc_register(t)
            if i % 2:
                vc.vc_discard(t)
            else:
                vc.vc_complete(t)
        assert len(vc._completed_tns) <= 1025
        assert len(vc._discarded_tns) <= 1025

    def test_no_prune_while_visibility_is_stuck(self):
        # A long-lived head pins vtnc; every number discarded behind it is
        # retained by design (the invariant checker consults numbers above
        # vtnc).  The prune must therefore not run at all — the old behavior
        # rescanned the >1024-entry set on every single discard, turning each
        # call into an O(set) no-op scan.
        vc = VersionControl()
        blocker = fresh_txn()
        vc.vc_register(blocker)
        for _ in range(2000):
            t = fresh_txn()
            vc.vc_register(t)
            vc.vc_discard(t)
        assert vc.vtnc == 0  # stuck behind the blocker
        assert len(vc._discarded_tns) == 2000  # retained: all above vtnc
        assert vc.bookkeeping_prunes == 0  # ...but never rescanned

    def test_sets_drain_once_blocker_finishes(self):
        vc = VersionControl()
        blocker = fresh_txn()
        vc.vc_register(blocker)
        for _ in range(2000):
            t = fresh_txn()
            vc.vc_register(t)
            vc.vc_discard(t)
        vc.vc_complete(blocker)
        assert vc.vtnc == vc.tnc - 1  # everything visible
        assert len(vc._discarded_tns) == 0  # consumed by the drain
        assert len(vc._completed_tns) <= 1025

    def test_prune_runs_at_most_once_per_vtnc_advance(self):
        vc = VersionControl()
        # Push the completed set over the threshold with in-order commits.
        for _ in range(1100):
            t = fresh_txn()
            vc.vc_register(t)
            vc.vc_complete(t)
        prunes = vc.bookkeeping_prunes
        assert prunes >= 1
        # Stuck head: further completes behind it cannot advance vtnc, so no
        # additional prune may happen regardless of call volume.
        blocker = fresh_txn()
        vc.vc_register(blocker)
        pending = [fresh_txn() for _ in range(50)]
        for t in pending:
            vc.vc_register(t)
        for t in pending:
            vc.vc_complete(t)
        assert vc.bookkeeping_prunes == prunes


class TestInvariantChecking:
    def test_checked_mode_catches_forced_corruption(self):
        vc = VersionControl()
        t = fresh_txn()
        vc.vc_register(t)
        vc._vtnc = 5  # corrupt: vtnc >= tnc
        with pytest.raises(InvariantViolation):
            vc._check()

    def test_unchecked_mode_skips_validation(self):
        vc = VersionControl(checked=False)
        vc._vtnc = 99
        vc._check()  # silently ignored


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    data=st.data(),
)
def test_property_visibility_tracks_completed_prefix(n, data):
    """Under any interleaving of register/complete/discard:

    * vtnc < tnc at every step;
    * vtnc never exceeds the largest prefix of assigned numbers whose
      transactions all finished (completed or discarded);
    * once the queue drains, vtnc == tnc - 1.
    """
    vc = VersionControl()
    txns = [fresh_txn() for _ in range(n)]
    for t in txns:
        vc.vc_register(t)
    finished: set[int] = set()
    order = data.draw(st.permutations(range(n)))
    discard_mask = data.draw(
        st.lists(st.booleans(), min_size=n, max_size=n)
    )
    for idx in order:
        t = txns[idx]
        if discard_mask[idx]:
            vc.vc_discard(t)
        else:
            vc.vc_complete(t)
        finished.add(t.tn)
        assert vc.vtnc < vc.tnc
        # Longest finished prefix of 1..n:
        prefix = 0
        while prefix + 1 in finished:
            prefix += 1
        assert vc.vtnc == prefix
    assert vc.vtnc == vc.tnc - 1 == n


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_property_interleaved_register_and_complete(data):
    """Registrations interleaved with completions keep both properties."""
    vc = VersionControl()
    live: list[Transaction] = []
    finished: set[int] = set()
    assigned = 0
    for _ in range(40):
        can_finish = bool(live)
        do_register = data.draw(st.booleans()) or not can_finish
        if do_register:
            t = fresh_txn()
            vc.vc_register(t)
            live.append(t)
            assigned += 1
            assert t.tn == assigned
        else:
            pick = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            t = live.pop(pick)
            if data.draw(st.booleans()):
                vc.vc_complete(t)
            else:
                vc.vc_discard(t)
            finished.add(t.tn)
        # Transaction Visibility Property, restated: every assigned tn at or
        # below vtnc is finished.
        for tn in range(1, vc.vtnc + 1):
            assert tn in finished
        # Maximality: tn = vtnc+1 is unassigned or unfinished.
        nxt = vc.vtnc + 1
        if nxt < vc.tnc:
            assert nxt not in finished
        assert vc.vtnc < vc.tnc
