"""Tests for the Section 6 delayed-visibility remedies."""

import pytest

from repro.core.snapshot import (
    SnapshotManager,
    VisibilityWaiter,
    read_only_snapshot_is_current,
)
from repro.core.version_control import VersionControl
from repro.core.transaction import Transaction
from repro.protocols import VC2PLScheduler, VCTOScheduler


class TestVisibilityWaiter:
    def test_immediate_when_already_visible(self):
        vc = VersionControl()
        waiter = VisibilityWaiter(vc)
        f = waiter.wait_for(0)
        assert f.done
        assert f.result() == 0

    def test_waits_until_threshold(self):
        vc = VersionControl()
        waiter = VisibilityWaiter(vc)
        f = waiter.wait_for(2)
        assert f.pending
        t1, t2 = Transaction(), Transaction()
        vc.vc_register(t1)
        vc.vc_register(t2)
        vc.vc_complete(t1)
        assert f.pending, "vtnc=1 < 2"
        vc.vc_complete(t2)
        assert f.result() == 2
        assert waiter.pending == 0

    def test_multiple_thresholds_release_in_order(self):
        vc = VersionControl()
        waiter = VisibilityWaiter(vc)
        f1, f3 = waiter.wait_for(1), waiter.wait_for(3)
        txns = [Transaction() for _ in range(3)]
        for t in txns:
            vc.vc_register(t)
        vc.vc_complete(txns[0])
        assert f1.done and f3.pending
        vc.vc_complete(txns[1])
        vc.vc_complete(txns[2])
        assert f3.done


class TestTemporalFloorRemedy:
    def test_ro_after_specific_commit_sees_it(self):
        db = VCTOScheduler()
        snap = SnapshotManager(db)
        t1 = db.begin()  # tn=1, long-running
        t2 = db.begin()  # tn=2
        db.write(t2, "x", 42).result()
        db.commit(t2).result()
        # Plain RO started now would get sn=0 and miss t2's update:
        plain = db.begin(read_only=True)
        assert plain.sn == 0
        db.commit(plain).result()
        # Remedy 1: require sn >= tn(t2).
        f = snap.begin_read_only_after(t2.tn)
        assert f.pending, "visibility has not caught up while t1 is active"
        db.commit(t1).result()
        reader = f.result()
        assert reader.sn >= t2.tn
        assert db.read(reader, "x").result() == 42
        db.commit(reader).result()

    def test_immediate_when_already_caught_up(self):
        db = VC2PLScheduler()
        snap = SnapshotManager(db)
        w = db.begin()
        db.write(w, "x", 1).result()
        db.commit(w).result()
        f = snap.begin_read_only_after(w.tn)
        assert f.done
        reader = f.result()
        assert db.read(reader, "x").result() == 1


class TestPseudoReadWriteRemedy:
    def test_current_reader_sees_latest_state(self):
        db = VCTOScheduler()
        snap = SnapshotManager(db)
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "x", 7).result()
        db.commit(t2).result()  # invisible to ROs while t1 runs
        current = snap.begin_current_reader()
        assert current.is_read_write, "pays full CC cost"
        assert db.read(current, "x").result() == 7
        db.commit(current).result()
        db.commit(t1).result()

    def test_staleness_bound(self):
        db = VCTOScheduler()
        snap = SnapshotManager(db)
        assert snap.staleness_bound() == 0
        assert read_only_snapshot_is_current(db)
        t1 = db.begin()
        t2 = db.begin()
        db.commit(t2).result()
        assert snap.staleness_bound() == 2
        assert not read_only_snapshot_is_current(db)
        db.commit(t1).result()
        assert snap.staleness_bound() == 0
