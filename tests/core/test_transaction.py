"""Unit tests for transaction descriptors."""

import pytest

from repro.core.transaction import SN_INFINITY, Transaction, TxnClass, TxnState
from repro.errors import AbortReason, ProtocolError


class TestClassification:
    def test_default_class_is_read_write(self):
        assert TxnClass.default() is TxnClass.READ_WRITE

    def test_read_only_flags(self):
        t = Transaction(TxnClass.READ_ONLY)
        assert t.is_read_only
        assert not t.is_read_write

    def test_read_write_flags(self):
        t = Transaction()
        assert t.is_read_write
        assert not t.is_read_only

    def test_ids_are_unique_and_increasing(self):
        a, b = Transaction(), Transaction()
        assert b.txn_id > a.txn_id


class TestStateMachine:
    def test_starts_active(self):
        t = Transaction()
        assert t.state is TxnState.ACTIVE
        assert t.is_active
        assert not t.is_finished

    def test_commit_transition(self):
        t = Transaction()
        t.mark_committed()
        assert t.state is TxnState.COMMITTED
        assert t.is_finished

    def test_abort_records_reason(self):
        t = Transaction()
        t.mark_aborted(AbortReason.DEADLOCK_VICTIM)
        assert t.state is TxnState.ABORTED
        assert t.abort_reason is AbortReason.DEADLOCK_VICTIM

    def test_abort_caused_by_readonly_flag(self):
        t = Transaction()
        t.mark_aborted(AbortReason.TIMESTAMP_REJECTED, caused_by_readonly=True)
        assert t.abort_caused_by_readonly

    def test_double_abort_is_idempotent(self):
        t = Transaction()
        t.mark_aborted(AbortReason.USER_REQUESTED)
        t.mark_aborted(AbortReason.DEADLOCK_VICTIM)  # no-op
        assert t.abort_reason is AbortReason.USER_REQUESTED

    def test_abort_after_commit_rejected(self):
        t = Transaction()
        t.mark_committed()
        with pytest.raises(ProtocolError, match="already committed"):
            t.mark_aborted(AbortReason.USER_REQUESTED)

    def test_commit_after_abort_rejected(self):
        t = Transaction()
        t.mark_aborted(AbortReason.USER_REQUESTED)
        with pytest.raises(ProtocolError):
            t.mark_committed()

    def test_require_active_on_finished_raises(self):
        t = Transaction()
        t.mark_committed()
        with pytest.raises(ProtocolError, match="committed"):
            t.require_active()


class TestReadWriteSets:
    def test_record_read_keeps_version(self):
        t = Transaction()
        t.record_read("x", 5)
        assert t.read_set == {"x": 5}

    def test_record_write_keeps_value(self):
        t = Transaction()
        t.record_write("y", 10)
        assert t.write_set == {"y": 10}

    def test_read_only_write_rejected(self):
        t = Transaction(TxnClass.READ_ONLY)
        with pytest.raises(ProtocolError, match="read-only"):
            t.record_write("x", 1)

    def test_sn_infinity_compares_above_any_tn(self):
        assert SN_INFINITY > 10**18
