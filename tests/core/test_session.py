"""Tests for the Database session facade."""

import pytest

from repro.core.session import Database
from repro.errors import TransactionAborted, ValidationError
from repro.protocols import VCOCCScheduler, VCTOScheduler


class TestTransactionContext:
    def test_commit_on_clean_exit(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 5
        with db.snapshot() as snap:
            assert snap["x"] == 5

    def test_abort_on_exception(self):
        db = Database("vc-2pl")
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn["x"] = 5
                raise RuntimeError("client bug")
        with db.snapshot() as snap:
            assert snap["x"] is None

    def test_explicit_abort_then_clean_exit(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 5
            txn.abort()
        with db.snapshot() as snap:
            assert snap["x"] is None

    def test_read_many(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["a"], txn["b"] = 1, 2
        with db.snapshot() as snap:
            assert snap.read_many(["a", "b"]) == {"a": 1, "b": 2}

    def test_snapshot_is_read_only(self):
        db = Database("vc-2pl")
        with pytest.raises(Exception):
            with db.snapshot() as snap:
                snap["x"] = 1

    def test_descriptor_accessible(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["x"] = 1
            assert txn.txn.tn is not None


class TestConstruction:
    def test_by_name(self):
        db = Database("vc-occ")
        assert isinstance(db.scheduler, VCOCCScheduler)

    def test_by_instance(self):
        sched = VCTOScheduler()
        db = Database(sched)
        assert db.scheduler is sched

    def test_kwargs_with_instance_rejected(self):
        with pytest.raises(TypeError):
            Database(VCTOScheduler(), checked=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            Database("vc-nonsense")


class TestRunWithRetries:
    def test_returns_body_result(self):
        db = Database("vc-2pl")
        assert db.run(lambda txn: 42) == 42

    def test_counter_increment_retries_under_occ(self):
        db = Database("vc-occ")
        with db.transaction() as txn:
            txn["c"] = 0

        # Interleave a conflicting committed write between body and commit by
        # sabotaging from inside the body on the first attempt.
        attempts = []

        def increment(txn):
            value = txn["c"]
            if not attempts:
                attempts.append(1)
                with db.transaction() as saboteur:
                    saboteur["c"] = 100
            txn["c"] = value + 1
            return value + 1

        result = db.run(increment)
        assert result == 101, "second attempt read the saboteur's value"
        with db.snapshot() as snap:
            assert snap["c"] == 101

    def test_retries_exhausted_reraises(self):
        db = Database("vc-occ")

        def always_conflicts(txn):
            value = txn["c"]
            with db.transaction() as other:
                other["c"] = (value or 0) + 1
            txn["c"] = -1
            return value

        with pytest.raises(ValidationError):
            db.run(always_conflicts, retries=3)

    def test_body_exception_propagates_without_retry(self):
        db = Database("vc-2pl")
        calls = []

        def bad(txn):
            calls.append(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            db.run(bad)
        assert len(calls) == 1

    def test_read_only_run(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["x"] = 9
        value = db.run(lambda txn: txn["x"], read_only=True)
        assert value == 9
        assert db.counters.get("cc.ro") == 0

    def test_check_serializable_passthrough(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 1
        report = db.check_serializable()
        assert report.serializable
