"""Tests for the Database session facade."""

import pytest

from repro.core.session import Database
from repro.errors import (
    AbortReason,
    DeadlineExceeded,
    Overloaded,
    TransactionAborted,
    ValidationError,
)
from repro.protocols import VCOCCScheduler, VCTOScheduler
from repro.qos import AdmissionController, RetryBudget


class TestTransactionContext:
    def test_commit_on_clean_exit(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 5
        with db.snapshot() as snap:
            assert snap["x"] == 5

    def test_abort_on_exception(self):
        db = Database("vc-2pl")
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn["x"] = 5
                raise RuntimeError("client bug")
        with db.snapshot() as snap:
            assert snap["x"] is None

    def test_explicit_abort_then_clean_exit(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 5
            txn.abort()
        with db.snapshot() as snap:
            assert snap["x"] is None

    def test_read_many(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["a"], txn["b"] = 1, 2
        with db.snapshot() as snap:
            assert snap.read_many(["a", "b"]) == {"a": 1, "b": 2}

    def test_snapshot_is_read_only(self):
        db = Database("vc-2pl")
        with pytest.raises(Exception):
            with db.snapshot() as snap:
                snap["x"] = 1

    def test_descriptor_accessible(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["x"] = 1
            assert txn.txn.tn is not None


class TestConstruction:
    def test_by_name(self):
        db = Database("vc-occ")
        assert isinstance(db.scheduler, VCOCCScheduler)

    def test_by_instance(self):
        sched = VCTOScheduler()
        db = Database(sched)
        assert db.scheduler is sched

    def test_kwargs_with_instance_rejected(self):
        with pytest.raises(TypeError):
            Database(VCTOScheduler(), checked=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            Database("vc-nonsense")


class TestRunWithRetries:
    def test_returns_body_result(self):
        db = Database("vc-2pl")
        assert db.run(lambda txn: 42) == 42

    def test_counter_increment_retries_under_occ(self):
        db = Database("vc-occ")
        with db.transaction() as txn:
            txn["c"] = 0

        # Interleave a conflicting committed write between body and commit by
        # sabotaging from inside the body on the first attempt.
        attempts = []

        def increment(txn):
            value = txn["c"]
            if not attempts:
                attempts.append(1)
                with db.transaction() as saboteur:
                    saboteur["c"] = 100
            txn["c"] = value + 1
            return value + 1

        result = db.run(increment)
        assert result == 101, "second attempt read the saboteur's value"
        with db.snapshot() as snap:
            assert snap["c"] == 101

    def test_retries_exhausted_reraises(self):
        db = Database("vc-occ")

        def always_conflicts(txn):
            value = txn["c"]
            with db.transaction() as other:
                other["c"] = (value or 0) + 1
            txn["c"] = -1
            return value

        with pytest.raises(ValidationError):
            db.run(always_conflicts, retries=3)

    def test_body_exception_propagates_without_retry(self):
        db = Database("vc-2pl")
        calls = []

        def bad(txn):
            calls.append(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            db.run(bad)
        assert len(calls) == 1

    def test_read_only_run(self):
        db = Database("vc-to")
        with db.transaction() as txn:
            txn["x"] = 9
        value = db.run(lambda txn: txn["x"], read_only=True)
        assert value == 9
        assert db.counters.get("cc.ro") == 0

    def test_check_serializable_passthrough(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 1
        report = db.check_serializable()
        assert report.serializable


class TestRetryClassification:
    """Regression: ``run`` used to retry errors no retry can fix."""

    def _failing_body(self, error_factory):
        calls = []

        def body(txn):
            calls.append(1)
            raise error_factory(txn.txn.txn_id)

        return body, calls

    def test_user_requested_abort_not_retried(self):
        db = Database("vc-2pl")
        body, calls = self._failing_body(
            lambda txn_id: TransactionAborted(txn_id, AbortReason.USER_REQUESTED)
        )
        with pytest.raises(TransactionAborted):
            db.run(body, retries=5)
        assert len(calls) == 1, "USER_REQUESTED is terminal"

    def test_deadline_exceeded_not_retried(self):
        db = Database("vc-2pl")
        body, calls = self._failing_body(
            lambda txn_id: DeadlineExceeded(txn_id, 10.0, 11.0)
        )
        with pytest.raises(DeadlineExceeded):
            db.run(body, retries=5)
        assert len(calls) == 1, "the time budget is already spent"

    def test_retryable_abort_retries_with_backoff(self):
        db = Database("vc-2pl")
        calls = []

        def flaky(txn):
            calls.append(1)
            if len(calls) == 1:
                raise TransactionAborted(
                    txn.txn.txn_id, AbortReason.DEADLOCK_VICTIM
                )
            return "done"

        assert db.run(flaky, retries=5) == "done"
        assert len(calls) == 2
        assert len(db.last_retry_schedule) == 1
        assert db.last_retry_schedule[0] > 0

    def test_retry_budget_exhaustion_turns_terminal(self):
        db = Database("vc-2pl", retry_budget=RetryBudget(capacity=2.0))
        body, calls = self._failing_body(
            lambda txn_id: TransactionAborted(txn_id, AbortReason.DEADLOCK_VICTIM)
        )
        with pytest.raises(TransactionAborted):
            db.run(body, retries=50)
        assert len(calls) == 3, "initial attempt + the two budgeted retries"
        assert db.retry_budget.exhausted == 1

    def test_retry_schedule_deterministic_under_seed(self):
        def flaky_maker():
            calls = []

            def flaky(txn):
                calls.append(1)
                if len(calls) < 4:
                    raise TransactionAborted(
                        txn.txn.txn_id, AbortReason.DEADLOCK_VICTIM
                    )
                return True

            return flaky

        schedules = []
        for _ in range(2):
            db = Database("vc-2pl", retry_seed=99)
            db.run(flaky_maker(), retries=5)
            schedules.append(db.last_retry_schedule)
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == 3
        other = Database("vc-2pl", retry_seed=100)
        other.run(flaky_maker(), retries=5)
        assert other.last_retry_schedule != schedules[0]


class TestAdmissionAtTheSession:
    def test_shed_begin_is_retried_then_raises(self):
        gate = AdmissionController(capacity=1)
        db = Database("vc-2pl", admission=gate)
        hog = db.scheduler.begin()  # holds the only token
        slept = []
        db._sleep = slept.append
        with pytest.raises(Overloaded):
            db.run(lambda txn: txn, retries=2)
        assert gate.shed == 3, "initial attempt + 2 retries, all shed"
        assert len(slept) == 2, "backoff between shed attempts"
        db.scheduler.abort(hog)
        assert db.run(lambda txn: 7) == 7, "token freed: admitted again"

    def test_snapshots_bypass_admission(self):
        gate = AdmissionController(capacity=1)
        db = Database("vc-2pl", admission=gate)
        db.scheduler.begin()  # exhaust capacity
        with db.snapshot() as snap:
            assert snap["x"] is None
        assert gate.shed == 0

    def test_snapshot_reports_staleness(self):
        db = Database("vc-2pl")
        with db.transaction() as txn:
            txn["x"] = 1
        with db.snapshot() as snap:
            assert snap.staleness == 0, "idle database: perfectly fresh"
        with db.transaction() as txn:
            assert txn.staleness is None, "read-write: no snapshot bound"
