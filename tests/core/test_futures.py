"""Unit tests for the cooperative OpFuture primitive."""

import pytest

from repro.core.futures import OpFuture, OpStatus, failed, resolved
from repro.errors import FutureNotReady


class TestLifecycle:
    def test_starts_pending(self):
        f = OpFuture("op")
        assert f.pending
        assert not f.done
        assert f.status is OpStatus.PENDING

    def test_resolve_sets_value(self):
        f = OpFuture()
        f.resolve(42)
        assert f.done
        assert not f.failed
        assert f.result() == 42

    def test_fail_sets_error(self):
        f = OpFuture()
        err = RuntimeError("boom")
        f.fail(err)
        assert f.failed
        assert f.error is err

    def test_result_reraises_failure(self):
        f = OpFuture()
        f.fail(ValueError("nope"))
        with pytest.raises(ValueError, match="nope"):
            f.result()

    def test_result_on_pending_raises_future_not_ready(self):
        f = OpFuture("blocked read")
        with pytest.raises(FutureNotReady, match="blocked read"):
            f.result()

    def test_double_resolve_rejected(self):
        f = OpFuture()
        f.resolve(1)
        with pytest.raises(RuntimeError, match="settled twice"):
            f.resolve(2)

    def test_resolve_after_fail_rejected(self):
        f = OpFuture()
        f.fail(RuntimeError())
        with pytest.raises(RuntimeError, match="settled twice"):
            f.resolve(1)

    def test_resolve_with_none_default(self):
        f = OpFuture()
        f.resolve()
        assert f.result() is None


class TestCallbacks:
    def test_callback_fires_on_resolution(self):
        f = OpFuture()
        seen = []
        f.add_callback(lambda fut: seen.append(fut.result()))
        assert seen == []
        f.resolve("v")
        assert seen == ["v"]

    def test_callback_added_after_resolution_fires_immediately(self):
        f = resolved("early")
        seen = []
        f.add_callback(lambda fut: seen.append(fut.result()))
        assert seen == ["early"]

    def test_multiple_callbacks_fire_in_order(self):
        f = OpFuture()
        seen = []
        f.add_callback(lambda _: seen.append(1))
        f.add_callback(lambda _: seen.append(2))
        f.resolve(None)
        assert seen == [1, 2]

    def test_callback_fires_on_failure_too(self):
        f = OpFuture()
        seen = []
        f.add_callback(lambda fut: seen.append(fut.failed))
        f.fail(RuntimeError())
        assert seen == [True]


class TestConstructors:
    def test_resolved_constructor(self):
        f = resolved(7, label="seven")
        assert f.result() == 7
        assert f.label == "seven"

    def test_failed_constructor(self):
        f = failed(KeyError("k"), label="lookup")
        assert f.failed
        with pytest.raises(KeyError):
            f.result()
