"""Tests for the scheduler interface plumbing and counters."""

import pytest

from repro.core.interface import SchedulerCounters
from repro.core.transaction import Transaction, TxnClass
from repro.errors import AbortReason


def ro():
    return Transaction(TxnClass.READ_ONLY)


def rw():
    return Transaction()


class TestSchedulerCounters:
    def test_bump_and_get(self):
        c = SchedulerCounters()
        c.bump("custom")
        c.bump("custom", 4)
        assert c.get("custom") == 5
        assert c.get("missing") == 0

    def test_begin_commit_split_by_class(self):
        c = SchedulerCounters()
        c.note_begin(ro())
        c.note_begin(rw())
        c.note_commit(rw())
        assert c.get("begin.ro") == 1
        assert c.get("begin.rw") == 1
        assert c.get("commit.rw") == 1
        assert c.get("commit.ro") == 0

    def test_abort_records_reason_and_attribution(self):
        c = SchedulerCounters()
        c.note_abort(rw(), AbortReason.TIMESTAMP_REJECTED, caused_by_readonly=True)
        assert c.get("abort.rw") == 1
        assert c.get("abort.rw.timestamp_rejected") == 1
        assert c.get("abort.rw.caused_by_readonly") == 1

    def test_ro_self_abort_not_counted_as_ro_caused(self):
        c = SchedulerCounters()
        c.note_abort(ro(), AbortReason.TIMESTAMP_REJECTED, caused_by_readonly=True)
        assert c.get("abort.ro") == 1
        assert c.get("abort.rw.caused_by_readonly") == 0

    def test_cc_and_vc_interactions(self):
        c = SchedulerCounters()
        c.note_cc_interaction(rw(), "r-lock")
        c.note_vc_interaction(ro(), "start")
        assert c.get("cc.rw") == 1
        assert c.get("cc.rw.r-lock") == 1
        assert c.get("vc.ro.start") == 1

    def test_block_with_cause(self):
        c = SchedulerCounters()
        c.note_block(ro(), "pending-write")
        assert c.get("block.ro") == 1
        assert c.get("block.ro.pending-write") == 1

    def test_sync_write(self):
        c = SchedulerCounters()
        c.note_sync_write(ro(), "r_ts")
        assert c.get("syncwrite.ro") == 1
        assert c.get("syncwrite.ro.r_ts") == 1

    def test_as_dict_snapshot(self):
        c = SchedulerCounters()
        c.bump("a")
        snapshot = c.as_dict()
        c.bump("a")
        assert snapshot == {"a": 1}, "as_dict returns a copy"
