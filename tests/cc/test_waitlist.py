"""Tests for the generic per-key wait lists."""

from repro.cc.waitlist import WaitList
from repro.core.transaction import Transaction


def make_attempt(results: list, succeed_after: int = 0):
    """An attempt closure that fails `succeed_after` times, then completes."""
    state = {"calls": 0}

    def attempt() -> bool:
        state["calls"] += 1
        if state["calls"] > succeed_after:
            results.append(state["calls"])
            return True
        return False

    return attempt


class TestWaitList:
    def test_wake_redrives_parked_attempts(self):
        wl = WaitList()
        results = []
        txn = Transaction()
        wl.park("x", txn, make_attempt(results))
        assert wl.waiting_on("x") == 1
        wl.wake(["x"])
        assert results == [1]
        assert wl.is_empty()

    def test_still_blocked_attempts_reparked(self):
        wl = WaitList()
        results = []
        txn = Transaction()
        wl.park("x", txn, make_attempt(results, succeed_after=2))
        wl.wake(["x"])      # attempt 1: still blocked
        assert wl.waiting_on("x") == 1
        wl.wake(["x"])      # attempt 2: still blocked
        wl.wake(["x"])      # attempt 3: completes
        assert results == [3]
        assert wl.is_empty()

    def test_wake_unrelated_key_is_noop(self):
        wl = WaitList()
        results = []
        wl.park("x", Transaction(), make_attempt(results))
        wl.wake(["y"])
        assert results == []
        assert wl.waiting_on("x") == 1

    def test_multiple_waiters_fifo(self):
        wl = WaitList()
        order = []
        for i in range(3):
            txn = Transaction()
            wl.park("x", txn, lambda i=i: order.append(i) or True)
        wl.wake(["x"])
        assert order == [0, 1, 2]

    def test_drop_transaction_removes_all_its_entries(self):
        wl = WaitList()
        victim, other = Transaction(), Transaction()
        results = []
        wl.park("x", victim, make_attempt(results))
        wl.park("y", victim, make_attempt(results))
        wl.park("x", other, make_attempt(results))
        wl.drop_transaction(victim)
        assert wl.waiting_on("x") == 1
        assert wl.waiting_on("y") == 0
        wl.wake(["x", "y"])
        assert len(results) == 1, "only the survivor's attempt ran"

    def test_fifo_order_preserved_across_repark(self):
        """Still-blocked waiters re-park in their original FIFO order."""
        wl = WaitList()
        order = []
        gate = {"open": False}

        def waiter(label):
            def attempt() -> bool:
                if gate["open"]:
                    order.append(label)
                    return True
                return False

            return attempt

        for label in ("a", "b", "c"):
            wl.park("x", Transaction(), waiter(label))
        wl.wake(["x"])  # everyone still blocked: re-parked, order intact
        assert wl.waiting_on("x") == 3
        gate["open"] = True
        wl.wake(["x"])
        assert order == ["a", "b", "c"]

    def test_wake_during_wake_is_safe(self):
        """An attempt that parks a new waiter on the same key."""
        wl = WaitList()
        ran = []
        txn_a, txn_b = Transaction(), Transaction()

        def cascading() -> bool:
            ran.append("a")
            wl.park("x", txn_b, lambda: ran.append("b") or True)
            return True

        wl.park("x", txn_a, cascading)
        wl.wake(["x"])
        assert ran == ["a"]
        wl.wake(["x"])
        assert ran == ["a", "b"]


class TestDeadlines:
    def test_expire_due_removes_overdue_waiters(self):
        wl = WaitList()
        results = []
        due, patient = Transaction(), Transaction()
        wl.park("x", due, make_attempt(results), deadline=10.0)
        wl.park("x", patient, make_attempt(results))  # no deadline
        assert wl.expire_due(9.9) == []
        expired = wl.expire_due(10.0)
        assert expired == [due]
        assert wl.waiting_on("x") == 1

    def test_expired_waiter_is_never_woken(self):
        """A deadline-aborted waiter must not linger to be woken spuriously."""
        wl = WaitList()
        woken = []
        txn = Transaction()
        wl.park("x", txn, lambda: woken.append(txn) or True, deadline=5.0)
        wl.expire_due(5.0)
        wl.wake(["x"])
        assert woken == []
        assert wl.is_empty()

    def test_on_expire_receives_txn_and_key(self):
        wl = WaitList()
        handed = []
        txn = Transaction()
        wl.park("k1", txn, lambda: False, deadline=1.0)
        wl.expire_due(2.0, on_expire=lambda t, key: handed.append((t, key)))
        assert handed == [(txn, "k1")]

    def test_expiry_sweeps_all_keys_of_the_transaction(self):
        wl = WaitList()
        txn = Transaction()
        wl.park("x", txn, lambda: False, deadline=1.0)
        wl.park("y", txn, lambda: False)  # same txn, no deadline here
        expired = wl.expire_due(1.0)
        assert expired == [txn]
        assert wl.is_empty(), "every entry of the expired txn is dropped"
