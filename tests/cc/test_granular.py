"""Tests for the multi-granularity lock manager."""

import pytest

from repro.cc.granular import (
    GranularLockManager,
    GranularMode as M,
    combine,
    covers,
    granular_compatible,
)
from repro.errors import DeadlockError, ProtocolError

DB = ("db",)


def key(k):
    return ("db", k)


class TestCompatibilityMatrix:
    def test_full_matrix(self):
        expected_yes = {
            (M.IS, M.IS), (M.IS, M.IX), (M.IS, M.S), (M.IS, M.SIX),
            (M.IX, M.IS), (M.IX, M.IX),
            (M.S, M.IS), (M.S, M.S),
            (M.SIX, M.IS),
        }
        for a in M:
            for b in M:
                assert granular_compatible(a, b) == ((a, b) in expected_yes), (a, b)

    def test_matrix_is_symmetric(self):
        for a in M:
            for b in M:
                assert granular_compatible(a, b) == granular_compatible(b, a)

    def test_x_conflicts_with_everything(self):
        assert not any(granular_compatible(M.X, m) for m in M)


class TestCoversAndCombine:
    def test_x_covers_all(self):
        assert all(covers(M.X, m) for m in M)

    def test_six_covers_s_and_intentions(self):
        assert covers(M.SIX, M.S)
        assert covers(M.SIX, M.IS)
        assert covers(M.SIX, M.IX)
        assert not covers(M.SIX, M.X)

    def test_s_plus_ix_is_six(self):
        assert combine(M.S, M.IX) is M.SIX
        assert combine(M.IX, M.S) is M.SIX

    def test_combine_keeps_covering_mode(self):
        assert combine(M.X, M.S) is M.X
        assert combine(M.SIX, M.IX) is M.SIX

    def test_combine_upgrades(self):
        assert combine(M.IS, M.X) is M.X
        assert combine(M.IX, M.X) is M.X


class TestIntentionAcquisition:
    def test_leaf_lock_takes_ancestor_intentions(self):
        lm = GranularLockManager()
        assert lm.acquire(1, key("x"), M.X).done
        assert lm.holders(DB) == {1: M.IX}
        assert lm.holders(key("x")) == {1: M.X}

    def test_shared_leaf_takes_is_at_root(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.S).result()
        assert lm.holders(DB) == {1: M.IS}

    def test_two_writers_different_keys_coexist(self):
        lm = GranularLockManager()
        assert lm.acquire(1, key("x"), M.X).done
        assert lm.acquire(2, key("y"), M.X).done
        assert lm.holders(DB) == {1: M.IX, 2: M.IX}

    def test_root_s_blocks_key_writer(self):
        lm = GranularLockManager()
        lm.acquire(1, DB, M.S).result()
        f = lm.acquire(2, key("x"), M.X)  # needs IX at root: incompatible
        assert f.pending
        lm.release_all(1)
        assert f.done

    def test_key_writer_blocks_root_s(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()
        f = lm.acquire(2, DB, M.S)
        assert f.pending
        lm.release_all(1)
        assert f.done

    def test_root_s_compatible_with_key_readers(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.S).result()  # IS at root
        assert lm.acquire(2, DB, M.S).done

    def test_scan_then_write_converts_to_six(self):
        lm = GranularLockManager()
        lm.acquire(1, DB, M.S).result()
        assert lm.acquire(1, key("x"), M.X).done
        assert lm.holders(DB) == {1: M.SIX}

    def test_empty_path_rejected(self):
        lm = GranularLockManager()
        with pytest.raises(ProtocolError):
            lm.acquire(1, (), M.S)

    def test_one_pending_request_enforced(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()
        lm.acquire(2, key("x"), M.X)
        with pytest.raises(ProtocolError, match="pending"):
            lm.acquire(2, key("y"), M.S)


class TestBlockingAndRelease:
    def test_fifo_at_a_node(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()
        f2 = lm.acquire(2, key("x"), M.X)
        f3 = lm.acquire(3, key("x"), M.S)
        assert f2.pending and f3.pending
        lm.release_all(1)
        assert f2.done and f3.pending
        lm.release_all(2)
        assert f3.done

    def test_release_clears_intentions(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()
        lm.release_all(1)
        assert lm.is_idle()
        assert lm.held_by(1) == {}

    def test_conversion_jumps_queue(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.S).result()
        lm.acquire(2, key("x"), M.S).result()
        f3 = lm.acquire(3, key("x"), M.X)       # fresh waiter
        up = lm.acquire(1, key("x"), M.X)       # conversion S->X
        assert f3.pending and up.pending
        lm.release_all(2)
        assert up.done, "conversion granted first"
        lm.release_all(1)
        assert f3.done


class TestDeadlock:
    def test_cross_key_deadlock(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()
        lm.acquire(2, key("y"), M.X).result()
        f1 = lm.acquire(1, key("y"), M.X)
        assert f1.pending
        f2 = lm.acquire(2, key("x"), M.X)
        assert f2.failed
        assert isinstance(f2.error, DeadlockError)
        assert lm.deadlocks == 1
        lm.release_all(2)
        assert f1.done

    def test_root_vs_leaf_deadlock(self):
        lm = GranularLockManager()
        lm.acquire(1, key("x"), M.X).result()   # IX at root
        lm.acquire(2, key("y"), M.S).result()   # IS at root
        f2 = lm.acquire(2, DB, M.S)             # waits: conversion IS->S vs IX
        assert f2.pending
        f1 = lm.acquire(1, key("y"), M.X)       # waits for 2's S on y: cycle
        assert f1.failed
        lm.release_all(1)
        assert f2.done


class TestGrantAccounting:
    def test_scan_is_one_grant_vs_n(self):
        lm = GranularLockManager()
        # Per-key reader: N leaf grants + 1 root intention.
        for i in range(10):
            lm.acquire(1, key(f"k{i}"), M.S).result()
        per_key_grants = lm.grants
        lm.release_all(1)
        lm2 = GranularLockManager()
        lm2.acquire(2, DB, M.S).result()
        assert lm2.grants == 1
        assert per_key_grants == 11  # 10 leaves + 1 root IS