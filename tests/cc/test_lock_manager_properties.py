"""Property-based fuzzing of the lock manager.

Hypothesis drives random sequences of acquire/release operations and checks
the manager's structural invariants after every step:

* **mutual exclusion** — never two holders on a key unless all hold S;
* **no lost requests** — every request is eventually granted, deadlock-
  failed, or cancelled by its transaction's release;
* **no phantom state** — after releasing everything, the table is idle and
  the waits-for graph empty.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.lock_manager import LockManager
from repro.cc.locks import LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE
KEYS = ["a", "b", "c"]
N_TXNS = 5


def check_invariants(lm: LockManager) -> None:
    for key in KEYS:
        holders = lm.holders(key)
        modes = list(holders.values())
        if X in modes:
            assert len(modes) == 1, f"X shared on {key}: {holders}"
    # A waiting transaction never simultaneously holds an incompatible
    # grant... (upgrades excepted: S held while X requested).  Covered by
    # the grant logic; here we check the waits-for graph only references
    # transactions that actually wait.
    for waiter in lm.waits_for.waiters():
        assert any(waiter in lm.waiting(key) for key in KEYS), (
            f"{waiter} has waits-for edges but no queued request"
        )


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_property_random_lock_traffic(data):
    lm = LockManager()
    alive: set[int] = set(range(1, N_TXNS + 1))
    pending: dict[int, object] = {}
    granted_or_failed = 0
    issued = 0
    for _ in range(30):
        candidates = sorted(alive - set(pending))
        action = data.draw(
            st.sampled_from(["acquire", "release"]) if candidates else st.just("release")
        )
        if action == "acquire" and candidates:
            txn = data.draw(st.sampled_from(candidates))
            key = data.draw(st.sampled_from(KEYS))
            mode = data.draw(st.sampled_from([S, X]))
            future = lm.acquire(txn, key, mode)
            issued += 1
            if future.pending:
                pending[txn] = future
            else:
                granted_or_failed += 1
                if future.failed:
                    lm.release_all(txn)
                    pending.pop(txn, None)
        else:
            txn = data.draw(st.sampled_from(sorted(alive)))
            lm.release_all(txn)
            # Its own pending request (if any) was cancelled.
            pending.pop(txn, None)
        # Absorb any futures resolved by the release.
        for txn, future in list(pending.items()):
            if not future.pending:
                del pending[txn]
                granted_or_failed += 1
                if future.failed:
                    lm.release_all(txn)
        check_invariants(lm)
    # Drain: release everyone; everything must come home.
    for txn in sorted(alive):
        lm.release_all(txn)
    for txn, future in list(pending.items()):
        if not future.pending:
            granted_or_failed += 1
    assert lm.is_idle()
    assert not lm.waits_for.waiters()


@settings(max_examples=100, deadline=None)
@given(
    order=st.permutations(list(range(1, 6))),
    key_picks=st.lists(st.sampled_from(KEYS), min_size=5, max_size=5),
)
def test_property_fifo_release_grants_everyone(order, key_picks):
    """N writers queue on keys; releasing in any order grants all of them."""
    lm = LockManager()
    futures = {}
    for txn, key in zip(order, key_picks):
        futures[txn] = lm.acquire(txn, key, X)
    # Release in a different arbitrary order; every pending writer whose
    # turn comes must be granted.
    for txn in sorted(order):
        if futures[txn].done and not futures[txn].failed:
            lm.release_all(txn)
    # Whoever is still pending gets granted as predecessors release.
    for _ in range(10):
        progressed = False
        for txn in order:
            f = futures[txn]
            if f.done and not f.failed and txn in {
                h for key in KEYS for h in lm.holders(key)
            }:
                lm.release_all(txn)
                progressed = True
        if not progressed:
            break
    assert all(f.done for f in futures.values())
    assert lm.is_idle()
