"""Tests for the strict 2PL lock manager and deadlock detection."""

import pytest

from repro.cc.deadlock import WaitsForGraph, choose_victim
from repro.cc.lock_manager import LockManager
from repro.cc.locks import LockMode, compatible
from repro.errors import DeadlockError, ProtocolError

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestModes:
    def test_compatibility_matrix(self):
        assert compatible(S, S)
        assert not compatible(S, X)
        assert not compatible(X, S)
        assert not compatible(X, X)

    def test_covers(self):
        assert X.covers(S)
        assert X.covers(X)
        assert S.covers(S)
        assert not S.covers(X)


class TestGrantImmediate:
    def test_first_acquire_granted(self):
        lm = LockManager()
        assert lm.acquire(1, "x", X).done
        assert lm.holders("x") == {1: X}
        assert lm.held_by(1) == {"x"}

    def test_shared_coexistence(self):
        lm = LockManager()
        assert lm.acquire(1, "x", S).done
        assert lm.acquire(2, "x", S).done
        assert set(lm.holders("x")) == {1, 2}

    def test_reentrant_same_mode(self):
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        assert lm.acquire(1, "x", S).done

    def test_x_covers_s_request(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        assert lm.acquire(1, "x", S).done
        assert lm.holders("x") == {1: X}

    def test_sole_holder_upgrade_granted(self):
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        assert lm.acquire(1, "x", X).done
        assert lm.holders("x") == {1: X}


class TestBlocking:
    def test_x_blocks_behind_s(self):
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        f = lm.acquire(2, "x", X)
        assert f.pending
        assert lm.blocks == 1
        assert lm.waiting("x") == [2]

    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        f = lm.acquire(2, "x", S)
        assert f.pending
        lm.release_all(1)
        assert f.done
        assert lm.holders("x") == {2: S}

    def test_fifo_no_overtaking(self):
        """An S request queued behind an X waiter must not overtake it."""
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        fx = lm.acquire(2, "x", X)
        fs = lm.acquire(3, "x", S)
        assert fx.pending and fs.pending
        lm.release_all(1)
        assert fx.done, "X waiter granted first"
        assert fs.pending, "S waiter must wait behind the X holder"
        lm.release_all(2)
        assert fs.done

    def test_compatible_prefix_granted_together(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        f2 = lm.acquire(2, "x", S)
        f3 = lm.acquire(3, "x", S)
        lm.release_all(1)
        assert f2.done and f3.done

    def test_upgrade_waits_for_other_readers(self):
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        lm.acquire(2, "x", S).result()
        up = lm.acquire(1, "x", X)
        assert up.pending
        lm.release_all(2)
        assert up.done
        assert lm.holders("x") == {1: X}

    def test_upgrade_jumps_queue(self):
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        lm.acquire(2, "x", S).result()
        f3 = lm.acquire(3, "x", X)       # ordinary waiter
        up = lm.acquire(1, "x", X)       # upgrade: goes in front
        lm.release_all(2)
        assert up.done, "upgrade granted as soon as requester is sole holder"
        assert f3.pending
        lm.release_all(1)
        assert f3.done

    def test_one_pending_request_per_txn_enforced(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "x", X)
        with pytest.raises(ProtocolError, match="pending lock request"):
            lm.acquire(2, "y", S)

    def test_cancel_pending_via_release_all(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        f2 = lm.acquire(2, "x", X)
        f3 = lm.acquire(3, "x", S)
        lm.release_all(2)  # cancels T2's queued request
        assert f2.pending  # future simply never resolves; txn moved on
        lm.release_all(1)
        assert f3.done


class TestDeadlock:
    def test_two_txn_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "y", X).result()
        f1 = lm.acquire(1, "y", X)
        assert f1.pending
        f2 = lm.acquire(2, "x", X)  # closes the cycle
        assert f2.failed
        assert isinstance(f2.error, DeadlockError)
        assert lm.deadlocks == 1
        assert f1.pending, "non-victim keeps waiting"

    def test_victim_release_unblocks_survivor(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "y", X).result()
        f1 = lm.acquire(1, "y", X)
        lm.acquire(2, "x", X)  # T2 becomes victim
        lm.release_all(2)      # scheduler aborts T2
        assert f1.done

    def test_youngest_victim_policy(self):
        lm = LockManager(victim_policy="youngest")
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "y", X).result()
        f1 = lm.acquire(1, "y", X)
        f2 = lm.acquire(2, "x", X)
        # T2 is younger (larger id): it is the victim under both policies here.
        assert f2.failed and f1.pending

    def test_oldest_victim_policy(self):
        events = []
        lm = LockManager(victim_policy="oldest", on_deadlock=lambda v, c: events.append(v))
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "y", X).result()
        f1 = lm.acquire(1, "y", X)
        f2 = lm.acquire(2, "x", X)
        assert events == [1]
        assert f1.failed and f2.pending

    def test_upgrade_deadlock(self):
        """Two S holders both upgrading is the classic conversion deadlock."""
        lm = LockManager()
        lm.acquire(1, "x", S).result()
        lm.acquire(2, "x", S).result()
        f1 = lm.acquire(1, "x", X)
        assert f1.pending
        f2 = lm.acquire(2, "x", X)
        assert f2.failed
        lm.release_all(2)
        assert f1.done

    def test_three_txn_cycle(self):
        lm = LockManager()
        lm.acquire(1, "a", X).result()
        lm.acquire(2, "b", X).result()
        lm.acquire(3, "c", X).result()
        lm.acquire(1, "b", X)
        lm.acquire(2, "c", X)
        f3 = lm.acquire(3, "a", X)
        assert f3.failed
        assert set(f3.error.cycle) >= {1, 2, 3}

    def test_on_block_callback(self):
        blocked = []
        lm = LockManager(on_block=lambda t, k: blocked.append((t, k)))
        lm.acquire(1, "x", X).result()
        lm.acquire(2, "x", S)
        assert blocked == [(2, "x")]


class TestReleaseAll:
    def test_idle_after_full_release(self):
        lm = LockManager()
        lm.acquire(1, "x", X).result()
        lm.acquire(1, "y", S).result()
        lm.release_all(1)
        assert lm.is_idle()
        assert lm.held_by(1) == set()

    def test_release_without_locks_is_noop(self):
        lm = LockManager()
        lm.release_all(99)
        assert lm.is_idle()


class TestWaitsForGraph:
    def test_counted_edges(self):
        g = WaitsForGraph()
        g.add(1, 2)
        g.add(1, 2)
        g.remove(1, 2)
        assert g.edges() == [(1, 2)]
        g.remove(1, 2)
        assert g.edges() == []

    def test_self_edges_ignored(self):
        g = WaitsForGraph()
        g.add(1, 1)
        assert g.edges() == []

    def test_remove_waiter(self):
        g = WaitsForGraph()
        g.add(1, 2)
        g.add(1, 3)
        g.remove_waiter(1)
        assert g.edges() == []
        assert not g.is_waiting(1)

    def test_find_cycle(self):
        g = WaitsForGraph()
        g.add(1, 2)
        g.add(2, 1)
        assert g.find_cycle() is not None


class TestChooseVictim:
    def test_requester(self):
        assert choose_victim([1, 2, 1], "requester", requester=2) == 2

    def test_requester_fallback_to_youngest(self):
        assert choose_victim([1, 2, 1], "requester", requester=99) == 2

    def test_youngest_and_oldest(self):
        assert choose_victim([3, 7, 5, 3], "youngest", requester=3) == 7
        assert choose_victim([3, 7, 5, 3], "oldest", requester=3) == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown victim policy"):
            choose_victim([1, 2, 1], "coinflip", requester=1)
