"""Property-based fuzzing of the multi-granularity lock manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.granular import (
    GranularLockManager,
    GranularMode as M,
    granular_compatible,
)

KEYS = ["a", "b"]
PATHS = [("db",)] + [("db", k) for k in KEYS]
MODES = [M.IS, M.IX, M.S, M.SIX, M.X]
N_TXNS = 4


def check_invariants(lm: GranularLockManager) -> None:
    # Pairwise compatibility of all grants at every node (conversions may
    # leave a holder stronger than others would admit for a *new* request,
    # but grants present together must be mutually compatible at grant time;
    # we check the weaker sound invariant: no X coexists with anything).
    for path in PATHS:
        holders = lm.holders(path)
        modes = list(holders.values())
        if M.X in modes:
            assert len(modes) == 1, f"X shared at {path}: {holders}"
        if M.SIX in modes:
            assert all(m in (M.SIX, M.IS) for m in modes), holders
    # Intention discipline: any leaf lock implies some lock at the root.
    for txn in range(1, N_TXNS + 1):
        held = lm.held_by(txn)
        if any(len(path) > 1 for path in held):
            assert ("db",) in held, f"T{txn} holds leaves without root intent"


@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_property_random_granular_traffic(data):
    lm = GranularLockManager()
    pending: dict[int, object] = {}
    for _ in range(25):
        free = [t for t in range(1, N_TXNS + 1) if t not in pending]
        action = data.draw(st.sampled_from(["acquire", "release"]))
        if action == "acquire" and free:
            txn = data.draw(st.sampled_from(free))
            path = data.draw(st.sampled_from(PATHS))
            mode = data.draw(st.sampled_from(MODES))
            future = lm.acquire(txn, path, mode)
            if future.pending:
                pending[txn] = future
            elif future.failed:
                lm.release_all(txn)
        else:
            txn = data.draw(st.integers(1, N_TXNS))
            lm.release_all(txn)
            pending.pop(txn, None)
        for txn, future in list(pending.items()):
            if not future.pending:
                del pending[txn]
                if future.failed:
                    lm.release_all(txn)
        check_invariants(lm)
    for txn in range(1, N_TXNS + 1):
        lm.release_all(txn)
    assert lm.is_idle()
    assert not lm.waits_for.waiters()


@settings(max_examples=100, deadline=None)
@given(
    modes=st.lists(st.sampled_from(MODES), min_size=2, max_size=6),
)
def test_property_grants_at_a_node_were_pairwise_compatible(modes):
    """Sequentially granted (non-blocked) requests are pairwise compatible."""
    lm = GranularLockManager()
    granted: list[M] = []
    for txn, mode in enumerate(modes, start=1):
        future = lm.acquire(txn, ("db", "x"), mode)
        if future.done and not future.failed:
            # Every previously granted mode must admit this one.
            assert all(granular_compatible(g, mode) for g in granted)
            granted.append(mode)
        lm._cancel_pending(txn) if future.pending else None
