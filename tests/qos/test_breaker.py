"""Circuit breaker state machine under an injected virtual clock."""

import pytest

from repro.obs.exporters import RingBufferExporter
from repro.obs.tracer import Tracer
from repro.qos.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker


class Clock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, recovery=10.0):
        clock = Clock()
        breaker = CircuitBreaker(
            name="s1", failure_threshold=threshold, recovery_time=recovery, clock=clock
        )
        return breaker, clock

    def test_stays_closed_below_threshold(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trips_open_at_threshold(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_half_open_after_recovery_time(self):
        breaker, clock = self.make(threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow(), "recovery elapsed: one probe goes through"
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(), "only a single probe at a time"

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, recovery=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = self.make(threshold=1, recovery=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.now = 9.0  # only 4 units since the re-open
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    def test_transitions_emit_qos_breaker_events(self):
        ring = RingBufferExporter()
        breaker, clock = self.make(threshold=1, recovery=5.0)
        breaker.tracer = Tracer(exporters=[ring])
        breaker.record_failure()
        clock.now = 5.0
        breaker.allow()
        breaker.record_success()
        states = [e.fields["state"] for e in ring.events() if e.name == "qos.breaker"]
        assert states == [OPEN, HALF_OPEN, CLOSED]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestBreakerBoard:
    def test_one_breaker_per_site(self):
        board = BreakerBoard(failure_threshold=1)
        board.record_failure(1)
        assert not board.allow(1)
        assert board.allow(2), "site 2's breaker is independent"
        assert board.states() == {1: OPEN, 2: CLOSED}

    def test_bind_clock_reaches_existing_breakers(self):
        board = BreakerBoard(failure_threshold=1, recovery_time=5.0)
        board.record_failure(1)  # breaker created with the default clock
        clock = Clock(100.0)
        board.bind_clock(clock)
        assert board.allow(1), "late-bound clock drives recovery"

    def test_tracer_fans_out_to_existing_breakers(self):
        ring = RingBufferExporter()
        board = BreakerBoard(failure_threshold=1)
        breaker = board.for_site(1)  # created before the tracer attach
        board.tracer = Tracer(exporters=[ring])
        assert breaker.tracer.enabled
        board.record_failure(1)
        assert any(e.name == "qos.breaker" for e in ring.events())
