"""The overload campaign: the ISSUE's acceptance stress test.

Read-write load at 4x admission capacity, read-only clients alongside.
The QoS layer must shed the excess with typed errors, deadline-abort
convoyed writers, and keep the read-only fast path completely untouched —
no shedding, no deadline aborts, p99 within 1.5x of the uncontended
baseline, bounded snapshot staleness — deterministically under the seed,
with every decision visible as a ``qos.*`` event.
"""

from repro.qos.admission import POLICIES
from repro.qos.overload import RO_P99_CEILING, run_overload_campaign


class TestAcceptance:
    def test_overload_campaign_meets_the_guarantees(self):
        report = run_overload_campaign(seed=0, duration=200.0)
        assert report.ok, report.violations

        # Overload was real: writers at 4x capacity, excess shed.
        assert report.writers == 4 * report.capacity
        assert report.overload.rw_shed > 0
        assert 0.0 < report.shed_rate < 1.0
        # Deadlines bit: some admitted writers convoyed past their budget.
        assert report.overload.rw_deadline_misses > 0

        # The read-only guarantee: never shed, never deadline-aborted,
        # latency flat relative to the uncontended baseline.
        assert report.overload.ro_shed == 0
        assert report.overload.ro_deadline_misses == 0
        assert report.overload.ro_commits > 0
        assert (
            report.overload.ro_latency.p99
            <= RO_P99_CEILING * report.baseline.ro_latency.p99
        )
        # Staleness is reported per snapshot and bounded by capacity.
        assert report.overload.staleness.count == report.overload.ro_commits
        assert report.overload.staleness.maximum <= report.capacity

        # Deterministic (the campaign replays the overload phase itself).
        assert report.deterministic

        # Decisions are observable.
        assert report.overload.qos_events.get("qos.shed", 0) > 0
        assert report.overload.qos_events.get("qos.admit", 0) > 0
        assert report.overload.qos_events.get("qos.ro_snapshot", 0) > 0

    def test_report_serializes(self):
        report = run_overload_campaign(
            seed=1, duration=80.0, verify_determinism=False
        )
        data = report.as_dict()
        assert data["ok"] == report.ok
        assert set(data) >= {
            "shed_rate",
            "deadline_miss_rate",
            "ro_p99_ratio",
            "qos_events",
            "violations",
        }

    def test_every_policy_upholds_the_guarantees(self):
        for policy in POLICIES:
            report = run_overload_campaign(
                seed=2, duration=80.0, policy=policy, verify_determinism=False
            )
            assert report.overload.ro_shed == 0, policy
            assert report.overload.rw_shed > 0, policy
            assert report.ok, (policy, report.violations)

    def test_slo_watchdogs_ride_the_campaign(self):
        report = run_overload_campaign(seed=3, duration=80.0)
        assert report.slo is not None
        assert report.slo["ok"], report.slo["breaches"]
        objectives = report.slo["objectives"]
        # The campaign's hard promises run as zero-objectives...
        assert objectives["ro_blocking"]["kind"] == "zero"
        assert objectives["ro_blocking"]["violations"] == 0
        assert objectives["ro_shed"]["violations"] == 0
        # ...and the per-window RO p99 watchdog actually saw latency samples.
        assert objectives["ro_p99"]["windows"] > 0
        # Determinism covers the verdict block too (engine-report equality
        # is folded into the campaign's own replay check).
        assert report.deterministic

    def test_slo_can_be_disabled(self):
        report = run_overload_campaign(
            seed=3, duration=60.0, slo=False, verify_determinism=False
        )
        assert report.slo is None
        assert report.ok, report.violations
