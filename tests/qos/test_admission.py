"""Admission controller: tokens, bounded queues, shedding policies."""

import pytest

from repro.errors import Overloaded
from repro.obs.exporters import RingBufferExporter
from repro.obs.tracer import Tracer
from repro.qos import POLICIES, AdmissionController


class TestSynchronousAdmit:
    def test_admits_up_to_capacity_then_sheds(self):
        gate = AdmissionController(capacity=2)
        gate.admit()
        gate.admit()
        with pytest.raises(Overloaded) as exc_info:
            gate.admit()
        assert exc_info.value.policy == "fifo"
        assert gate.in_flight == 2
        assert gate.admitted == 2
        assert gate.shed == 1

    def test_release_frees_a_token(self):
        gate = AdmissionController(capacity=1)
        gate.admit()
        gate.release()
        gate.admit()  # does not raise
        assert gate.admitted == 2

    def test_try_admit_returns_bool(self):
        gate = AdmissionController(capacity=1)
        assert gate.try_admit()
        assert not gate.try_admit()
        assert gate.shed == 1

    def test_release_without_admit_rejected(self):
        gate = AdmissionController(capacity=1)
        with pytest.raises(ValueError):
            gate.release()

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=-1)
        with pytest.raises(ValueError):
            AdmissionController(policy="random")


class TestAcquireQueueing:
    def test_immediate_grant_when_tokens_free(self):
        gate = AdmissionController(capacity=1)
        assert gate.acquire().done

    def test_waiter_granted_on_release_fifo(self):
        gate = AdmissionController(capacity=1, queue_limit=4)
        first = gate.acquire()
        second = gate.acquire()
        third = gate.acquire()
        assert first.done and second.pending and third.pending
        gate.release()
        assert second.done and third.pending, "FIFO: oldest waiter first"
        gate.release()
        assert third.done

    def test_fifo_overflow_sheds_the_new_arrival(self):
        gate = AdmissionController(capacity=1, queue_limit=1)
        gate.acquire()
        waiting = gate.acquire()
        newcomer = gate.acquire()
        assert waiting.pending
        assert newcomer.failed
        assert isinstance(newcomer.error, Overloaded)

    def test_lifo_shed_serves_newest_sheds_oldest(self):
        gate = AdmissionController(capacity=1, queue_limit=2, policy="lifo-shed")
        gate.acquire()
        oldest = gate.acquire()
        middle = gate.acquire()
        newest = gate.acquire()  # overflow: oldest is shed
        assert oldest.failed and isinstance(oldest.error, Overloaded)
        gate.release()
        assert newest.done, "adaptive LIFO serves the freshest waiter"
        assert middle.pending

    def test_priority_serves_highest_sheds_lowest(self):
        gate = AdmissionController(capacity=1, queue_limit=2, policy="priority")
        gate.acquire(priority=5.0)
        low = gate.acquire(priority=1.0)
        high = gate.acquire(priority=9.0)
        lowest = gate.acquire(priority=0.5)  # overflow: lowest priority loses
        assert lowest.failed
        gate.release()
        assert high.done
        assert low.pending

    def test_priority_ties_break_oldest_first(self):
        gate = AdmissionController(capacity=1, queue_limit=4, policy="priority")
        gate.acquire()
        first = gate.acquire(priority=1.0)
        second = gate.acquire(priority=1.0)
        gate.release()
        assert first.done and second.pending

    def test_queue_limit_zero_sheds_every_overflow(self):
        gate = AdmissionController(capacity=1, queue_limit=0)
        gate.acquire()
        assert gate.acquire().failed
        assert gate.queue_depth == 0


class TestEvents:
    def test_decisions_emit_qos_events(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        gate = AdmissionController(capacity=1, queue_limit=1)
        gate.tracer = tracer
        gate.admit()
        with pytest.raises(Overloaded):
            gate.admit()
        queued = gate.acquire()
        gate.release()
        assert queued.done
        names = [event.name for event in ring.events()]
        assert "qos.admit" in names
        assert "qos.shed" in names
        assert "qos.queue" in names

    def test_policies_constant_matches_validation(self):
        for policy in POLICIES:
            AdmissionController(policy=policy)
