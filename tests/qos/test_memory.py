"""The memory-pressure controller and its campaign.

Unit tests pin the watermark loop's mechanics — expire first, sweep,
revoke oldest-first only while above the high watermark, tighten and
restore admission — and the acceptance test runs the seeded HTAP
campaign behind ``python -m repro drill --campaign memory``.
"""

import pytest

from repro.core.transaction import Transaction, TxnClass
from repro.core.version_control import VersionControl
from repro.qos.admission import AdmissionController
from repro.qos.memory import MemoryPressureController, run_memory_campaign
from repro.storage.gc import GarbageCollector
from repro.storage.mvstore import MVStore


def ro(sn):
    t = Transaction(TxnClass.READ_ONLY)
    t.sn = sn
    return t


class Rig:
    """Store + VC + bounded GC with helpers to sculpt a footprint."""

    def __init__(self, n_keys=4):
        self.store = MVStore()
        self.vc = VersionControl()
        self.gc = GarbageCollector(self.store, self.vc)
        self.registry = self.gc.registry
        self.keys = [f"k{i}" for i in range(n_keys)]

    def commit_round(self):
        for key in self.keys:
            t = Transaction()
            self.vc.vc_register(t)
            self.store.install(key, t.tn, t.tn)
            self.vc.vc_complete(t)

    def pin(self):
        reader = ro(self.vc.vc_start())
        self.registry.register(reader)
        return reader

    def controller(self, **kwargs):
        kwargs.setdefault("low_watermark", 8)
        kwargs.setdefault("high_watermark", 10)
        return MemoryPressureController(
            self.store, self.gc, self.registry, **kwargs
        )


class TestController:
    def test_watermark_validation(self):
        rig = Rig()
        with pytest.raises(ValueError):
            rig.controller(low_watermark=10, high_watermark=5)
        with pytest.raises(ValueError):
            rig.controller(low_watermark=0, high_watermark=5)

    def test_quiet_check_just_sweeps(self):
        rig = Rig()
        rig.commit_round()
        controller = rig.controller()
        live = controller.check(now=0.0)
        assert controller.state == "normal"
        assert controller.revocations == 0
        assert rig.gc.passes == 1
        assert live == len(rig.keys)  # one version per chain

    def test_pressure_revokes_oldest_until_under_high(self):
        rig = Rig()
        rig.commit_round()
        old_pin = rig.pin()          # sn = 4
        rig.commit_round()
        young_pin = rig.pin()        # sn = 8
        rig.commit_round()
        rig.commit_round()
        # Footprint: per chain the two pinned versions + the newest = 12.
        controller = rig.controller(low_watermark=8, high_watermark=10)
        live = controller.check(now=0.0)
        # One revocation (the *oldest* pin) brings it to 8 <= low: back to
        # normal within the same check.
        assert controller.revocations == 1
        assert rig.registry.lease_of(old_pin).revoked
        assert rig.registry.lease_of(young_pin).live
        assert live == 8
        assert controller.state == "normal"
        assert controller.peak_live == 12

    def test_ttl_expiry_is_tried_before_revocation(self):
        now = [0.0]
        rig = Rig()
        rig.registry.ttl = 10.0
        rig.registry.clock = lambda: now[0]
        rig.commit_round()
        zombie = rig.pin()           # granted at t=0, expires at t=10
        rig.commit_round()
        rig.commit_round()
        controller = rig.controller(low_watermark=6, high_watermark=7)
        now[0] = 11.0
        controller.check(now=now[0])
        # The expired lease freed the footprint; no pressure revocation.
        assert rig.registry.lease_of(zombie).revoke_cause == "lease_expired"
        assert rig.registry.revoked_counts == {"lease_expired": 1}
        assert controller.state == "normal"

    def test_max_revocations_per_check_is_respected(self):
        rig = Rig()
        pins = []
        for _ in range(4):
            rig.commit_round()
            pins.append(rig.pin())
        rig.commit_round()
        # Footprint 4 keys x (4 pins + newest) = 20; an impossible target
        # forces the loop to keep revoking until the valve stops it.
        controller = rig.controller(
            low_watermark=1, high_watermark=1, max_revocations_per_check=2
        )
        controller.check(now=0.0)
        assert controller.revocations == 2
        revoked = [p for p in pins if rig.registry.lease_of(p).revoked]
        assert revoked == pins[:2]   # oldest-first
        assert controller.state == "pressured"

    def test_admission_tightened_under_pressure_and_restored(self):
        rig = Rig()
        admission = AdmissionController(capacity=8, queue_limit=16)
        rig.commit_round()
        pin = rig.pin()
        for _ in range(3):
            rig.commit_round()
        controller = rig.controller(
            low_watermark=7, high_watermark=7, admission=admission
        )
        controller.check(now=0.0)    # 8 live > 7: revoke the pin -> 4 live
        assert controller.revocations == 1
        # Pressure entered and exited within one check; capacity restored.
        assert controller.state == "normal"
        assert admission.capacity == 8

    def test_admission_stays_tight_while_pressured(self):
        rig = Rig()
        admission = AdmissionController(capacity=8, queue_limit=16)
        rig.commit_round()
        # In-flight writers hold pending versions the sweep must retain:
        # 4 chains x (1 committed + 2 pending) = 12 live, no lease to
        # revoke — pressure persists until the writers drain.
        for key in rig.keys:
            rig.store.place_pending(key, 100, "w1")
            rig.store.place_pending(key, 101, "w2")
        controller = rig.controller(
            low_watermark=4, high_watermark=10, admission=admission
        )
        controller.check(now=0.0)
        assert controller.state == "pressured"
        assert admission.capacity == 4
        # The writers abort: their pending versions are destroyed and the
        # next check drops below the low watermark.
        for key in rig.keys:
            rig.store.discard_pending(key, 100)
            rig.store.discard_pending(key, 101)
        live = controller.check(now=1.0)
        assert live == 4
        assert controller.state == "normal"
        assert admission.capacity == 8


class TestAcceptance:
    def test_memory_campaign_meets_the_guarantees(self):
        report = run_memory_campaign(seed=0)
        assert report.ok, report.violations

        stats = report.stats
        # The paper's invariant under degradation: zero stale reads.
        assert stats.invariant_violations == []
        # Bounded footprint, independent of duration.
        assert 0 < stats.peak_live <= report.live_bound
        # Degradation engaged and surfaced as typed errors.
        assert stats.revocations
        assert stats.too_old_total > 0
        # Long scans were revoked yet ran to completion on retry.
        assert stats.scan_commits > 0
        assert stats.ro_commits > 0
        # RW work flowed (and some was shed while tightened).
        assert stats.rw_commits > 0
        # Deterministic, including the SLO verdict block.
        assert report.deterministic
        assert report.slo is not None and report.slo["ok"]

    def test_witness_peak_is_duration_independent(self):
        """The sealing bound, measured: doubling the campaign's run length
        must not move the certifier's peak tracked state at all — memory
        tracks the live-transaction window plus per-key frontier constants,
        never the number of committed transactions."""
        shorter = run_memory_campaign(
            seed=0, duration=400.0, verify_determinism=False, slo=False
        )
        longer = run_memory_campaign(
            seed=0, duration=800.0, verify_determinism=False, slo=False
        )
        assert shorter.ok and longer.ok
        assert longer.stats.rw_commits > shorter.stats.rw_commits
        assert (
            longer.witness["peak_tracked"] == shorter.witness["peak_tracked"]
        )
        assert longer.witness["peak_tracked"] <= longer.witness_bound
        assert longer.witness["ok"]

    def test_report_serializes(self):
        report = run_memory_campaign(
            seed=1, duration=200.0, verify_determinism=False, slo=False
        )
        data = report.as_dict()
        assert data["ok"] == report.ok
        assert set(data) >= {
            "peak_live",
            "live_bound",
            "revocations",
            "revoked_by_cause",
            "too_old_by_cause",
            "gc_scan_per_reclaimed",
            "violations",
        }
        assert data["slo"] is None
