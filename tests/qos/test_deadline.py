"""Deadline enforcement: meta helpers, lock-manager sweeps, cancellation."""

import pytest

from repro.cc.lock_manager import LockManager
from repro.cc.locks import LockMode
from repro.core.transaction import Transaction
from repro.errors import DeadlineExceeded, SiteUnavailable
from repro.qos.deadline import (
    DEADLINE_KEY,
    check_deadline,
    get_deadline,
    remaining,
    set_deadline,
)


class TestDeadlineHelpers:
    def test_set_get_clear(self):
        txn = Transaction()
        assert get_deadline(txn) is None
        set_deadline(txn, 12)
        assert get_deadline(txn) == 12.0
        assert txn.meta[DEADLINE_KEY] == 12.0
        set_deadline(txn, None)
        assert get_deadline(txn) is None

    def test_remaining(self):
        txn = Transaction()
        assert remaining(txn, 5.0) is None
        set_deadline(txn, 12.0)
        assert remaining(txn, 5.0) == 7.0

    def test_check_raises_only_when_due(self):
        txn = Transaction()
        check_deadline(txn, 1e9)  # no deadline: never raises
        set_deadline(txn, 10.0)
        check_deadline(txn, 9.99)
        with pytest.raises(DeadlineExceeded) as exc_info:
            check_deadline(txn, 10.0)
        assert exc_info.value.txn_id == txn.txn_id
        assert exc_info.value.deadline == 10.0


class TestLockManagerExpiry:
    def test_expire_due_fails_overdue_waiter_only(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.EXCLUSIVE)
        blocked = lm.acquire(2, "x", LockMode.EXCLUSIVE, deadline=10.0)
        patient = lm.acquire(3, "x", LockMode.EXCLUSIVE)  # no deadline
        assert lm.expire_due(9.9) == []
        assert blocked.pending
        assert lm.expire_due(10.0) == [2]
        assert blocked.failed
        assert isinstance(blocked.error, DeadlineExceeded)
        assert lm.waiting("x") == [3]
        assert patient.pending

    def test_expired_waiter_leaves_no_graph_edges(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.EXCLUSIVE)
        lm.acquire(2, "x", LockMode.EXCLUSIVE, deadline=5.0)
        lm.expire_due(5.0)
        # T2 gone: T1 can now wait on something T2 holds without a cycle.
        lm.acquire(2, "y", LockMode.EXCLUSIVE)
        waited = lm.acquire(1, "y", LockMode.EXCLUSIVE)
        assert waited.pending, "no phantom deadlock from stale edges"

    def test_expiry_unblocks_compatible_waiters_behind(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.SHARED)
        stuck = lm.acquire(2, "x", LockMode.EXCLUSIVE, deadline=3.0)
        reader = lm.acquire(3, "x", LockMode.SHARED)  # queued behind the X
        assert reader.pending, "no overtaking past a queued X"
        lm.expire_due(3.0)
        assert stuck.failed
        assert reader.done, "removing the X request re-scans the queue"

    def test_expiry_survives_cascading_callbacks(self):
        """Failing one overdue future may release locks and grant (or
        remove) other overdue requests before the sweep reaches them."""
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)
        first = lm.acquire(2, "a", LockMode.EXCLUSIVE, deadline=5.0)
        second = lm.acquire(3, "b", LockMode.EXCLUSIVE, deadline=5.0)
        # When T2's wait fails, its owner gives up and releases T1 too
        # (modelling an abort cascade) — T3's request gets *granted* while
        # still in the sweep's sights.
        first.add_callback(lambda f: lm.release_all(1) if f.failed else None)
        expired = lm.expire_due(5.0)
        assert expired == [2]
        assert second.done, "granted during the cascade, not expired"

    def test_granted_locks_never_expire(self):
        lm = LockManager()
        held = lm.acquire(1, "x", LockMode.EXCLUSIVE, deadline=1.0)
        assert held.done
        assert lm.expire_due(100.0) == []
        assert lm.holds(1, "x", LockMode.EXCLUSIVE)

    def test_cancel_request_uses_given_error(self):
        lm = LockManager()
        lm.acquire(1, "x", LockMode.EXCLUSIVE)
        blocked = lm.acquire(2, "x", LockMode.EXCLUSIVE)
        assert lm.cancel_request(2, SiteUnavailable(site_id=7))
        assert isinstance(blocked.error, SiteUnavailable)
        assert lm.waiting("x") == []
        assert not lm.cancel_request(2, SiteUnavailable()), "nothing pending"
