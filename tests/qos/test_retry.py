"""Backoff policy and retry budget."""

import pytest

from repro.qos.retry import BackoffPolicy, RetryBudget
from repro.sim.random_streams import RandomStreams


class TestBackoffPolicy:
    def test_exponential_without_jitter(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=8.0, jitter=0.0)
        rng = RandomStreams(0).stream("unused")
        assert policy.schedule(5, rng) == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_stays_in_band(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=64.0, jitter=0.5)
        rng = RandomStreams(3).stream("retry")
        for attempt in range(6):
            raw = min(64.0, 2.0**attempt)
            delay = policy.delay(attempt, rng)
            assert 0.5 * raw <= delay <= 1.5 * raw

    def test_same_seed_same_schedule(self):
        policy = BackoffPolicy()
        first = policy.schedule(8, RandomStreams(42).stream("session.retry"))
        second = policy.schedule(8, RandomStreams(42).stream("session.retry"))
        assert first == second

    def test_different_seeds_differ(self):
        policy = BackoffPolicy()
        first = policy.schedule(8, RandomStreams(1).stream("session.retry"))
        second = policy.schedule(8, RandomStreams(2).stream("session.retry"))
        assert first != second


class TestRetryBudget:
    def test_spends_down_to_exhaustion(self):
        budget = RetryBudget(capacity=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.exhausted == 1

    def test_success_refills_capped(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.5)
        budget.try_spend()
        budget.try_spend()
        budget.record_success()
        assert budget.tokens == 0.5
        assert not budget.try_spend(), "half a token is not a retry"
        budget.record_success()
        assert budget.try_spend()
        for _ in range(10):
            budget.record_success()
        assert budget.tokens == 2.0, "refills never exceed capacity"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=-1.0)
