"""Overhead guard: a disabled (null) tracer must cost < 5% on the hot path.

The micro-loop is the FIG1 workload from
``benchmarks/bench_fig1_version_control.py`` (register + shuffled
complete/discard over the VersionControl module).  The disabled
configuration is what every component runs with by default: ``NULL_TRACER``
in the ``tracer`` slot and *no* VC observer subscribed —
``subscribe_version_control`` refuses to subscribe for a disabled tracer
precisely so this guard can hold.

Timing uses best-of-N with a few whole-test retries, so a single scheduler
hiccup cannot fail CI; a genuine regression (an unguarded emit, an observer
subscribed for a disabled tracer) fails all attempts.
"""

import random
import time

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.obs import NULL_TRACER, attach_tracer
from repro.obs.instrument import subscribe_version_control
from repro.obs.spans import NULL_SPAN, start_span
from repro.protocols.registry import make_scheduler

N_TXNS = 1_000
REPEATS = 5
ATTEMPTS = 3
LIMIT = 1.05


def fig1_micro_loop(vc: VersionControl, seed: int = 42) -> None:
    # mirrors benchmarks/bench_fig1_version_control.register_complete_shuffled
    rng = random.Random(seed)
    txns = [Transaction() for _ in range(N_TXNS)]
    for txn in txns:
        vc.vc_register(txn)
    order = list(txns)
    rng.shuffle(order)
    for txn in order:
        if rng.random() < 0.1:
            vc.vc_discard(txn)
        else:
            vc.vc_complete(txn)


def best_of(make_vc, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        vc = make_vc()
        t0 = time.perf_counter()
        fig1_micro_loop(vc)
        best = min(best, time.perf_counter() - t0)
    return best


def null_traced_vc() -> VersionControl:
    vc = VersionControl(checked=True)
    observer = subscribe_version_control(vc, NULL_TRACER)
    assert observer is None  # disabled tracer must subscribe nothing
    return vc


def test_null_tracer_overhead_below_5_percent():
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        baseline = best_of(lambda: VersionControl(checked=True))
        disabled = best_of(null_traced_vc)
        ratio = disabled / baseline
        if ratio < LIMIT:
            break
    assert ratio < LIMIT, (
        f"null tracer costs {100 * (ratio - 1):.1f}% on the FIG1 micro-loop "
        f"(limit {100 * (LIMIT - 1):.0f}%)"
    )


def spanned_micro_loop(vc: VersionControl, seed: int = 42) -> None:
    """The FIG1 loop with a per-transaction span opened on NULL_TRACER.

    Mirrors what an instrumented scheduler does around every transaction
    (``SchedulerCounters.note_begin`` / ``note_commit``); with the tracer
    disabled ``start_span`` must collapse to returning the shared
    ``NULL_SPAN``, keeping the whole loop inside the 5% guard.
    """
    rng = random.Random(seed)
    txns = [Transaction() for _ in range(N_TXNS)]
    for txn in txns:
        span = start_span(NULL_TRACER, "txn", parent=None, txn=txn.txn_id)
        vc.vc_register(txn)
        span.end()
    order = list(txns)
    rng.shuffle(order)
    for txn in order:
        if rng.random() < 0.1:
            vc.vc_discard(txn)
        else:
            vc.vc_complete(txn)


def test_null_tracer_span_recording_overhead_below_5_percent():
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        baseline = float("inf")
        spanned = float("inf")
        for _ in range(REPEATS):
            vc = VersionControl(checked=True)
            t0 = time.perf_counter()
            fig1_micro_loop(vc)
            baseline = min(baseline, time.perf_counter() - t0)
            vc = null_traced_vc()
            t0 = time.perf_counter()
            spanned_micro_loop(vc)
            spanned = min(spanned, time.perf_counter() - t0)
        ratio = spanned / baseline
        if ratio < LIMIT:
            break
    assert ratio < LIMIT, (
        f"NULL_TRACER span recording costs {100 * (ratio - 1):.1f}% on the "
        f"FIG1 micro-loop (limit {100 * (LIMIT - 1):.0f}%)"
    )


def test_null_span_is_shared_and_inert():
    """The structural facts the span timing guard rests on."""
    span = start_span(NULL_TRACER, "txn", txn=1)
    assert span is NULL_SPAN  # no allocation per call
    assert span.context is None
    with span:  # context-manager use must not touch the active slot
        assert NULL_TRACER.active_span is None


def test_null_attach_leaves_hot_path_untouched():
    """The structural facts the timing guard rests on."""
    db = make_scheduler("vc-2pl")
    handle = attach_tracer(db, NULL_TRACER)
    assert db.vc._observers == []  # no observer => vc_* calls do zero extra work
    assert db.counters.tracer is NULL_TRACER
    assert db.locks.tracer is NULL_TRACER
    assert NULL_TRACER.enabled is False  # every emit site guards on this
    handle.detach()


def test_null_pipeline_is_free():
    """An exporter-less ObsPipeline must not create a real tracer at all."""
    from repro.obs.pipeline import ObsPipeline

    pipeline = ObsPipeline()
    assert pipeline.tracer is NULL_TRACER
    assert not pipeline.enabled
    pipeline.close()


SLO_LIMIT = 1.25  # engine+recorder vs plain JSONL export, emit-heavy loop


def _emit_loop(tracer) -> None:
    """An emit-heavy loop through an enabled tracer: paired txn events plus
    a lag sample per iteration — the shape the SLO engine works hardest on."""
    for i in range(N_TXNS):
        tracer.emit("txn.begin", txn=i, cls="rw")
        tracer.emit("vc.register", number=i, lag=i % 7)
        tracer.emit("txn.commit", txn=i, cls="rw")


WITNESS_LIMIT = 1.25  # streaming certifier vs plain JSONL export


def _history_loop(tracer, n=N_TXNS) -> None:
    """A full committed-transaction stream with the watermark chasing the
    frontier — the shape that keeps the witness sealing continuously."""
    for i in range(1, n + 1):
        tracer.emit("history.begin", txn=i, cls="rw")
        tracer.emit("history.read", txn=i, key=f"k{i % 8}", version=max(0, i - 8))
        tracer.emit("history.write", txn=i, key=f"k{i % 8}")
        tracer.emit("history.commit", txn=i, ident=i, tn=i, cls="rw")
        tracer.emit("vc.advance", number=i, tnc=i + 1, vtnc=i)


def test_witness_engine_overhead_within_budget():
    """The sealing certifier may cost at most ~25% more than JSONL export
    on a commit-heavy history stream.  Pearce–Kelly insertions that respect
    the existing order are O(1) and sealing keeps the graph at the frontier,
    so per-event cost must stay flat — this is what justifies running the
    witness inside every drill, campaign, and bench by default."""
    import io

    from repro.obs.exporters import JsonlExporter
    from repro.obs.tracer import Tracer
    from repro.obs.witness import WitnessEngine

    ratio = float("inf")
    for _ in range(ATTEMPTS):
        jsonl_best = float("inf")
        witness_best = float("inf")
        for _ in range(REPEATS):
            tracer = Tracer(exporters=[JsonlExporter(io.StringIO())])
            t0 = time.perf_counter()
            _history_loop(tracer)
            jsonl_best = min(jsonl_best, time.perf_counter() - t0)

            engine = WitnessEngine(seal=True)
            tracer = Tracer(exporters=[engine])
            t0 = time.perf_counter()
            _history_loop(tracer)
            engine.finish()
            assert engine.ok and engine.committed == N_TXNS
            witness_best = min(witness_best, time.perf_counter() - t0)
        ratio = witness_best / jsonl_best
        if ratio < WITNESS_LIMIT:
            break
    assert ratio < WITNESS_LIMIT, (
        f"witness engine costs {ratio:.2f}x the JSONL exporter on a "
        f"commit-heavy loop (limit {WITNESS_LIMIT:.2f}x)"
    )


def test_witness_memory_stays_at_frontier_during_overhead_loop():
    """The companion structural fact: the overhead loop's peak tracked
    state is a small constant, not O(N_TXNS)."""
    from repro.obs.tracer import Tracer
    from repro.obs.witness import WitnessEngine

    engine = WitnessEngine(seal=True)
    tracer = Tracer(exporters=[engine])
    _history_loop(tracer)
    engine.finish()
    assert engine.peak_tracked < 32


def test_slo_engine_overhead_within_budget():
    """Watchdogs (engine + flight recorder) may cost at most ~25% more than
    the cheapest useful enabled configuration (JSONL to a string buffer) on
    an emit-heavy loop.  Keeping the engine within a constant factor of the
    serialization floor is what makes 'leave the watchdogs on for the whole
    campaign' a defensible default."""
    import io

    from repro.obs.exporters import JsonlExporter
    from repro.obs.slo import FlightRecorder, SLOEngine, default_objectives
    from repro.obs.tracer import Tracer

    ratio = float("inf")
    for _ in range(ATTEMPTS):
        jsonl_best = float("inf")
        slo_best = float("inf")
        for _ in range(REPEATS):
            tracer = Tracer(exporters=[JsonlExporter(io.StringIO())])
            t0 = time.perf_counter()
            _emit_loop(tracer)
            jsonl_best = min(jsonl_best, time.perf_counter() - t0)

            engine = SLOEngine(
                default_objectives(),
                window=25.0,
                recorder=FlightRecorder(capacity=8192),
            )
            tracer = Tracer(exporters=[engine])
            t0 = time.perf_counter()
            _emit_loop(tracer)
            engine.finish()
            slo_best = min(slo_best, time.perf_counter() - t0)
        ratio = slo_best / jsonl_best
        if ratio < SLO_LIMIT:
            break
    assert ratio < SLO_LIMIT, (
        f"SLO engine costs {ratio:.2f}x the JSONL exporter on an emit-heavy "
        f"loop (limit {SLO_LIMIT:.2f}x)"
    )
