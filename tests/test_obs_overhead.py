"""Overhead guard: a disabled (null) tracer must cost < 5% on the hot path.

The micro-loop is the FIG1 workload from
``benchmarks/bench_fig1_version_control.py`` (register + shuffled
complete/discard over the VersionControl module).  The disabled
configuration is what every component runs with by default: ``NULL_TRACER``
in the ``tracer`` slot and *no* VC observer subscribed —
``subscribe_version_control`` refuses to subscribe for a disabled tracer
precisely so this guard can hold.

Timing uses best-of-N with a few whole-test retries, so a single scheduler
hiccup cannot fail CI; a genuine regression (an unguarded emit, an observer
subscribed for a disabled tracer) fails all attempts.
"""

import random
import time

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl
from repro.obs import NULL_TRACER, attach_tracer
from repro.obs.instrument import subscribe_version_control
from repro.obs.spans import NULL_SPAN, start_span
from repro.protocols.registry import make_scheduler

N_TXNS = 1_000
REPEATS = 5
ATTEMPTS = 3
LIMIT = 1.05


def fig1_micro_loop(vc: VersionControl, seed: int = 42) -> None:
    # mirrors benchmarks/bench_fig1_version_control.register_complete_shuffled
    rng = random.Random(seed)
    txns = [Transaction() for _ in range(N_TXNS)]
    for txn in txns:
        vc.vc_register(txn)
    order = list(txns)
    rng.shuffle(order)
    for txn in order:
        if rng.random() < 0.1:
            vc.vc_discard(txn)
        else:
            vc.vc_complete(txn)


def best_of(make_vc, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        vc = make_vc()
        t0 = time.perf_counter()
        fig1_micro_loop(vc)
        best = min(best, time.perf_counter() - t0)
    return best


def null_traced_vc() -> VersionControl:
    vc = VersionControl(checked=True)
    observer = subscribe_version_control(vc, NULL_TRACER)
    assert observer is None  # disabled tracer must subscribe nothing
    return vc


def test_null_tracer_overhead_below_5_percent():
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        baseline = best_of(lambda: VersionControl(checked=True))
        disabled = best_of(null_traced_vc)
        ratio = disabled / baseline
        if ratio < LIMIT:
            break
    assert ratio < LIMIT, (
        f"null tracer costs {100 * (ratio - 1):.1f}% on the FIG1 micro-loop "
        f"(limit {100 * (LIMIT - 1):.0f}%)"
    )


def spanned_micro_loop(vc: VersionControl, seed: int = 42) -> None:
    """The FIG1 loop with a per-transaction span opened on NULL_TRACER.

    Mirrors what an instrumented scheduler does around every transaction
    (``SchedulerCounters.note_begin`` / ``note_commit``); with the tracer
    disabled ``start_span`` must collapse to returning the shared
    ``NULL_SPAN``, keeping the whole loop inside the 5% guard.
    """
    rng = random.Random(seed)
    txns = [Transaction() for _ in range(N_TXNS)]
    for txn in txns:
        span = start_span(NULL_TRACER, "txn", parent=None, txn=txn.txn_id)
        vc.vc_register(txn)
        span.end()
    order = list(txns)
    rng.shuffle(order)
    for txn in order:
        if rng.random() < 0.1:
            vc.vc_discard(txn)
        else:
            vc.vc_complete(txn)


def test_null_tracer_span_recording_overhead_below_5_percent():
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        baseline = float("inf")
        spanned = float("inf")
        for _ in range(REPEATS):
            vc = VersionControl(checked=True)
            t0 = time.perf_counter()
            fig1_micro_loop(vc)
            baseline = min(baseline, time.perf_counter() - t0)
            vc = null_traced_vc()
            t0 = time.perf_counter()
            spanned_micro_loop(vc)
            spanned = min(spanned, time.perf_counter() - t0)
        ratio = spanned / baseline
        if ratio < LIMIT:
            break
    assert ratio < LIMIT, (
        f"NULL_TRACER span recording costs {100 * (ratio - 1):.1f}% on the "
        f"FIG1 micro-loop (limit {100 * (LIMIT - 1):.0f}%)"
    )


def test_null_span_is_shared_and_inert():
    """The structural facts the span timing guard rests on."""
    span = start_span(NULL_TRACER, "txn", txn=1)
    assert span is NULL_SPAN  # no allocation per call
    assert span.context is None
    with span:  # context-manager use must not touch the active slot
        assert NULL_TRACER.active_span is None


def test_null_attach_leaves_hot_path_untouched():
    """The structural facts the timing guard rests on."""
    db = make_scheduler("vc-2pl")
    handle = attach_tracer(db, NULL_TRACER)
    assert db.vc._observers == []  # no observer => vc_* calls do zero extra work
    assert db.counters.tracer is NULL_TRACER
    assert db.locks.tracer is NULL_TRACER
    assert NULL_TRACER.enabled is False  # every emit site guards on this
    handle.detach()
