"""EXP-L — one version-control module, three concurrency controls.

The paper's architectural claim: the identical VC module and read-only
execution integrate with 2PL, TO and OCC.  The read-only profile must be
the same under all three — zero CC work, one VCstart per transaction, zero
blocking — and every history one-copy serializable.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import VC, exp_l_uniformity


def test_expL_uniformity(benchmark):
    result = run_and_print(benchmark, exp_l_uniformity, duration=400.0)
    for name in VC:
        assert result.summary[f"{name}.cc_ro"] == 0
        assert result.summary[f"{name}.vc_per_ro"] == 1.0
        assert result.summary[f"{name}.serializable"] is True
