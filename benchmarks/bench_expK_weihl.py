"""EXP-K — the RO/RW synchronization race in Weihl-style protocols.

Paper Section 2: timestamps-at-initiation forces read-only transactions to
synchronize with concurrent writers, and writers to re-timestamp past
reader floors — "neither transaction may proceed with useful work".  Both
halves are zero under version control.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_k_weihl


def test_expK_weihl(benchmark):
    result = run_and_print(benchmark, exp_k_weihl, duration=500.0)
    assert result.summary["weihl-ti.ro_sync"] > 0
    assert result.summary["weihl-ti.retimestamps"] > 0
    for name in ("vc-2pl", "vc-to"):
        assert result.summary[f"{name}.ro_sync"] == 0
        assert result.summary[f"{name}.retimestamps"] == 0
