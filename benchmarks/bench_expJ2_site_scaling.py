"""EXP-J2 — distributed VC scaling across site counts.

Global one-copy serializability must hold at every scale; message cost per
commit grows with cross-site fan-out (2PC rounds touch every participant).
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_j2_site_scaling


def test_expJ2_site_scaling(benchmark):
    result = run_and_print(benchmark, exp_j2_site_scaling)
    for n_sites in (2, 4, 8):
        assert result.summary[f"{n_sites}.serializable"] is True
        assert result.summary[f"{n_sites}.msgs_per_commit"] > 0
