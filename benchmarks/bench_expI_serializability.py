"""EXP-I — Theorem 1 as a measurement.

Every history produced by the version-control protocols is one-copy
serializable; the MVSG check passes at every scale tried.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import VC, exp_i_serializability


def test_expI_serializability(benchmark):
    result = run_and_print(benchmark, exp_i_serializability)
    for name in VC:
        for duration in (150.0, 450.0):
            assert result.summary[f"{name}@{duration}.serializable"] is True
