"""EXP-B — read-only transactions never abort read-write transactions.

Paper Section 2: in Reed's MVTO a read-only reader's r-ts update can force
a writer to abort; the version-control mechanism makes this impossible.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_b_ro_caused_aborts


def test_expB_ro_caused_aborts(benchmark):
    result = run_and_print(benchmark, exp_b_ro_caused_aborts, duration=600.0)
    for name in ("vc-2pl", "vc-to", "vc-occ"):
        assert result.summary[f"{name}.ro_caused"] == 0
    assert result.summary["mvto-reed.ro_caused"] > 0
