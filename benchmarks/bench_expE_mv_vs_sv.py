"""EXP-E — multiversioning raises concurrency (paper Section 1).

As the read-only share grows, the multiversion protocols keep read-only
latency flat and never block readers, while their single-version twins make
readers queue behind writers (and, under TO, restart).
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_e_mv_vs_sv


def test_expE_mv_vs_sv(benchmark):
    result = run_and_print(benchmark, exp_e_mv_vs_sv, duration=400.0)
    for ro_fraction in (0.2, 0.5, 0.8):
        assert (
            result.summary[f"sv-2pl@{ro_fraction}.ro_latency"]
            > result.summary[f"vc-2pl@{ro_fraction}.ro_latency"]
        ), f"at RO fraction {ro_fraction} the SV reader queues behind writers"
    # The gap matters most where the paper says it does: read-heavy mixes.
    assert (
        result.summary["vc-2pl@0.8.throughput"]
        > 0.95 * result.summary["sv-2pl@0.8.throughput"]
    )
