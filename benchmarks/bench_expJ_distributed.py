"""EXP-J — distributed read-only global serializability (paper Sections 2, 6).

Distributed version control gives every read-only transaction an
all-or-nothing view of distributed updates and globally 1SR histories; the
ref [8]-style distributed MV2PL with per-site CTLs produces torn reads and
non-serializable global histories under message reordering.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_j_distributed


def test_expJ_distributed(benchmark):
    result = run_and_print(benchmark, exp_j_distributed)
    assert result.summary["dvc-2pl.torn"] == 0
    assert result.summary["dvc-2pl.non_1sr_runs"] == 0
    assert result.summary["dmv2pl.torn"] > 0
    assert result.summary["dmv2pl.non_1sr_runs"] > 0
