"""ABL-GRANULARITY — swapping the entire locking substrate under one VC module.

The paper's modularity thesis from the CC side: vc-2pl over flat S/X locks
and over a multi-granularity intention hierarchy are the same protocol to
the version-control module.  Scans cost one root lock instead of one per
key; both systems stay one-copy serializable.
"""

from benchmarks._support import run_and_print
from repro.bench.ablations import ablation_lock_granularity


def test_ablation_lock_granularity(benchmark):
    result = run_and_print(benchmark, ablation_lock_granularity)
    flat = result.summary["vc-2pl (flat).grants"]
    granular = result.summary["vc-2pl-granular.grants"]
    assert granular < flat / 2, "intention locks slash scan lock traffic"
    assert result.summary["vc-2pl (flat).serializable"] is True
    assert result.summary["vc-2pl-granular.serializable"] is True
