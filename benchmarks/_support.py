"""Shared helpers for the experiment benchmarks."""

from repro.bench.experiments import ExperimentResult
from repro.bench.tables import render_table


def run_and_print(benchmark, experiment, **kwargs) -> ExperimentResult:
    """Time one full experiment (single round) and print its table.

    Experiments are end-to-end simulations; a single timed round keeps the
    benchmark suite's runtime proportionate while still reporting wall time
    per experiment.
    """
    result = benchmark.pedantic(experiment, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(render_table(result.headers, result.rows, f"{result.exp_id} — {result.title}"))
    return result
