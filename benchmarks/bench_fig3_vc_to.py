"""FIG3 — read-write execution under VC + timestamp ordering (paper Figure 3).

Times the full figure path — register at begin, timestamped reads/writes
with pending-version bookkeeping, commit with visibility advance — and
replays the figure's conflict cases as assertions.
"""

from repro.errors import AbortReason
from repro.protocols import VCTOScheduler


def build() -> VCTOScheduler:
    db = VCTOScheduler(checked=False)
    seed = db.begin()
    for k in range(20):
        db.write(seed, f"o{k}", 0).result()
    db.commit(seed).result()
    return db


def rw_cycle(db: VCTOScheduler, ops: int = 10) -> None:
    txn = db.begin()
    for k in range(ops // 2):
        db.read(txn, f"o{k}").result()
    for k in range(ops // 2):
        db.write(txn, f"o{k}", txn.tn).result()
    db.commit(txn).result()


def test_fig3_read_write_cycle(benchmark):
    db = build()
    benchmark(rw_cycle, db)
    assert db.counters.get("abort.rw") == 0
    assert db.vc.lag == 0


def test_fig3_conflict_cases(benchmark):
    """The figure's IF-clause: late writes abort; pending writes block."""

    def scenario():
        db = VCTOScheduler(checked=False)
        outcomes = {}
        # Case 1: r-ts(x) > tn(T) -> abort.
        t1, t2 = db.begin(), db.begin()
        db.read(t2, "x").result()
        outcomes["late_write_rejected"] = db.write(t1, "x", 1).failed
        db.commit(t2).result()
        # Case 2: pending write blocks a younger read until commit.
        t3, t4 = db.begin(), db.begin()
        db.write(t3, "y", 3).result()
        blocked = db.read(t4, "y")
        outcomes["read_blocked"] = blocked.pending
        db.commit(t3).result()
        outcomes["read_released"] = blocked.result() == 3
        db.commit(t4).result()
        return outcomes, db

    outcomes, db = benchmark(scenario)
    assert outcomes == {
        "late_write_rejected": True,
        "read_blocked": True,
        "read_released": True,
    }
    assert db.counters.get("abort.rw.timestamp_rejected") == 1


def test_fig3_visibility_advances_in_tn_order(benchmark):
    def scenario():
        db = VCTOScheduler(checked=False)
        t1 = db.begin()
        t2 = db.begin()
        db.write(t2, "a", 2).result()
        db.commit(t2).result()
        lag_mid = db.vc.lag
        db.commit(t1).result()
        return lag_mid, db.vc.lag

    lag_mid, lag_end = benchmark(scenario)
    assert lag_mid == 2, "t2 committed but invisible behind active t1"
    assert lag_end == 0
