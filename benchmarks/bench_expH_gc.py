"""EXP-H — garbage collection bounded by vtnc (paper Section 6).

More frequent collection keeps fewer versions; under every period the
collector never discards a version any active or future read-only
transaction could need (zero read-only aborts), and histories stay 1SR.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_h_gc


def test_expH_gc(benchmark):
    result = run_and_print(benchmark, exp_h_gc, duration=500.0)
    assert result.summary["off.versions"] > result.summary["every 25.versions"]
    assert result.summary["every 25.versions"] >= result.summary["every 5.versions"]
    for label in ("off", "every 100", "every 25", "every 5"):
        assert result.summary[f"{label}.ro_aborts"] == 0
