"""FIG1 — the VersionControl module of paper Figure 1, behaviorally and timed.

Times the module's entry procedures under randomized completion orders and
verifies the ordering/visibility invariants at scale.  The trace benchmark
replays the paper's motivating sequence (young transactions completing while
an older one is active) and asserts the exact counter movements.
"""

import random

from repro.core.transaction import Transaction
from repro.core.version_control import VersionControl


def register_complete_in_order(n: int, checked: bool) -> VersionControl:
    vc = VersionControl(checked=checked)
    for _ in range(n):
        txn = Transaction()
        vc.vc_register(txn)
        vc.vc_complete(txn)
    return vc


def register_complete_shuffled(n: int, seed: int, checked: bool) -> VersionControl:
    rng = random.Random(seed)
    vc = VersionControl(checked=checked)
    txns = [Transaction() for _ in range(n)]
    for txn in txns:
        vc.vc_register(txn)
    order = list(txns)
    rng.shuffle(order)
    for txn in order:
        if rng.random() < 0.1:
            vc.vc_discard(txn)
        else:
            vc.vc_complete(txn)
    return vc


def test_fig1_inorder_throughput(benchmark):
    """Registration + completion cycles, in serialization order."""
    vc = benchmark(register_complete_in_order, 1_000, True)
    assert vc.vtnc == vc.tnc - 1
    assert vc.lag == 0


def test_fig1_shuffled_completions(benchmark):
    """Randomized completion orders with 10% aborts, invariants checked."""
    vc = benchmark(register_complete_shuffled, 1_000, 42, True)
    assert vc.vtnc == vc.tnc - 1
    assert len(vc) == 0


def test_fig1_unchecked_mode_overhead(benchmark):
    """The same workload without invariant checking (the fast path)."""
    vc = benchmark(register_complete_shuffled, 1_000, 42, False)
    assert vc.vtnc == vc.tnc - 1


def test_fig1_paper_trace(benchmark):
    """The Figure 1 semantics on the paper's motivating interleaving."""

    def trace() -> list[tuple[int, int]]:
        vc = VersionControl()
        t1, t2, t3 = Transaction(), Transaction(), Transaction()
        movements = []
        for txn in (t1, t2, t3):
            vc.vc_register(txn)
            movements.append((vc.tnc, vc.vtnc))
        vc.vc_complete(t3)          # youngest first: visibility must wait
        movements.append((vc.tnc, vc.vtnc))
        vc.vc_complete(t2)
        movements.append((vc.tnc, vc.vtnc))
        vc.vc_complete(t1)          # oldest completes: all become visible
        movements.append((vc.tnc, vc.vtnc))
        return movements

    movements = benchmark(trace)
    assert movements == [
        (2, 0),
        (3, 0),
        (4, 0),
        (4, 0),
        (4, 0),
        (4, 3),
    ]
