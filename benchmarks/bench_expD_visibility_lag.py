"""EXP-D — delayed visibility: the price of the mechanism (paper Section 6).

The lag between tnc and vtnc grows with read-write transaction length, and
read-only snapshots get staler accordingly — the trade-off the paper
acknowledges and offers remedies for (tested in tests/core/test_snapshot.py).
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_d_visibility_lag


def test_expD_visibility_lag(benchmark):
    result = run_and_print(benchmark, exp_d_visibility_lag, duration=500.0)
    short = result.summary["short(2-4).lag_avg"]
    long = result.summary["long(14-20).lag_avg"]
    assert long > short, "longer transactions hold visibility back further"
    assert result.summary["long(14-20).staleness_mean"] >= result.summary[
        "short(2-4).staleness_mean"
    ]
