"""EXP-C — read-only reads never block under version control.

Paper Section 2 on Reed's MVTO: "read operations may be blocked due to a
pending write".  Under a write-heavy hot spot the baselines block read-only
readers; the VC protocols never do, and their read-only latency is flat.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import VC, exp_c_ro_blocking


def test_expC_ro_blocking(benchmark):
    result = run_and_print(benchmark, exp_c_ro_blocking, duration=500.0)
    for name in VC:
        assert result.summary[f"{name}.ro_blocks"] == 0
    assert result.summary["mvto-reed.ro_blocks"] > 0
    assert result.summary["sv-2pl.ro_blocks"] > 0
    # Blocking shows up as latency: the blocked baselines are slower for ROs.
    vc_lat = max(result.summary[f"{n}.ro_latency_mean"] for n in VC)
    assert result.summary["sv-2pl.ro_latency_mean"] > vc_lat
