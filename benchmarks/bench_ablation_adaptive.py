"""ABL-ADAPT — adaptive concurrency control across a contention shift.

The paper's Section 1 extensibility claim in action: switching the CC
component at runtime under one untouched version-control module.  The
adaptive scheduler must actually switch, stay serializable, and beat the
worst fixed mode across the full run.
"""

from benchmarks._support import run_and_print
from repro.bench.ablations import ablation_adaptive


def test_ablation_adaptive(benchmark):
    result = run_and_print(benchmark, ablation_adaptive)
    for label in ("vc-adaptive", "vc-occ (fixed)", "vc-2pl (fixed)"):
        assert result.summary[f"{label}.serializable"] is True
    assert result.summary["vc-adaptive.switches"] >= 1
    worst_fixed = min(
        result.summary["vc-occ (fixed).commits"],
        result.summary["vc-2pl (fixed).commits"],
    )
    assert result.summary["vc-adaptive.commits"] > worst_fixed
