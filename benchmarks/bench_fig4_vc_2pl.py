"""FIG4 — read-write execution under VC + two-phase locking (paper Figure 4).

Times the figure path — lock acquisition, private staging "with version
phi", register-at-lock-point, install-with-tn, release, complete — and
asserts the figure's ordering guarantees.
"""

from repro.protocols import VC2PLScheduler


def build() -> VC2PLScheduler:
    db = VC2PLScheduler(checked=False)
    seed = db.begin()
    for k in range(20):
        db.write(seed, f"o{k}", 0).result()
    db.commit(seed).result()
    return db


def rw_cycle(db: VC2PLScheduler, ops: int = 10) -> None:
    txn = db.begin()
    for k in range(ops // 2):
        db.read(txn, f"o{k}").result()
    for k in range(ops // 2, ops):
        db.write(txn, f"o{k}", 1).result()
    db.commit(txn).result()


def test_fig4_read_write_cycle(benchmark):
    db = build()
    benchmark(rw_cycle, db)
    assert db.locks.is_idle()
    assert db.vc.lag == 0


def test_fig4_lock_point_order_is_serial_order(benchmark):
    """tn assignment happens at the lock point, in lock-point order."""

    def scenario():
        db = VC2PLScheduler(checked=False)
        first, second = db.begin(), db.begin()
        db.write(second, "a", 1).result()
        db.write(first, "b", 2).result()
        db.commit(second).result()   # reaches its lock point first
        db.commit(first).result()
        return second.tn, first.tn

    second_tn, first_tn = benchmark(scenario)
    assert second_tn < first_tn


def test_fig4_version_phi_staging(benchmark):
    """Writes stay private ("version phi") until the lock point."""

    def scenario():
        db = build()
        txn = db.begin()
        db.write(txn, "o0", 123).result()
        staged_invisible = db.store.read_latest_committed("o0").value == 0
        db.commit(txn).result()
        installed = db.store.read_latest_committed("o0")
        return staged_invisible, installed.tn == txn.tn, installed.value

    staged_invisible, tn_matches, value = benchmark(scenario)
    assert staged_invisible
    assert tn_matches
    assert value == 123


def test_fig4_deadlock_resolution_throughput(benchmark):
    """Deadlock detect-and-recover cycles per second."""

    def deadlock_round():
        db = VC2PLScheduler(checked=False)
        t1, t2 = db.begin(), db.begin()
        db.write(t1, "x", 1).result()
        db.write(t2, "y", 2).result()
        db.write(t1, "y", 3)          # blocks
        failed = db.write(t2, "x", 4)  # victim
        assert failed.failed
        db.commit(t1).result()
        return db

    db = benchmark(deadlock_round)
    assert db.counters.get("deadlock") == 1
