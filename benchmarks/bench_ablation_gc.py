"""ABL-GC — garbage-collection strategy ablation (paper Section 6).

All strategies respect the same horizon rule and differ only in scheduling;
none may ever victimize a read-only reader.
"""

from benchmarks._support import run_and_print
from repro.bench.ablations import ablation_gc_strategies


def test_ablation_gc_strategies(benchmark):
    result = run_and_print(benchmark, ablation_gc_strategies)
    none_peak = result.summary["none.peak"]
    for label in ("periodic(25)", "eager(stride=5)", "budgeted(8, every 10)"):
        assert result.summary[f"{label}.peak"] < none_peak
        assert result.summary[f"{label}.ro_aborts"] == 0
    # Eager bounds the footprint tightest; budgeted trades footprint for
    # bounded per-pass work.
    assert result.summary["eager(stride=5).peak"] <= result.summary["periodic(25).peak"]
    assert result.summary["eager(stride=5).passes"] > result.summary["periodic(25).passes"]
