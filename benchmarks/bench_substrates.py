"""Micro-benchmarks of the substrates every protocol is built on.

Not tied to a paper table — these keep the building blocks honest: lock
grant/release cycles, version-chain operations, MVSG checking cost at
growing history sizes (the scaling side of EXP-I), and raw simulator event
dispatch.
"""

import random

from repro.cc.lock_manager import LockManager
from repro.cc.locks import LockMode
from repro.histories.checker import check_one_copy_serializable
from repro.histories.operations import History
from repro.sim.engine import Simulator
from repro.storage.mvstore import MVStore


def test_lock_grant_release_cycle(benchmark):
    lm = LockManager()

    def cycle():
        for txn in range(1, 51):
            lm.acquire(txn, f"k{txn % 10}", LockMode.SHARED)
        for txn in range(1, 51):
            lm.release_all(txn)

    benchmark(cycle)
    assert lm.is_idle()


def test_lock_contention_with_waits(benchmark):
    def contended():
        lm = LockManager()
        futures = [lm.acquire(t, "hot", LockMode.EXCLUSIVE) for t in range(1, 21)]
        for t in range(1, 21):
            lm.release_all(t)
        return futures

    futures = benchmark(contended)
    assert all(f.done for f in futures)


def test_version_chain_install_and_snapshot_read(benchmark):
    def build_and_read():
        store = MVStore()
        for tn in range(1, 201):
            store.install("x", tn, tn)
        total = 0
        for sn in range(0, 201, 5):
            total += store.read_snapshot("x", sn).tn
        return total

    assert benchmark(build_and_read) > 0


def test_mvsg_checker_scaling_500_txns(benchmark):
    """Checker cost on a 500-transaction, zipf-keyed history."""
    rng = random.Random(0)
    ops = []
    last_writer = {}
    for txn in range(1, 501):
        keys = rng.sample([f"k{i}" for i in range(30)], 3)
        for key in keys[:2]:
            ops.append(f"r{txn}[{key}_{last_writer.get(key, 0)}]")
        ops.append(f"w{txn}[{keys[2]}_{txn}]")
        last_writer[keys[2]] = txn
        ops.append(f"c{txn}")
    history = History.parse(" ".join(ops))

    report = benchmark(check_one_copy_serializable, history)
    assert report.serializable
    assert report.transactions == 500


def test_simulator_event_dispatch(benchmark):
    def run_events():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1

        for i in range(2_000):
            sim.call_at(i * 0.5, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_events) == 2_000


def test_simulator_process_switching(benchmark):
    def run_processes():
        sim = Simulator()

        def proc():
            for _ in range(50):
                yield 1.0

        for _ in range(20):
            sim.spawn(proc())
        sim.run()
        return sim.events_dispatched

    assert benchmark(run_processes) > 1_000
