"""FIG2 — read-only transaction execution (paper Figure 2), per protocol.

Times the complete read-only path — one ``VCstart``, k snapshot reads, a
no-op end — against a store with deep version chains, and asserts the
figure's structural properties: zero concurrency-control interaction, no
blocking, snapshot stability.
"""

import pytest

from repro.protocols.registry import VC_PROTOCOLS, make_scheduler


def build_scheduler(name: str, versions_per_key: int = 20, keys: int = 50):
    db = make_scheduler(name, checked=False)
    for i in range(versions_per_key):
        w = db.begin()
        for k in range(keys):
            db.write(w, f"o{k}", i).result()
        db.commit(w).result()
    return db


def run_read_only(db, keys: int = 50):
    txn = db.begin(read_only=True)
    total = 0
    for k in range(keys):
        total += db.read(txn, f"o{k}").result()
    db.commit(txn).result()
    return total


@pytest.mark.parametrize("name", VC_PROTOCOLS)
def test_fig2_read_only_path(benchmark, name):
    db = build_scheduler(name)
    cc_before = db.counters.get("cc.ro")
    result = benchmark(run_read_only, db)
    assert result == 50 * 19, "all reads see the newest visible version"
    assert db.counters.get("cc.ro") == cc_before == 0
    assert db.counters.get("block.ro") == 0


def test_fig2_snapshot_under_concurrent_writer(benchmark):
    """The figure's guarantee while a writer holds every lock."""
    db = build_scheduler("vc-2pl")
    writer = db.begin()
    for k in range(50):
        db.write(writer, f"o{k}", 999).result()

    def read_all():
        txn = db.begin(read_only=True)
        values = [db.read(txn, f"o{k}").result() for k in range(50)]
        db.commit(txn).result()
        return values

    values = benchmark(read_all)
    assert all(v == 19 for v in values), "uncommitted writes invisible, no waits"
    assert db.counters.get("block.ro") == 0
