"""ABL-VICTIM — deadlock victim policy ablation.

All policies preserve serializability; they trade deadlock frequency
against wasted work and tail latency.
"""

from benchmarks._support import run_and_print
from repro.bench.ablations import ablation_victim_policy


def test_ablation_victim_policy(benchmark):
    result = run_and_print(benchmark, ablation_victim_policy)
    for policy in ("requester", "youngest", "oldest"):
        assert result.summary[f"{policy}.serializable"] is True
        assert result.summary[f"{policy}.deadlocks"] > 0
