"""ABL-OCC — backward vs forward optimistic validation.

Two OCC components under the identical version-control module.  Both must
be serializable; they differ in who pays for conflicts.
"""

from benchmarks._support import run_and_print
from repro.bench.ablations import ablation_occ_validation


def test_ablation_occ_validation(benchmark):
    result = run_and_print(benchmark, ablation_occ_validation)
    for key, value in result.summary.items():
        if key.endswith(".serializable"):
            assert value is True, key
    # Forward validation's aborts are wounds, delivered early.
    assert result.summary["vc-occ-fwd@hot.aborts"] > 0
    assert result.summary["vc-occ@hot.aborts"] > 0
