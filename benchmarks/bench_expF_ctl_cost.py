"""EXP-F — the completed-transaction-list burden of Chan's MV2PL.

Paper Section 2: the CTL is "cumbersome and complex to deal with".  Its
copied size grows linearly with committed history, while the version-control
mechanism's read-only cost is one counter read, forever.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_f_ctl_cost


def test_expF_ctl_cost(benchmark):
    result = run_and_print(benchmark, exp_f_ctl_cost)
    ctl_small = result.summary["200.0.ctl_entries_per_ro"]
    ctl_large = result.summary["800.0.ctl_entries_per_ro"]
    assert ctl_large > ctl_small * 2, "CTL copies grow with history"
    for duration in (200.0, 400.0, 800.0):
        assert result.summary[f"{duration}.vc_calls_per_ro"] == 1.0
