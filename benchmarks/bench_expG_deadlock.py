"""EXP-G — deadlock exposure (paper Section 4.4).

Version-control registration happens past the lock point, so registered
transactions are never in deadlock cycles (asserted at runtime inside the
scheduler), and read-only transactions never appear in the waits-for graph.
Under single-version 2PL, read-only transactions block and die as victims.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import exp_g_deadlock


def test_expG_deadlock(benchmark):
    result = run_and_print(benchmark, exp_g_deadlock, duration=600.0)
    assert result.summary["vc-2pl.ro_victims"] == 0
    assert result.summary["vc-2pl.ro_blocks"] == 0
    assert result.summary["sv-2pl.ro_blocks"] > 0
    assert result.summary["vc-2pl.deadlocks"] > 0, "RW-RW deadlocks still happen"
