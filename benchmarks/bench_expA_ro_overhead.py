"""EXP-A — read-only transactions have zero concurrency-control overhead.

Paper Sections 1 and 6: under the version-control mechanism a read-only
transaction makes exactly one version-control call and zero concurrency-
control calls; every baseline pays per-read synchronization.
"""

from benchmarks._support import run_and_print
from repro.bench.experiments import VC, exp_a_ro_overhead


def test_expA_ro_overhead(benchmark):
    result = run_and_print(benchmark, exp_a_ro_overhead, duration=400.0)
    for name in VC:
        assert result.summary[f"{name}.cc_per_ro"] == 0
        assert result.summary[f"{name}.sync_per_ro"] == 0
    # Every baseline performs CC work on behalf of read-only transactions.
    for name in ("mvto-reed", "mv2pl-chan", "weihl-ti", "sv-2pl", "sv-to"):
        assert result.summary[f"{name}.cc_per_ro"] > 0
